//! Quickstart: build a query network, place it resiliently, inspect the
//! result, and run it in the simulator.
//!
//! ```sh
//! cargo run --release -p rod --example quickstart
//! ```

use rod::prelude::*;

fn main() {
    // 1. A small query network: two input streams feeding four operators
    //    (costs in CPU-seconds per tuple).
    let mut b = GraphBuilder::new();
    let sensors = b.add_input();
    let clicks = b.add_input();
    let (_, clean) = b
        .add_operator("clean", OperatorKind::filter(2e-3, 0.8), &[sensors])
        .unwrap();
    b.add_operator("window_avg", OperatorKind::aggregate(3e-3, 0.1), &[clean])
        .unwrap();
    let (_, sessions) = b
        .add_operator("sessionise", OperatorKind::map(4e-3), &[clicks])
        .unwrap();
    b.add_operator("score", OperatorKind::filter(1e-3, 0.5), &[sessions])
        .unwrap();
    let graph = b.build().unwrap();

    // 2. Derive the linear load model: load(op) = Σ_k l_ok · rate_k.
    let model = LoadModel::derive(&graph).unwrap();
    println!("Load coefficient matrix L^o:");
    for op in graph.operators() {
        println!("  {:12} {:?}", op.name, model.operator_row(op.id));
    }

    // 3. Place resiliently on two nodes with the ROD algorithm.
    let cluster = Cluster::homogeneous(2, 1.0);
    let plan = RodPlanner::new().place(&model, &cluster).unwrap();
    println!("\nROD placement:");
    for node in cluster.nodes() {
        let names: Vec<&str> = plan
            .allocation
            .operators_on(node)
            .iter()
            .map(|&op| graph.operator(op).name.as_str())
            .collect();
        println!("  {node}: {names:?}");
    }

    // 4. Inspect resiliency: the feasible set and its distance metrics.
    let eval = PlanEvaluator::new(&model, &cluster);
    let w = eval.weight_matrix(&plan.allocation);
    println!(
        "\nmin plane distance (MMPD objective): {:.4}",
        w.min_plane_distance()
    );
    println!(
        "ideal feasible-set volume: {:.4}",
        eval.ideal_volume().unwrap()
    );
    let estimator = VolumeEstimator::new(
        model.total_coeffs().as_slice(),
        cluster.total_capacity(),
        20_000,
        1,
    );
    let est = estimator.estimate(&eval.feasible_region(&plan.allocation));
    println!(
        "achieved feasible-set volume: {:.4} ({:.1}% of ideal)",
        est.absolute,
        est.ratio_to_ideal * 100.0
    );

    // 5. Run the placement in the discrete-event simulator for a minute
    //    of simulated time at a moderate load.
    let report = Simulation::new(
        &graph,
        &plan.allocation,
        &cluster,
        vec![
            SourceSpec::ConstantRate(120.0),
            SourceSpec::ConstantRate(60.0),
        ],
        SimulationConfig {
            horizon: 60.0,
            warmup: 10.0,
            seed: 7,
            ..SimulationConfig::default()
        },
    )
    .run();
    println!("\nSimulated 60 s at (120/s, 60/s):");
    println!("  node utilisations: {:?}", report.utilisations);
    println!(
        "  mean end-to-end latency: {:.2} ms",
        report.mean_latency().unwrap_or(f64::NAN) * 1e3
    );
    println!("  feasible: {}", report.is_feasible(0.97));
}
