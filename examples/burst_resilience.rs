//! Burst resilience — the headline claim, end to end.
//!
//! A flash crowd (§1's "flash-crowds reacting to breaking news") multiplies
//! one input's rate several-fold for a stretch of time. A placement
//! optimised for the average rate point may be infeasible at the spike;
//! ROD's larger feasible set absorbs it without moving any operator.
//!
//! ```sh
//! cargo run --release -p rod --example burst_resilience
//! ```

use rod::core::baselines::{connected::ConnectedPlanner, Planner};
use rod::prelude::*;
use rod::traces::modulate::flash_crowd;
use rod::workloads::RandomTreeGenerator;

fn main() {
    // A random operator-tree workload over two inputs.
    let graph = RandomTreeGenerator::paper_default(2, 15).generate(21);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);

    // Average operating point: 40% of capacity, evenly split.
    let unit = model.total_load(&model.variable_point(&[1.0, 1.0]));
    let q = 0.4 * cluster.total_capacity() / unit;

    let rod = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let connected = ConnectedPlanner::new(vec![q, q])
        .plan(&model, &cluster)
        .unwrap();
    let eval = PlanEvaluator::new(&model, &cluster);

    // How big a spike on input 0 can each placement absorb? Exact, via
    // ray casting against the node hyperplanes.
    let spike =
        |alloc: &Allocation| rod::core::headroom::headroom(&eval, alloc, &[q, q]).per_stream[0];
    println!(
        "spike tolerance on input 0 (× mean rate): ROD {:.2}, Connected {:.2}",
        spike(&rod),
        spike(&connected)
    );

    // Now the same story dynamically: a 3.5× flash crowd for ~15 s.
    let bins = 120usize;
    let envelope = flash_crowd(bins, 40, 3.5, 0.95);
    let burst_trace = Trace::constant(q, bins, 1.0).modulated(&envelope);
    let steady_trace = Trace::constant(q, bins, 1.0);

    for (name, alloc) in [("ROD", &rod), ("Connected", &connected)] {
        let report = Simulation::new(
            &graph,
            alloc,
            &cluster,
            vec![
                SourceSpec::TraceDriven(burst_trace.clone()),
                SourceSpec::TraceDriven(steady_trace.clone()),
            ],
            SimulationConfig {
                horizon: bins as f64,
                warmup: 10.0,
                seed: 5,
                max_queue: 300_000,
                ..SimulationConfig::default()
            },
        )
        .run();
        println!(
            "{name:>9}: max util {:.2}, mean latency {:.2} ms, p99 {:.2} ms, saturated: {}",
            report.max_utilisation(),
            report.mean_latency().unwrap_or(f64::NAN) * 1e3,
            report.latencies.quantile(0.99).unwrap_or(f64::NAN) * 1e3,
            report.saturated
        );
    }
    println!(
        "\nNo operator moved in either run — the difference is entirely \
         the static placement's\nfeasible set, which is what ROD maximises."
    );
}
