//! Linear Road — placing the classic stream benchmark resiliently.
//!
//! Builds the Linear-Road-flavoured monitoring network (position reports
//! from four expressways feeding tolls, accident detection and account
//! updates), places it with ROD, inspects the plan with the explanation
//! and headroom tools, and rides out rush hour in the simulator.
//!
//! ```sh
//! cargo run --release -p rod --example linear_road_demo
//! ```

use rod::core::explain::explain_plan;
use rod::core::headroom::headroom;
use rod::prelude::*;
use rod::traces::modulate::diurnal;
use rod::workloads::linear_road::{linear_road, LinearRoadConfig};

fn main() {
    let graph = linear_road(&LinearRoadConfig::default());
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);
    println!(
        "Linear Road: {} operators over {} expressways, depth {}",
        graph.num_operators(),
        graph.num_inputs(),
        graph.depth()
    );

    let plan = RodPlanner::new().place(&model, &cluster).unwrap();
    let eval = PlanEvaluator::new(&model, &cluster);
    println!("\n{}", explain_plan(&eval, &plan.allocation));

    // Mean operating point: 55% of capacity.
    let unit = model.total_load(&model.variable_point(&[1.0; 4]));
    let q = 0.55 * cluster.total_capacity() / unit;
    let report = headroom(&eval, &plan.allocation, &[q; 4]);
    println!("at {q:.0} reports/s per expressway:");
    for (k, m) in report.per_stream.iter().enumerate() {
        println!("  expressway {k} alone can surge to {m:.2}x");
    }
    println!(
        "  all four together can grow to {:.2}x before {} saturates",
        report.uniform, report.binding_node
    );

    // Rush hour: diurnal swell with staggered peaks per expressway.
    let bins = 120usize;
    let sources: Vec<SourceSpec> = (0..4)
        .map(|k| {
            let envelope = diurnal(bins, bins as f64, 0.45, k as f64 * 1.4);
            SourceSpec::TraceDriven(Trace::constant(q, bins, 1.0).modulated(&envelope))
        })
        .collect();
    let sim = Simulation::new(
        &graph,
        &plan.allocation,
        &cluster,
        sources,
        SimulationConfig {
            horizon: bins as f64,
            warmup: 10.0,
            seed: 8,
            sample_interval: Some(10.0),
            ..SimulationConfig::default()
        },
    )
    .run();
    println!(
        "\nrush hour simulated: max util {:.2}, mean latency {:.2} ms, p99 {:.2} ms",
        sim.max_utilisation(),
        sim.mean_latency().unwrap_or(f64::NAN) * 1e3,
        sim.latencies.quantile(0.99).unwrap_or(f64::NAN) * 1e3
    );
    print!("utilisation over time (node 0):  ");
    for s in &sim.timeline {
        print!("{:.0}% ", s.utilisations[0] * 100.0);
    }
    println!();
}
