//! Adding queries to a live deployment — incremental ROD.
//!
//! Continuous queries arrive over a system's lifetime, and moving live
//! operators is exactly what resilient placement exists to avoid. This
//! example deploys an initial workload with ROD, then registers a new
//! batch of queries and places *only the new operators* with
//! [`RodPlanner::extend`], comparing the result against the oracle that
//! re-plans everything from scratch.
//!
//! ```sh
//! cargo run --release -p rod --example adding_queries
//! ```

use rod::core::metrics::{feasible_ratio, make_estimator};
use rod::prelude::*;

fn main() {
    // Phase 1: the initial workload — a monitoring pipeline on 2 feeds.
    let mut b = GraphBuilder::new();
    let feed_a = b.add_input();
    let feed_b = b.add_input();
    let mut v1_ops = Vec::new();
    for (name, input) in [("a", feed_a), ("b", feed_b)] {
        let (id, parsed) = b
            .add_operator(format!("parse_{name}"), OperatorKind::map(2e-4), &[input])
            .unwrap();
        v1_ops.push(id);
        let (id, agg) = b
            .add_operator(
                format!("agg_{name}"),
                OperatorKind::aggregate(5e-4, 0.1),
                &[parsed],
            )
            .unwrap();
        v1_ops.push(id);
        let (id, _) = b
            .add_operator(
                format!("alert_{name}"),
                OperatorKind::filter(1e-4, 0.2),
                &[agg],
            )
            .unwrap();
        v1_ops.push(id);
    }
    // Remember the streams new queries will tap.
    let graph_v1 = b.clone().build().unwrap();
    let model_v1 = LoadModel::derive(&graph_v1).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);
    let deployed = RodPlanner::new().place(&model_v1, &cluster).unwrap();
    println!(
        "v1 deployed: {} operators, min plane distance {:.4}",
        graph_v1.num_operators(),
        PlanEvaluator::new(&model_v1, &cluster).min_plane_distance(&deployed.allocation)
    );

    // Phase 2: a new feed plus new queries over the existing feeds.
    let feed_c = b.add_input();
    let (_, parsed_c) = b
        .add_operator("parse_c", OperatorKind::map(3e-4), &[feed_c])
        .unwrap();
    b.add_operator("agg_c", OperatorKind::aggregate(6e-4, 0.1), &[parsed_c])
        .unwrap();
    b.add_operator("top_k_a", OperatorKind::aggregate(4e-4, 0.05), &[feed_a])
        .unwrap();
    b.add_operator("top_k_b", OperatorKind::aggregate(4e-4, 0.05), &[feed_b])
        .unwrap();
    let graph_v2 = b.build().unwrap();
    let model_v2 = LoadModel::derive(&graph_v2).unwrap();
    println!(
        "\nv2 adds {} operators and 1 feed",
        graph_v2.num_operators() - graph_v1.num_operators()
    );

    // Carry the deployed assignment over (operator ids are stable) and
    // place only the new operators.
    let mut existing = Allocation::new(graph_v2.num_operators(), cluster.num_nodes());
    for &op in &v1_ops {
        existing.assign(op, deployed.allocation.node_of(op).unwrap());
    }
    let extended = RodPlanner::new()
        .extend(&model_v2, &cluster, &existing)
        .unwrap();

    // Oracle: re-plan everything from scratch (would require migrating
    // live operators).
    let scratch = RodPlanner::new().place(&model_v2, &cluster).unwrap();

    let ev = PlanEvaluator::new(&model_v2, &cluster);
    let estimator = make_estimator(&model_v2, &cluster, 30_000, 1);
    let moved = v1_ops
        .iter()
        .filter(|&&op| extended.allocation.node_of(op) != deployed.allocation.node_of(op))
        .count();
    println!("incremental extend moved {moved} existing operators (must be 0)");
    println!(
        "feasible-set ratio: incremental {:.4} vs re-plan-from-scratch {:.4}",
        feasible_ratio(&ev, &estimator, &extended.allocation),
        feasible_ratio(&ev, &estimator, &scratch.allocation),
    );
    println!(
        "min plane distance: incremental {:.4} vs scratch {:.4}",
        ev.min_plane_distance(&extended.allocation),
        ev.min_plane_distance(&scratch.allocation)
    );
    println!(
        "\nThe incremental plan costs a little resiliency relative to the \
         oracle — the price\nof never touching a running operator."
    );
}
