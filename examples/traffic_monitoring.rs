//! Network traffic monitoring — the paper's own evaluation domain.
//!
//! Builds the aggregation-heavy monitoring query network over three
//! links, places it with ROD and with classic load balancing (LLF), and
//! drives both placements with the same self-similar traffic traces to
//! show the resiliency difference where it is felt: tail latency and
//! saturation during bursts.
//!
//! ```sh
//! cargo run --release -p rod --example traffic_monitoring
//! ```

use rod::core::baselines::llf::LlfPlanner;
use rod::prelude::*;
use rod::workloads::traffic::{traffic_monitoring, TrafficConfig};

fn main() {
    let config = TrafficConfig::default(); // 3 links, 4 aggregates each
    let graph = traffic_monitoring(&config);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);
    println!(
        "monitoring network: {} operators over {} links",
        graph.num_operators(),
        graph.num_inputs()
    );

    // Mean operating point: ~75% of total capacity — enough headroom on
    // average, little headroom during the traces' 2x bursts.
    let unit_load = model.total_load(&model.variable_point(&[1.0; 3]));
    let q = 0.75 * cluster.total_capacity() / unit_load;
    println!("mean per-link rate: {q:.0} tuples/s");

    // ROD (rate-oblivious) vs LLF balancing for exactly the mean rates.
    let rod = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let llf = LlfPlanner::new(vec![q; 3]).plan(&model, &cluster).unwrap();

    let eval = PlanEvaluator::new(&model, &cluster);
    println!(
        "\nmin plane distance: ROD {:.4}, LLF {:.4}",
        eval.min_plane_distance(&rod),
        eval.min_plane_distance(&llf)
    );

    // Drive both with the same bursty traces (PKT/TCP/HTTP stand-ins).
    let traces: Vec<Trace> = paper_traces(9, 7)
        .into_iter()
        .map(|(_, t)| t.with_mean(q))
        .collect();
    let horizon = traces[0].duration().min(120.0);
    for (name, alloc) in [("ROD", &rod), ("LLF", &llf)] {
        let report = Simulation::new(
            &graph,
            alloc,
            &cluster,
            traces
                .iter()
                .cloned()
                .map(SourceSpec::TraceDriven)
                .collect(),
            SimulationConfig {
                horizon,
                warmup: horizon * 0.1,
                seed: 3,
                ..SimulationConfig::default()
            },
        )
        .run();
        println!(
            "\n{name}: max util {:.2}, mean latency {:.2} ms, p99 {:.2} ms, saturated: {}",
            report.max_utilisation(),
            report.mean_latency().unwrap_or(f64::NAN) * 1e3,
            report.latencies.quantile(0.99).unwrap_or(f64::NAN) * 1e3,
            report.saturated
        );
    }
    println!(
        "\nROD's larger feasible set absorbs more of the burst trajectory: \
         same mean load,\nvisibly lighter tail latency. (This workload is \
         fairly symmetric, so the gap is\nmodest — see the burst_resilience \
         example for an asymmetric case where it is not.)"
    );
}
