//! Financial compliance — the paper's "very wide query graphs" domain.
//!
//! §7.3.1 motivates large operator counts with a real compliance
//! application: 300 rules → 2500 operators. This example builds a wide
//! compliance graph with shared sub-expressions, places it with ROD on
//! an 8-node cluster, and shows (a) how close the plan gets to the ideal
//! feasible set at this width — the paper's "two hundred operators case
//! is not unrealistic" point — and (b) the §6.3 clustering trade-off
//! when network CPU costs matter.
//!
//! ```sh
//! cargo run --release -p rod --example financial_compliance
//! ```

use rod::core::clustering::{ArcCosts, ClusteringSearch};
use rod::core::metrics::{feasible_ratio, make_estimator};
use rod::prelude::*;
use rod::workloads::financial::{compliance_rules, FinancialConfig};

fn main() {
    let config = FinancialConfig {
        feeds: 4,
        rules_per_feed: 25, // 100 rules → ~380 operators
        rules_per_group: 4,
    };
    let graph = compliance_rules(&config, 11);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(8, 1.0);
    println!(
        "compliance graph: {} rules, {} operators, {} feeds",
        4 * 25,
        graph.num_operators(),
        graph.num_inputs()
    );

    let plan = RodPlanner::new().place(&model, &cluster).unwrap();
    let eval = PlanEvaluator::new(&model, &cluster);
    let estimator = make_estimator(&model, &cluster, 30_000, 5);
    let ratio = feasible_ratio(&eval, &estimator, &plan.allocation);
    println!(
        "\nROD on 8 nodes: feasible-set ratio {:.3} of ideal \
         (wide graphs ⇒ near-ideal balancing),",
        ratio
    );
    println!(
        "Class I fraction {:.2} (most operators are small next to a node's share),",
        plan.class_one_fraction()
    );
    println!(
        "inter-node arcs: {} of {}",
        eval.internode_arcs(&plan.allocation),
        graph.operator_arcs().len()
    );

    // With non-negligible communication CPU cost, cluster first (§6.3).
    let search = ClusteringSearch::default();
    let best = search
        .best(&model, &cluster, &ArcCosts::uniform(1.5e-4))
        .unwrap();
    println!(
        "\nwith clustering ({:?}, threshold {}): {} clusters, \
         inter-node arcs {} (vs {}), feasible ratio {:.3}",
        best.policy,
        best.threshold,
        best.clustering.num_clusters(),
        best.internode_arcs,
        eval.internode_arcs(&plan.allocation),
        feasible_ratio(&eval, &estimator, &best.allocation)
    );
    println!(
        "\nThe sweep picks the plan with the best plane distance; it trades \
         a little\nfeasible-set volume for far fewer network crossings."
    );
}
