//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId::from_parameter`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!`, `black_box` — backed by a simple wall-clock
//! measurement loop instead of upstream's statistical machinery.
//!
//! Each benchmark calibrates an iteration count targeting a few
//! milliseconds per batch, runs `sample_size` batches (within a per-bench
//! time budget), and prints mean / best per-iteration times.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier, usually built from a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier carrying only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Number of measurement batches to record.
    sample_size: usize,
    /// Per-iteration observations in nanoseconds.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, calibrating a batch size of roughly 2 ms and then
    /// timing `sample_size` batches (capped at ~1 s of total wall time).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate: find how many iterations fill ~2 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break;
            }
            // Aim past the threshold next round.
            let nanos = elapsed.as_nanos().max(1) as u64;
            let target = 2_500_000u64; // 2.5 ms
            iters = (iters.saturating_mul(target / nanos + 1)).clamp(iters + 1, 1 << 24);
        }

        let budget = Duration::from_secs(1);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
            if run_start.elapsed() > budget {
                break;
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let best = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{id:<40} time: [mean {:>10}, best {:>10}] ({} samples)",
        format_ns(mean),
        format_ns(best),
        b.samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of measurement batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted and ignored (upstream tunes the measurement window).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b)
        });
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().id, 10, |b| f(b));
        self
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Generates `main`, running each group and ignoring harness CLI
/// arguments (`--bench`, filters) that cargo passes through.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Arguments like `--bench` or test filters are accepted and
            // ignored by this shim.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            sample_size: 3,
            samples: Vec::new(),
        };
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            counter
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(32).id, "32");
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
    }
}
