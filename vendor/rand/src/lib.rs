//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal, dependency-free implementation of
//! the exact `rand` API surface it uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), the [`RngCore`]/[`SeedableRng`] core
//! traits (re-exported through [`rand_core`]), and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! Streams are deterministic for a given generator implementation but are
//! **not** guaranteed to match upstream `rand` bit-for-bit; nothing in the
//! workspace depends on upstream stream values, only on seeded
//! reproducibility within this codebase.

/// Core generator traits (upstream these live in the `rand_core` crate).
pub mod rand_core {
    /// A source of uniformly random bits.
    pub trait RngCore {
        /// Next 32 uniformly random bits.
        fn next_u32(&mut self) -> u32;
        /// Next 64 uniformly random bits.
        fn next_u64(&mut self) -> u64;
        /// Fills `dest` with random bytes.
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rest = chunks.into_remainder();
            if !rest.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rest.copy_from_slice(&bytes[..rest.len()]);
            }
        }
    }

    /// A generator constructible from a seed.
    pub trait SeedableRng: Sized {
        /// The raw seed type.
        type Seed: AsMut<[u8]> + Default;

        /// Builds the generator from a full seed.
        fn from_seed(seed: Self::Seed) -> Self;

        /// Builds the generator from a `u64`, expanding it with the
        /// SplitMix64 sequence (the same scheme upstream `rand_core`
        /// documents for this method).
        fn seed_from_u64(mut state: u64) -> Self {
            let mut seed = Self::Seed::default();
            for chunk in seed.as_mut().chunks_mut(8) {
                // SplitMix64 step.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let bytes = z.to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
            Self::from_seed(seed)
        }
    }
}

pub use rand_core::{RngCore, SeedableRng};

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts for a value type `T`.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (upstream `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct SplitMix(u64);
    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SplitMix(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.5..1.0f64);
            assert!((0.5..1.0).contains(&f));
            let i = rng.gen_range(1..=3u32);
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SplitMix(4);
        let v = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
