//! Offline stand-in for the `rand_chacha` crate: a real ChaCha12 stream
//! cipher driving the workspace's [`rand`] shim traits.
//!
//! The keystream is the genuine ChaCha construction (12 rounds, 32-byte
//! key from the seed, 64-bit block counter), so statistical quality
//! matches the upstream generator; the exact stream is deterministic per
//! seed but is not guaranteed to be bit-identical to upstream
//! `rand_chacha` (nothing in the workspace relies on upstream values).

pub use rand::rand_core;

use rand::rand_core::{RngCore, SeedableRng};

/// The ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha generator with 12 rounds (the `rand` project's default
/// quality/speed trade-off).
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// Block counter (low, high) and nonce words.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    index: usize,
}

impl ChaCha12Rng {
    const ROUNDS: usize = 12;

    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..Self::ROUNDS / 2 {
            // Column rounds.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha12Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn keystream_advances() {
        // 16 words per block: crossing the block boundary must not repeat.
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..48).map(|_| rng.next_u32()).collect();
        let mut seen = std::collections::HashSet::new();
        let distinct = first.iter().filter(|w| seen.insert(**w)).count();
        assert!(distinct > 45, "keystream looks degenerate: {distinct}/48");
    }
}
