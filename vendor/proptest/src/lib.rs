//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), the
//! [`strategy::Strategy`] trait with `prop_map`, numeric range
//! strategies, tuple strategies, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test generator (seeded from the test name and case index) rather
//! than an entropy source, and failing cases are **not shrunk** — the
//! failure report prints the raw generated inputs instead. Regression
//! files (`*.proptest-regressions`) are ignored.

/// Strategies: recipes for generating random values.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    start + rng.unit_f64() as $t * (end - start)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A:0);
    impl_tuple!(A:0, B:1);
    impl_tuple!(A:0, B:1, C:2);
    impl_tuple!(A:0, B:1, C:2, D:3);
    impl_tuple!(A:0, B:1, C:2, D:3, E:4);
    impl_tuple!(A:0, B:1, C:2, D:3, E:4, F:5);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A range of collection sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub min: usize,
        /// Inclusive upper bound.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The test runner: configuration, RNG and the case loop.
pub mod test_runner {
    /// Runner configuration (upstream `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; this environment is single-core,
            // so trade a little coverage for wall-clock.
            Config { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs out; draw fresh ones.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (filtered inputs).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// A failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// A deterministic input generator (SplitMix64), seeded per test
    /// name and case index so failures reproduce across runs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case `case` of test `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs the case loop for one property test. Panics (failing the
    /// surrounding `#[test]`) on the first failing case.
    pub fn run(
        config: &Config,
        name: &str,
        mut case_fn: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let mut case: u64 = 0;
        while passed < config.cases {
            let mut rng = TestRng::for_case(name, case);
            case += 1;
            match case_fn(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > 20 * config.cases as u64 + 100 {
                        panic!(
                            "proptest `{name}`: too many rejected cases \
                             ({rejected} rejections for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed (case #{}):\n{msg}", case - 1);
                }
            }
        }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each function body runs once per generated
/// case; arguments are drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`] — one test function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                let mut __inputs = ::std::string::String::new();
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);
                    __inputs.push_str(&::std::format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome.map_err(|e| match e {
                    $crate::test_runner::TestCaseError::Fail(msg) => {
                        $crate::test_runner::TestCaseError::Fail(::std::format!(
                            "{msg}\nwith inputs:\n{}", __inputs
                        ))
                    }
                    reject => reject,
                })
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // `if cond {} else` rather than `if !cond` so the expansion never
        // trips clippy's neg_cmp_op_on_partial_ord in caller crates.
        if $cond {
        } else {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+))
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right),
            ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects the current case (draws fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.5..2.0f64).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::for_case("sizes", 1);
        let s = crate::collection::vec(0.0..1.0f64, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let fixed = crate::collection::vec(0u8..5, 3);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 7);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 7);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(xs in prop::collection::vec(0.0..10.0f64, 1..8),
                            k in 1usize..5) {
            prop_assume!(!xs.is_empty());
            let sum: f64 = xs.iter().sum();
            prop_assert!(sum >= 0.0, "sum {sum}");
            prop_assert_eq!(xs.len() * k / k, xs.len());
        }

        #[test]
        fn prop_map_applies(x in (1u32..1000).prop_map(|v| v as f64 / 100.0)) {
            prop_assert!((0.01..10.0).contains(&x));
        }
    }
}
