//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serialization framework with the same spelling as serde:
//! `#[derive(Serialize, Deserialize)]` plus `Serialize`/`Deserialize`
//! traits. Instead of serde's visitor architecture, types convert to and
//! from a JSON-shaped [`Value`] tree; the companion `serde_json` shim
//! renders that tree to text and parses it back.
//!
//! The derive macros replicate serde's default encoding so existing
//! format expectations hold:
//!
//! * structs with named fields → objects in declaration order;
//! * newtype structs → the inner value, transparently;
//! * tuple structs → arrays;
//! * unit enum variants → the variant name as a string;
//! * newtype / tuple / struct enum variants → `{"Variant": ...}`.
//!
//! `#[serde(...)]` attributes are not supported (the workspace uses none).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree. Object entries preserve insertion order so
/// serialized field order matches declaration order, as serde's does.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer exceeding `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object value.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short human description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError(message.into())
    }

    /// A "wrong kind" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field in an object and deserializes it — support
/// routine for the derive macro.
pub fn field<T: Deserialize>(
    pairs: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("{ty}.{name}: {e}"))),
        None => Err(DeError(format!("missing field `{name}` in {ty}"))),
    }
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: u64 = match v {
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::UInt(u) => *u,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // serde_json encodes non-finite floats as null; accept
                    // the round trip back as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

// ---- containers ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected tuple of {}, got array of {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(A:0 ; 1);
impl_tuple!(A:0, B:1 ; 2);
impl_tuple!(A:0, B:1, C:2 ; 3);
impl_tuple!(A:0, B:1, C:2, D:3 ; 4);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic key order (serde_json's map is unordered; sorting
        // keeps output stable for tests and diffs).
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(u64::from_value(&u64::MAX.to_value()), Ok(u64::MAX));
        assert_eq!(i64::from_value(&(-5i64).to_value()), Ok(-5));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        assert_eq!(Vec::<Option<u32>>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn tuple_round_trip() {
        let t = (3usize, 2.5f64);
        assert_eq!(<(usize, f64)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn wrong_kind_errors() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
