//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! workspace's vendored `serde` shim without depending on `syn`/`quote`
//! (unavailable in this build environment). The derive input is parsed
//! directly from the `proc_macro::TokenStream` and the generated impl is
//! assembled as source text, then re-parsed.
//!
//! Supported shapes — exactly what the workspace uses:
//! structs with named fields, tuple structs (newtype structs serialize
//! transparently), unit structs, and enums whose variants are unit,
//! newtype, tuple, or struct-like. Generics and `#[serde(...)]`
//! attributes are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a struct body or enum variant payload.
enum Fields {
    /// `{ a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `(T, U)` — the arity.
    Tuple(usize),
    /// No payload.
    Unit,
}

/// A parsed derive input.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

// ---- token cursor ----------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` outer attributes, rejecting `#[serde(...)]`.
    fn skip_attrs(&mut self) -> Result<(), String> {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") {
                        return Err(
                            "#[serde(...)] attributes are not supported by the vendored serde shim"
                                .into(),
                        );
                    }
                }
                _ => return Err("malformed attribute".into()),
            }
        }
        Ok(())
    }

    /// Skips `pub` / `pub(...)` visibility.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    /// Skips tokens until a top-level `,`, tracking `<...>` nesting so
    /// commas inside generic arguments don't terminate early. Consumes
    /// the comma. Returns whether any tokens were skipped.
    fn skip_until_comma(&mut self) -> bool {
        let mut depth: i32 = 0;
        let mut dash = false;
        let mut any = false;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    ',' if depth == 0 => {
                        self.next();
                        return any;
                    }
                    '<' => depth += 1,
                    '>' if !dash => depth -= 1,
                    _ => {}
                }
                dash = p.as_char() == '-';
            } else {
                dash = false;
            }
            self.next();
            any = true;
        }
        any
    }
}

// ---- parsing ---------------------------------------------------------

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut cur = Cursor::new(stream);
    let mut names = Vec::new();
    loop {
        cur.skip_attrs()?;
        if cur.at_end() {
            break;
        }
        cur.skip_vis();
        names.push(cur.expect_ident()?);
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        cur.skip_until_comma();
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    loop {
        cur.skip_attrs()?;
        if cur.at_end() {
            break;
        }
        cur.skip_vis();
        if cur.skip_until_comma() {
            count += 1;
        }
    }
    Ok(count)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs()?;
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident()?;
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                cur.next();
                Fields::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                cur.next();
                Fields::Tuple(count_tuple_fields(g)?)
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        cur.skip_until_comma();
        variants.push((name, fields));
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attrs()?;
    cur.skip_vis();
    let keyword = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the vendored serde derive"
        ));
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream())?)
                }
                _ => Fields::Unit,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            _ => Err("malformed enum body".into()),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---- code generation -------------------------------------------------

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// `(String::from("f"), Serialize::to_value(expr))` object-entry source.
fn ser_entry(key: &str, expr: &str) -> String {
    format!("(::std::string::String::from({key:?}), ::serde::Serialize::to_value({expr})),")
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: String = fs
                        .iter()
                        .map(|f| ser_entry(f, &format!("&self.{f}")))
                        .collect();
                    format!("::serde::Value::Object(::std::vec![{entries}])")
                }
                // Newtype structs are transparent, wider tuples are arrays.
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: String = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{items}])")
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![{}]),",
                        ser_entry(vname, "__f0")
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Array(::std::vec![{items}])),]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: String =
                            fs.iter().map(|f| ser_entry(f, f)).collect();
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Object(::std::vec![{entries}])),]),"
                        )
                    }
                };
                arms.push_str(&arm);
            }
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

/// Source for deserializing named fields `fs` of `ty` out of `__pairs`
/// into constructor `ctor { ... }`.
fn de_named(ctor: &str, ty: &str, fs: &[String], pairs: &str) -> String {
    let fields: String = fs
        .iter()
        .map(|f| format!("{f}: ::serde::field({pairs}, {f:?}, {ty:?})?,"))
        .collect();
    format!("::std::result::Result::Ok({ctor} {{ {fields} }})")
}

/// Source for deserializing a tuple payload of arity `n` from `__items`
/// into constructor `ctor(...)`.
fn de_tuple(ctor: &str, ty: &str, n: usize, items: &str) -> String {
    let args: String = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&{items}[{i}])?,"))
        .collect();
    format!(
        "if {items}.len() != {n} {{ \
             ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\
                 \"expected array of {n} for {ty}, got {{}}\", {items}.len()))) \
         }} else {{ ::std::result::Result::Ok({ctor}({args})) }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => format!(
                    "let __pairs = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", __v))?; {}",
                    de_named(name, name, fs, "__pairs")
                ),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => format!(
                    "let __items = __v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", __v))?; {}",
                    de_tuple(name, name, *n, "__items")
                ),
                Fields::Unit => format!(
                    "match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
                       __other => ::std::result::Result::Err(::serde::DeError::expected(\"null\", __other)) }}"
                ),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for (vname, fields) in variants {
                let ty = format!("{name}::{vname}");
                match fields {
                    Fields::Unit => str_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    Fields::Tuple(1) => obj_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => obj_arms.push_str(&format!(
                        "{vname:?} => {{ let __items = __inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", __inner))?; {} }}",
                        de_tuple(&ty, &ty, *n, "__items")
                    )),
                    Fields::Named(fs) => obj_arms.push_str(&format!(
                        "{vname:?} => {{ let __pairs = __inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", __inner))?; {} }}",
                        de_named(&ty, &ty, fs, "__pairs")
                    )),
                }
            }
            let body = format!(
                "match __v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {str_arms} \
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                       ::std::format!(\"unknown unit variant `{{}}` of {name}\", __other))), \
                   }}, \
                   ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                     let __inner = &__pairs[0].1; \
                     let _ = __inner; \
                     match __pairs[0].0.as_str() {{ \
                       {obj_arms} \
                       __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"unknown variant `{{}}` of {name}\", __other))), \
                     }} \
                   }}, \
                   __other => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", __other)), \
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}
