//! Offline stand-in for `serde_json`, layered on the workspace's vendored
//! `serde` value tree.
//!
//! Output follows upstream serde_json conventions so existing format
//! expectations (including tests that assert on exact substrings) hold:
//! compact form has no whitespace, object fields keep declaration order,
//! floats print in shortest round-trip form (Rust's `{:?}`), non-finite
//! floats become `null`, and pretty form indents by two spaces.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

// ---- writing ---------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest round-trip float form, which matches
        // serde_json's Ryu output on these values (always keeps a `.0`
        // for integral floats).
        out.push_str(&format!("{f:?}"));
    } else {
        // Upstream serde_json emits null for NaN/inf.
        out.push_str("null");
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` into a writer as compact JSON.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    w.write_all(s.as_bytes())
        .map_err(|e| Error::new(e.to_string()))
}

/// Serializes `value` into a writer as pretty JSON.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut w: W,
    value: &T,
) -> Result<()> {
    let s = to_string_pretty(value)?;
    w.write_all(s.as_bytes())
        .map_err(|e| Error::new(e.to_string()))
}

// ---- parsing ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses a `Value` from JSON text.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

/// Deserializes a `T` from a reader.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut r: R) -> Result<T> {
    let mut buf = String::new();
    r.read_to_string(&mut buf)
        .map_err(|e| Error::new(e.to_string()))?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_layout_matches_serde_json() {
        let v = Value::Object(vec![
            ("inputs".into(), Value::Array(vec![Value::Int(0)])),
            ("output".into(), Value::Int(2)),
            (
                "tag".into(),
                Value::Object(vec![("Operator".into(), Value::Int(0))]),
            ),
        ]);
        let mut out = String::new();
        write_compact(&mut out, &v);
        assert_eq!(out, r#"{"inputs":[0],"output":2,"tag":{"Operator":0}}"#);
    }

    #[test]
    fn floats_round_trip_and_print_shortest() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("2.5e-3").unwrap();
        assert_eq!(back, 2.5e-3);
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_value(
            r#" { "a" : [1, -2, 3.5], "b": {"c": true, "d": null}, "e": "x\n\"y\"" } "#,
        )
        .unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].1.as_array().unwrap().len(), 3);
        assert_eq!(obj[1].1.as_object().unwrap()[1].1, Value::Null);
        assert_eq!(obj[2].1, Value::Str("x\n\"y\"".into()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
        assert!(from_str::<u32>("-1").is_err());
    }

    #[test]
    fn pretty_printing_indents_by_two() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::Int(1)]))]);
        let mut out = String::new();
        write_pretty(&mut out, &v, 0);
        assert_eq!(out, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn unicode_escapes() {
        let v: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A😀");
    }
}
