//! Integration tests for the runtime extensions: dynamic migration, the
//! hybrid pinned regime, scheduling disciplines, load shedding and
//! fail-stop outages — each exercised through real placements on real
//! workload graphs, cross-checked against the analytic model where one
//! exists.

use rod::core::baselines::{connected::ConnectedPlanner, Planner};
use rod::prelude::*;
use rod::sim::{Outage, SchedulingPolicy};
use rod::workloads::linear_road::{linear_road, LinearRoadConfig};

/// A placement + operating point where the Connected plan concentrates
/// load and ROD spreads it.
fn contrast_setup() -> (
    rod::core::QueryGraph,
    LoadModel,
    Cluster,
    Allocation,
    Allocation,
    f64,
) {
    let graph = RandomTreeGenerator::paper_default(4, 8).generate(77);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let unit = model.total_load(&model.variable_point(&[1.0; 4]));
    let q = 0.4 * cluster.total_capacity() / unit;
    let rod = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let connected = ConnectedPlanner::new(vec![q; 4])
        .plan(&model, &cluster)
        .unwrap();
    (graph, model, cluster, rod, connected, q)
}

#[test]
fn migration_manager_fixes_a_bad_plan_under_steady_load() {
    let (graph, _model, cluster, _rod, connected, q) = contrast_setup();
    // Push rates up on two inputs so the concentrated plan overloads a
    // node persistently (a medium-term shift, where §1 says dynamic
    // distribution is the right tool).
    let rates = [2.0 * q, 2.0 * q, 0.3 * q, 0.3 * q];
    let run = |migration: Option<MigrationConfig>| {
        Simulation::new(
            &graph,
            &connected,
            &cluster,
            rates.iter().map(|&r| SourceSpec::ConstantRate(r)).collect(),
            SimulationConfig {
                horizon: 60.0,
                warmup: 10.0,
                seed: 4,
                migration,
                max_queue: 400_000,
                ..SimulationConfig::default()
            },
        )
        .run()
    };
    let static_run = run(None);
    let dynamic_run = run(Some(MigrationConfig {
        utilisation_trigger: 0.85,
        imbalance_trigger: 0.2,
        ..MigrationConfig::default()
    }));
    // If the static plan handles this point there is nothing to fix.
    if static_run.max_utilisation() > 0.97 || static_run.saturated {
        assert!(dynamic_run.migrations >= 1, "manager never reacted");
        let static_p99 = static_run.latencies.quantile(0.99).unwrap_or(f64::INFINITY);
        let dynamic_p99 = dynamic_run
            .latencies
            .quantile(0.99)
            .unwrap_or(f64::INFINITY);
        assert!(
            dynamic_p99 < static_p99,
            "migration did not help: {dynamic_p99} vs {static_p99}"
        );
    }
}

#[test]
fn pinned_heavy_operators_stay_put_under_pressure() {
    let (graph, model, cluster, _rod, connected, q) = contrast_setup();
    // Pin the heaviest half of the operators by norm.
    let mut ops: Vec<_> = (0..model.num_operators())
        .map(rod::core::ids::OperatorId)
        .collect();
    ops.sort_by(|&a, &b| {
        model
            .operator_norm(b)
            .partial_cmp(&model.operator_norm(a))
            .unwrap()
    });
    let pinned: Vec<_> = ops[..ops.len() / 2].to_vec();
    let report = Simulation::new(
        &graph,
        &connected,
        &cluster,
        vec![SourceSpec::ConstantRate(2.0 * q); 4],
        SimulationConfig {
            horizon: 40.0,
            warmup: 5.0,
            seed: 9,
            migration: Some(MigrationConfig {
                utilisation_trigger: 0.6,
                imbalance_trigger: 0.1,
                pinned: pinned.clone(),
                ..MigrationConfig::default()
            }),
            max_queue: 400_000,
            sample_interval: Some(5.0),
            ..SimulationConfig::default()
        },
    )
    .run();
    // The manager may migrate light operators, never pinned ones —
    // verified indirectly: timeline exists and run completed sanely.
    assert!(!report.timeline.is_empty());
    assert!(report.tuples_out > 0);
}

#[test]
fn scheduling_policies_preserve_throughput_on_linear_road() {
    let graph = linear_road(&LinearRoadConfig::default());
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let unit = model.total_load(&model.variable_point(&[1.0; 4]));
    let q = 0.5 * cluster.total_capacity() / unit;
    let mut processed = Vec::new();
    for policy in [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::RoundRobin,
        SchedulingPolicy::LongestQueueFirst,
    ] {
        let report = Simulation::new(
            &graph,
            &alloc,
            &cluster,
            vec![SourceSpec::ConstantRate(q); 4],
            SimulationConfig {
                horizon: 30.0,
                warmup: 5.0,
                seed: 11,
                scheduling: policy,
                ..SimulationConfig::default()
            },
        )
        .run();
        assert!(!report.saturated, "{policy:?} saturated a feasible point");
        assert!(report.max_utilisation() < 0.9);
        processed.push(report.tuples_processed as i64);
    }
    // Same arrivals (same seed); selectivity draws are consumed in
    // dispatch order so emission totals differ slightly across
    // disciplines — but only slightly (< 0.5%).
    for &p in &processed[1..] {
        assert!(
            ((p - processed[0]).abs() as f64) < 0.005 * processed[0] as f64,
            "{processed:?}"
        );
    }
}

#[test]
fn outage_hurts_resilient_plans_less() {
    // During a node outage the surviving capacity is what matters; after
    // recovery the backlog drains. Both plans take the hit — the test
    // verifies outage + recovery mechanics compose with real workloads.
    let (graph, _model, cluster, rod, _connected, q) = contrast_setup();
    let outage = Outage {
        node: rod::core::ids::NodeId(0),
        start: 20.0,
        end: 26.0,
    };
    let run = |outages: Vec<Outage>| {
        Simulation::new(
            &graph,
            &rod,
            &cluster,
            vec![SourceSpec::ConstantRate(q); 4],
            SimulationConfig {
                horizon: 80.0,
                warmup: 5.0,
                seed: 3,
                outages,
                sample_interval: Some(2.0),
                max_queue: 400_000,
                ..SimulationConfig::default()
            },
        )
        .run()
    };
    let healthy = run(vec![]);
    let failed = run(vec![outage]);
    assert!(failed.peak_queue > healthy.peak_queue * 3);
    // The timeline shows the spike and the drain.
    let peak_sample = failed
        .timeline
        .iter()
        .max_by_key(|s| s.queued)
        .expect("samples");
    assert!(
        (20.0..40.0).contains(&peak_sample.time),
        "queue peak at t={} not near the outage",
        peak_sample.time
    );
    let last = failed.timeline.last().unwrap();
    assert!(
        last.queued < peak_sample.queued / 4,
        "backlog never drained: {} vs peak {}",
        last.queued,
        peak_sample.queued
    );
}

#[test]
fn shedding_degrades_gracefully_on_linear_road_overload() {
    let graph = linear_road(&LinearRoadConfig::default());
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let unit = model.total_load(&model.variable_point(&[1.0; 4]));
    let q = 1.6 * cluster.total_capacity() / unit; // 160% — hopeless without shedding
    let report = Simulation::new(
        &graph,
        &alloc,
        &cluster,
        vec![SourceSpec::ConstantRate(q); 4],
        SimulationConfig {
            horizon: 30.0,
            warmup: 5.0,
            seed: 6,
            shed_above: Some(1_000),
            max_queue: 100_000,
            ..SimulationConfig::default()
        },
    )
    .run();
    assert!(!report.saturated, "shedding must keep the run alive");
    assert!(report.tuples_shed > 0);
    assert!(report.tuples_out > 0, "some results still flow");
    // Latency bounded by the queue cap, not the overload factor.
    assert!(report.latencies.quantile(0.99).unwrap() < 10.0);
}
