//! Simulator ↔ analytic-model integration: the "simulator tracked
//! Borealis very closely" property, plus conservation and latency-shape
//! checks on real workload graphs.

use rod::prelude::*;

#[test]
fn probe_agrees_with_analytic_model() {
    let graph = RandomTreeGenerator::paper_default(2, 6).generate(3);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let outcome = FeasibilityProbe::new(ProbeConfig {
        points: 30,
        horizon: 20.0,
        warmup: 4.0,
        seed: 5,
        ..ProbeConfig::default()
    })
    .run(&model, &cluster, &alloc);
    assert!(
        outcome.agreement() >= 0.8,
        "agreement {} too low",
        outcome.agreement()
    );
    assert!(
        (outcome.simulated_ratio() - outcome.analytic_ratio()).abs() <= 0.2,
        "ratios diverged: sim {} vs analytic {}",
        outcome.simulated_ratio(),
        outcome.analytic_ratio()
    );
}

#[test]
fn tuple_conservation_under_unit_selectivity() {
    // All selectivities 1 ⇒ every source tuple eventually exits exactly
    // once per sink path; with a single chain, in = out (modulo tuples
    // still in flight at the horizon).
    let mut b = GraphBuilder::new();
    let i = b.add_input();
    let (_, s1) = b.add_operator("a", OperatorKind::map(1e-3), &[i]).unwrap();
    b.add_operator("b", OperatorKind::map(1e-3), &[s1]).unwrap();
    let graph = b.build().unwrap();
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(1, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let report = Simulation::new(
        &graph,
        &alloc,
        &cluster,
        vec![SourceSpec::ConstantRate(100.0)],
        SimulationConfig {
            horizon: 30.0,
            warmup: 0.0,
            seed: 2,
            ..SimulationConfig::default()
        },
    )
    .run();
    let missing = report.tuples_in - report.tuples_out;
    assert!(
        (missing as f64) < 0.01 * report.tuples_in as f64 + 20.0,
        "lost {missing} of {} tuples",
        report.tuples_in
    );
    assert!(!report.saturated);
}

#[test]
fn utilisation_tracks_linear_model_on_tree_workload() {
    let graph = RandomTreeGenerator::paper_default(2, 8).generate(8);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    // A clearly-feasible rate point.
    let unit = model.total_load(&model.variable_point(&[1.0, 1.0]));
    let q = 0.5 * cluster.total_capacity() / unit;
    let predicted = ev.utilisations_at(&alloc, &[q, q]);
    let report = Simulation::new(
        &graph,
        &alloc,
        &cluster,
        vec![SourceSpec::ConstantRate(q); 2],
        SimulationConfig {
            horizon: 60.0,
            warmup: 10.0,
            seed: 6,
            ..SimulationConfig::default()
        },
    )
    .run();
    for i in 0..2 {
        assert!(
            (report.utilisations[i] - predicted[i]).abs() < 0.06,
            "node {i}: simulated {} vs predicted {}",
            report.utilisations[i],
            predicted[i]
        );
    }
}

#[test]
fn bursty_traces_hurt_less_resilient_plans_more() {
    use rod::core::baselines::{connected::ConnectedPlanner, Planner};
    let graph = RandomTreeGenerator::paper_default(2, 12).generate(13);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);

    let unit = model.total_load(&model.variable_point(&[1.0, 1.0]));
    let q = 0.6 * cluster.total_capacity() / unit;
    let rod = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let connected = ConnectedPlanner::new(vec![q, q])
        .plan(&model, &cluster)
        .unwrap();
    // Only meaningful when the plans actually differ in resiliency.
    assert!(ev.min_plane_distance(&rod) > ev.min_plane_distance(&connected));

    let traces: Vec<Trace> = paper_traces(8, 4)[..2]
        .iter()
        .map(|(_, t)| t.with_mean(q))
        .collect();
    let run = |alloc: &Allocation| {
        Simulation::new(
            &graph,
            alloc,
            &cluster,
            traces
                .iter()
                .cloned()
                .map(SourceSpec::TraceDriven)
                .collect(),
            SimulationConfig {
                horizon: traces[0].duration(),
                warmup: 10.0,
                seed: 3,
                max_queue: 300_000,
                ..SimulationConfig::default()
            },
        )
        .run()
    };
    let rod_report = run(&rod);
    let conn_report = run(&connected);
    // The resilient plan's peak node must be no busier than the
    // unresilient plan's.
    assert!(
        rod_report.max_utilisation() <= conn_report.max_utilisation() + 0.02,
        "ROD peak {} vs Connected peak {}",
        rod_report.max_utilisation(),
        conn_report.max_utilisation()
    );
}

#[test]
fn outage_without_failover_starves_then_drains() {
    // A mid-run outage with no recovery configured: tuples routed to the
    // dead node queue up during the outage, then drain once it returns —
    // the run stays deterministic and conserves tuples.
    let graph = RandomTreeGenerator::paper_default(2, 6).generate(4);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let run = |outages: Vec<Outage>| {
        Simulation::new(
            &graph,
            &alloc,
            &cluster,
            vec![SourceSpec::ConstantRate(30.0); 2],
            SimulationConfig {
                horizon: 40.0,
                warmup: 2.0,
                seed: 11,
                outages,
                ..SimulationConfig::default()
            },
        )
        .run()
    };
    let healthy = run(vec![]);
    let hit = run(vec![Outage {
        node: NodeId(0),
        start: 10.0,
        end: 18.0,
    }]);
    assert_eq!(hit.failovers, 0, "no failover was configured");
    assert!(hit.recoveries.is_empty());
    assert!(
        hit.peak_queue > healthy.peak_queue,
        "outage did not back anything up: {} vs {}",
        hit.peak_queue,
        healthy.peak_queue
    );
    // Selectivities are non-unit here, so no tuple-count identity — but
    // the backlog must drain after the node returns and nothing is shed.
    assert_eq!(hit.tuples_shed, 0);
    assert!(hit.tuples_out > 0);
    assert!(hit.post_failure_max_utilisation.is_some());
}

#[test]
fn failover_rehomes_orphans_and_records_recovery() {
    // With a FailoverTable, a permanent outage is detected and every
    // orphaned operator lands on its designated backup before the end of
    // the run; throughput resumes instead of starving.
    let graph = RandomTreeGenerator::paper_default(2, 6).generate(4);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let table = FailoverTable::precompute(&model, &cluster, &alloc);
    let dead = NodeId(0);
    let orphans = alloc.operators_on(dead);
    assert!(!orphans.is_empty(), "fixture: node 0 must host operators");
    let report = Simulation::new(
        &graph,
        &alloc,
        &cluster,
        vec![SourceSpec::ConstantRate(30.0); 2],
        SimulationConfig {
            horizon: 40.0,
            warmup: 2.0,
            seed: 11,
            outages: vec![Outage {
                node: dead,
                start: 10.0,
                end: 39.0,
            }],
            failover: Some(FailoverConfig::new(table.clone(), 0.5)),
            ..SimulationConfig::default()
        },
    )
    .run();
    assert_eq!(report.failovers as usize, orphans.len());
    assert_eq!(report.recoveries.len(), 1);
    let rec = &report.recoveries[0];
    assert_eq!(rec.node, dead.index());
    assert!((rec.detected_at - 10.5).abs() < 1e-9);
    assert!(rec.recovered_at >= rec.detected_at);
    for op in orphans {
        let backup = table.backup_of(dead, op).unwrap();
        assert_eq!(
            report.final_hosts[op.index()],
            backup.index(),
            "operator {} not on its table backup",
            op.index()
        );
    }
}

#[test]
fn join_graph_runs_in_simulator() {
    use rod::workloads::joins::{join_pairs, JoinConfig};
    let graph = join_pairs(&JoinConfig::default(), 5);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let report = Simulation::new(
        &graph,
        &alloc,
        &cluster,
        vec![SourceSpec::ConstantRate(20.0); 4],
        SimulationConfig {
            horizon: 30.0,
            warmup: 5.0,
            seed: 9,
            ..SimulationConfig::default()
        },
    )
    .run();
    assert!(report.tuples_out > 0, "join emitted nothing");
    assert!(!report.saturated);
}
