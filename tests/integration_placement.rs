//! Cross-crate integration: workload generators → load model → every
//! placement algorithm → evaluation. Checks the structural invariants
//! that DESIGN.md promises, across many generated graphs.

use rod::core::metrics::{feasible_ratio, make_estimator};
use rod::prelude::*;

fn planners_for(model: &LoadModel, seed: u64) -> Vec<(String, Box<dyn Planner>)> {
    let d = model.num_inputs();
    let rates = vec![10.0; d];
    let history: Vec<Vec<f64>> = (0..16)
        .map(|t| (0..d).map(|k| 5.0 + ((t * (k + 1)) % 7) as f64).collect())
        .collect();
    vec![
        (
            "ROD".into(),
            Box::new(RodPlanner::new()) as Box<dyn Planner>,
        ),
        (
            "LLF".into(),
            Box::new(rod::core::baselines::llf::LlfPlanner::new(rates.clone())),
        ),
        (
            "Connected".into(),
            Box::new(rod::core::baselines::connected::ConnectedPlanner::new(
                rates,
            )),
        ),
        (
            "Correlation".into(),
            Box::new(rod::core::baselines::correlation::CorrelationPlanner::new(
                history,
            )),
        ),
        (
            "Random".into(),
            Box::new(rod::core::baselines::random::RandomPlanner::new(seed)),
        ),
    ]
}

#[test]
fn every_planner_places_every_operator_exactly_once() {
    for seed in 0..5u64 {
        let graph = RandomTreeGenerator::paper_default(3, 10).generate(seed);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(4, 1.0);
        for (name, planner) in planners_for(&model, seed) {
            let alloc = planner.plan(&model, &cluster).unwrap();
            assert!(alloc.is_complete(), "{name} left operators unplaced");
            assert_eq!(
                alloc.node_counts().iter().sum::<usize>(),
                model.num_operators(),
                "{name} double-placed operators"
            );
        }
    }
}

#[test]
fn column_sums_are_allocation_invariant() {
    // Σ_i l^n_ik = l_k for every plan (paper equation below L^n = A L^o).
    let graph = RandomTreeGenerator::paper_default(4, 12).generate(9);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    for (name, planner) in planners_for(&model, 9) {
        let alloc = planner.plan(&model, &cluster).unwrap();
        let ln = ev.node_load_matrix(&alloc);
        for k in 0..model.num_vars() {
            let col: f64 = (0..cluster.num_nodes()).map(|i| ln[(i, k)]).sum();
            assert!(
                (col - model.total_coeffs()[k]).abs() < 1e-9,
                "{name}: column {k} sums to {col}, expected {}",
                model.total_coeffs()[k]
            );
        }
    }
}

#[test]
fn feasibility_is_monotone_in_rates() {
    let graph = RandomTreeGenerator::paper_default(3, 8).generate(2);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    // Find a feasible boundary-ish point by scaling up until infeasible.
    let mut r = vec![1.0; 3];
    while ev.is_feasible_at(&alloc, &r) {
        for x in r.iter_mut() {
            *x *= 1.3;
        }
    }
    // Every down-scaled version of an infeasible boundary crossing that
    // was feasible one step ago must be feasible.
    let back: Vec<f64> = r.iter().map(|x| x / 1.3).collect();
    assert!(ev.is_feasible_at(&alloc, &back));
    let quarter: Vec<f64> = back.iter().map(|x| x * 0.25).collect();
    assert!(ev.is_feasible_at(&alloc, &quarter));
}

#[test]
fn rod_dominates_on_average_across_graphs() {
    // The Figure 14 headline, at test scale: mean ROD ratio across graphs
    // beats every baseline's mean.
    let cluster = Cluster::homogeneous(4, 1.0);
    let graphs = 4;
    let mut totals: Vec<(String, f64)> = Vec::new();
    for seed in 0..graphs {
        let graph = RandomTreeGenerator::paper_default(4, 15).generate(seed);
        let model = LoadModel::derive(&graph).unwrap();
        let ev = PlanEvaluator::new(&model, &cluster);
        let estimator = make_estimator(&model, &cluster, 10_000, seed);
        for (name, planner) in planners_for(&model, seed) {
            let alloc = planner.plan(&model, &cluster).unwrap();
            let ratio = feasible_ratio(&ev, &estimator, &alloc);
            match totals.iter_mut().find(|(n, _)| *n == name) {
                Some((_, t)) => *t += ratio,
                None => totals.push((name, ratio)),
            }
        }
    }
    let rod = totals.iter().find(|(n, _)| n == "ROD").unwrap().1;
    for (name, total) in &totals {
        assert!(
            rod >= *total - 1e-9,
            "ROD mean {} lost to {name} mean {}",
            rod / graphs as f64,
            total / graphs as f64
        );
    }
}

#[test]
fn plane_distance_bounds_feasible_ratio() {
    // Figure 9's lower bound: the inscribed hypersphere of radius r gives
    // ratio >= V_d·r^d/2^d · d! (up to sampling noise).
    let graph = RandomTreeGenerator::paper_default(3, 12).generate(4);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let estimator = make_estimator(&model, &cluster, 30_000, 4);
    let d = model.num_vars();
    for (name, planner) in planners_for(&model, 4) {
        let alloc = planner.plan(&model, &cluster).unwrap();
        let r = ev.weight_matrix(&alloc).min_plane_distance();
        let ratio = feasible_ratio(&ev, &estimator, &alloc);
        let bound = rod::geom::simplex::hypersphere_ratio_bound(r, d);
        assert!(
            ratio >= bound - 0.02,
            "{name}: ratio {ratio} below hypersphere bound {bound}"
        );
    }
}

#[test]
fn heterogeneous_clusters_balance_proportionally() {
    let graph = RandomTreeGenerator::paper_default(3, 20).generate(6);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::heterogeneous(vec![4.0, 2.0, 1.0]);
    let ev = PlanEvaluator::new(&model, &cluster);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    // At a mid-simplex rate point, utilisations should be within a
    // factor ~2 of each other despite the 4x capacity spread.
    let q =
        0.5 * cluster.total_capacity() / model.total_load(&model.variable_point(&[1.0, 1.0, 1.0]));
    let u = ev.utilisations_at(&alloc, &[q, q, q]);
    let (umin, umax) = (
        u.as_slice().iter().copied().fold(f64::INFINITY, f64::min),
        u.as_slice().iter().copied().fold(0.0f64, f64::max),
    );
    assert!(
        umax / umin.max(1e-9) < 3.0,
        "utilisations too skewed: {u:?}"
    );
}
