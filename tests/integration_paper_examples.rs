//! The paper's worked examples, end to end: Table 2, Figures 5/6,
//! Theorem 1, Example 3, and the §7.3.1 ROD-vs-optimal band.

use rod::core::baselines::optimal::OptimalPlanner;
use rod::core::examples_paper::{example2_plans, example3_graph, figure4_graph};
use rod::core::metrics::{feasible_ratio, make_estimator};
use rod::geom::polygon::feasible_area;
use rod::geom::simplex_volume;
use rod::prelude::*;

#[test]
fn table2_node_load_matrices() {
    let model = LoadModel::derive(&figure4_graph()).unwrap();
    let [a, b, c] = example2_plans();
    let check = |alloc: &Allocation, rows: [[f64; 2]; 2]| {
        let ln = alloc.node_load_matrix(model.lo());
        assert_eq!(ln.row(0), &rows[0]);
        assert_eq!(ln.row(1), &rows[1]);
    };
    check(&a, [[4.0, 2.0], [6.0, 9.0]]);
    check(&b, [[4.0, 9.0], [6.0, 2.0]]);
    check(&c, [[10.0, 0.0], [0.0, 11.0]]);
}

#[test]
fn figure5_feasible_set_ordering() {
    // Exact areas with C1 = C2 = 1: plan (b) wins because it separates
    // the two heaviest operators (o2: 6r1, o3: 9r2) onto different nodes
    // — precisely the Figure 8 lesson that stacking the largest weights
    // of different streams on one node (plan (a)'s N2 = {o2, o3})
    // creates a bottleneck. Plan (c) (whole chains per node) is worst.
    //
    //   area(b) = 0.012077…  >  area(a) = 1/108  >  area(c) = 1/110
    let model = LoadModel::derive(&figure4_graph()).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let areas: Vec<f64> = example2_plans()
        .iter()
        .map(|p| feasible_area(&ev.feasible_region(p).hyperplanes()).unwrap())
        .collect();
    assert!(
        areas[1] > areas[0],
        "area(b)={} <= area(a)={}",
        areas[1],
        areas[0]
    );
    assert!(
        areas[0] > areas[2],
        "area(a)={} <= area(c)={}",
        areas[0],
        areas[2]
    );
    // Plan (a)'s binding constraint is N2 alone: triangle (1/6)·(1/9)/2.
    assert!((areas[0] - 1.0 / 108.0).abs() < 1e-9);
    // Plan (c) is exactly the rectangle (1/10)·(1/11).
    assert!((areas[2] - 1.0 / 110.0).abs() < 1e-9);
    // And MMPD ranks them the same way.
    let pd: Vec<f64> = example2_plans()
        .iter()
        .map(|p| ev.min_plane_distance(p))
        .collect();
    assert!(pd[1] > pd[0]);
}

#[test]
fn theorem1_ideal_set_contains_every_plan() {
    let model = LoadModel::derive(&figure4_graph()).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let ideal = ev.ideal_volume().unwrap();
    // Theorem 1's formula: C_T^d / (d! l1 l2) = 4 / (2·110).
    assert!((ideal - simplex_volume(&[10.0, 11.0], 2.0)).abs() < 1e-15);
    for plan in example2_plans() {
        let area = feasible_area(&ev.feasible_region(&plan).hyperplanes()).unwrap();
        assert!(
            area <= ideal + 1e-9,
            "plan area {area} exceeds ideal {ideal}"
        );
    }
}

#[test]
fn ideal_matrix_achieves_ideal_volume() {
    // A (synthetic) node load matrix equal to Theorem 1's L^n* has
    // feasible set exactly the ideal simplex. Build it with fractional
    // "operators" directly in geometry space.
    use rod::geom::{FeasibleRegion, Matrix, Vector, VolumeEstimator};
    let l = [10.0, 11.0];
    let (c1, c2) = (0.7, 1.3);
    let ct = c1 + c2;
    let ln = Matrix::from_rows(&[
        &[l[0] * c1 / ct, l[1] * c1 / ct],
        &[l[0] * c2 / ct, l[1] * c2 / ct],
    ]);
    let region = FeasibleRegion::new(ln, Vector::from([c1, c2]));
    let est = VolumeEstimator::new(&l, ct, 30_000, 3).estimate(&region);
    assert!(
        est.ratio_to_ideal > 0.999,
        "ideal matrix ratio {}",
        est.ratio_to_ideal
    );
}

#[test]
fn example3_linearisation_names_the_paper_variables() {
    let g = example3_graph();
    let model = LoadModel::derive(&g).unwrap();
    // r1, r2 system inputs; r3 = output of o1; r4 = output of o5.
    assert_eq!(model.num_vars(), 4);
    use rod::core::linearize::VarInfo;
    let vars = &model.linearization().vars;
    assert!(matches!(vars[0], VarInfo::SystemInput(k) if k.index() == 0));
    assert!(matches!(vars[1], VarInfo::SystemInput(k) if k.index() == 1));
    let names: Vec<&str> = vars[2..]
        .iter()
        .map(|v| match v {
            VarInfo::Introduced { operator, .. } => g.operator(*operator).name.as_str(),
            _ => panic!("expected introduced"),
        })
        .collect();
    assert_eq!(names, vec!["o1", "o5"]);
}

#[test]
fn example3_join_load_is_c_over_s_of_its_output() {
    let g = example3_graph();
    let model = LoadModel::derive(&g).unwrap();
    // o5: cost_per_pair 4.0, selectivity 0.25 → load = 16 · r4.
    let join_row = model.operator_row(rod::core::ids::OperatorId(4));
    assert_eq!(join_row, &[0.0, 0.0, 0.0, 16.0]);
}

#[test]
fn rod_within_optimal_band_on_small_graphs() {
    // §7.3.1: avg 0.95, min 0.82 over small instances. At test scale we
    // check a handful of graphs stay above 0.80 and average above 0.90.
    let cluster = Cluster::homogeneous(2, 1.0);
    let mut ratios = Vec::new();
    for seed in 0..6u64 {
        let graph = RandomTreeGenerator::paper_default(2, 5).generate(seed);
        let model = LoadModel::derive(&graph).unwrap();
        let ev = PlanEvaluator::new(&model, &cluster);
        let estimator = make_estimator(&model, &cluster, 20_000, seed);
        let rod = RodPlanner::new()
            .place(&model, &cluster)
            .unwrap()
            .allocation;
        let rod_ratio = feasible_ratio(&ev, &estimator, &rod);
        let (_, opt_ratio) = OptimalPlanner {
            samples: 20_000,
            seed,
            ..OptimalPlanner::new()
        }
        .search(&model, &cluster)
        .unwrap();
        ratios.push((rod_ratio / opt_ratio).min(1.0));
    }
    let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(avg > 0.90, "avg ROD/OPT {avg} (paper: 0.95)");
    assert!(min > 0.75, "min ROD/OPT {min} (paper: 0.82)");
}
