//! Whole-pipeline integration: traces → workload → linearisation →
//! clustering → ROD (with extensions) → simulation, plus serde
//! round-trips of the public artefacts.

use rod::core::clustering::{ArcCosts, ClusteringSearch};
use rod::core::rod::{RodOptions, RodPlanner};
use rod::prelude::*;

#[test]
fn end_to_end_traffic_pipeline() {
    use rod::workloads::traffic::{traffic_monitoring, TrafficConfig};
    // 1. Workload.
    let graph = traffic_monitoring(&TrafficConfig::default());
    // 2. Model.
    let model = LoadModel::derive(&graph).unwrap();
    assert_eq!(model.num_vars(), graph.num_inputs(), "linear workload");
    // 3. Clustered resilient placement.
    let cluster = Cluster::homogeneous(3, 1.0);
    let best = ClusteringSearch::default()
        .best(&model, &cluster, &ArcCosts::uniform(1e-4))
        .unwrap();
    assert!(best.allocation.is_complete());
    // 4. Drive with synthetic traces at a feasible mean point.
    let unit = model.total_load(&model.variable_point(&[1.0; 3]));
    let q = 0.5 * cluster.total_capacity() / unit;
    let traces: Vec<Trace> = paper_traces(8, 1)
        .into_iter()
        .map(|(_, t)| t.with_mean(q))
        .collect();
    let report = Simulation::new(
        &graph,
        &best.allocation,
        &cluster,
        traces.into_iter().map(SourceSpec::TraceDriven).collect(),
        SimulationConfig {
            horizon: 60.0,
            warmup: 10.0,
            seed: 12,
            ..SimulationConfig::default()
        },
    )
    .run();
    assert!(report.tuples_out > 0);
    assert!(report.mean_latency().is_some());
}

#[test]
fn lower_bound_plans_win_on_truncated_sets() {
    use rod::core::metrics::make_estimator;
    // Average over several graphs: the §6.1 extension must help (or tie)
    // on the workload set it optimises for. The bound is asymmetric —
    // one input has a known high floor, the others none — which is the
    // regime where knowing B has leverage (a symmetric bound shifts all
    // candidate distances nearly equally and changes nothing).
    let inputs = 3;
    let cluster = Cluster::homogeneous(3, 1.0);
    let mut gain_sum = 0.0;
    let graphs = 5;
    for seed in 0..graphs {
        let graph = RandomTreeGenerator::paper_default(inputs, 12).generate(40 + seed);
        let model = LoadModel::derive(&graph).unwrap();
        let ev = PlanEvaluator::new(&model, &cluster);
        let estimator = make_estimator(&model, &cluster, 25_000, seed);
        let d = model.num_vars();
        let b: Vec<f64> = (0..inputs)
            .map(|k| {
                if k == 0 {
                    1.2 * cluster.total_capacity() / (model.total_coeffs()[k] * (d as f64 + 1.0))
                } else {
                    0.0
                }
            })
            .collect();
        let b_var = model.variable_point(&b);

        let plain = RodPlanner::new()
            .place(&model, &cluster)
            .unwrap()
            .allocation;
        let lb = RodPlanner::with_options(RodOptions {
            input_lower_bound: Some(b),
            ..RodOptions::default()
        })
        .place(&model, &cluster)
        .unwrap()
        .allocation;

        let truncated_ratio = |alloc: &Allocation| {
            let region = ev.feasible_region(alloc);
            let above: Vec<_> = estimator.points().iter().filter(|p| b_var.le(p)).collect();
            above.iter().filter(|p| region.contains(p)).count() as f64 / above.len().max(1) as f64
        };
        gain_sum += truncated_ratio(&lb) - truncated_ratio(&plain);
    }
    assert!(
        gain_sum / graphs as f64 > -0.02,
        "LB extension lost on its own objective: mean gain {}",
        gain_sum / graphs as f64
    );
}

#[test]
fn nonlinear_pipeline_places_and_simulates() {
    use rod::workloads::joins::{join_pairs, JoinConfig};
    let graph = join_pairs(
        &JoinConfig {
            pairs: 2,
            variable_selectivity_heads: true,
            ..JoinConfig::default()
        },
        6,
    );
    let model = LoadModel::derive(&graph).unwrap();
    assert!(
        model.num_vars() > graph.num_inputs(),
        "introduced variables"
    );
    let cluster = Cluster::homogeneous(3, 1.0);
    let plan = RodPlanner::new().place(&model, &cluster).unwrap();
    assert!(plan.allocation.is_complete());
    let report = Simulation::new(
        &graph,
        &plan.allocation,
        &cluster,
        vec![SourceSpec::ConstantRate(15.0); 4],
        SimulationConfig {
            horizon: 20.0,
            warmup: 4.0,
            seed: 3,
            ..SimulationConfig::default()
        },
    )
    .run();
    assert!(!report.saturated);
}

#[test]
fn public_artefacts_serde_round_trip() {
    let graph = RandomTreeGenerator::paper_default(2, 6).generate(1);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let plan = RodPlanner::new().place(&model, &cluster).unwrap();

    // Graph round-trip. Rates are compared approximately: JSON float
    // parsing may differ from the original in the last ulp, which
    // compounds through multiplicative propagation.
    let json = serde_json::to_string(&graph).unwrap();
    let graph2: rod::core::QueryGraph = serde_json::from_str(&json).unwrap();
    assert_eq!(graph2.num_operators(), graph.num_operators());
    for (a, b) in graph2
        .propagate_rates(&[2.0, 3.0])
        .iter()
        .zip(graph.propagate_rates(&[2.0, 3.0]))
    {
        assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "{a} vs {b}");
    }

    // Allocation round-trip.
    let json = serde_json::to_string(&plan.allocation).unwrap();
    let alloc2: Allocation = serde_json::from_str(&json).unwrap();
    assert_eq!(alloc2, plan.allocation);

    // Model round-trip preserves the matrix.
    let json = serde_json::to_string(&model).unwrap();
    let model2: LoadModel = serde_json::from_str(&json).unwrap();
    assert_eq!(model2.lo(), model.lo());

    // Trace round-trip.
    let trace = Trace::new(vec![1.0, 2.5, 0.0], 0.5);
    let json = serde_json::to_string(&trace).unwrap();
    let trace2: Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(trace2, trace);
}

#[test]
fn clustering_respects_network_cost_knob() {
    // Higher transfer cost ⇒ (weakly) fewer inter-node arcs in the
    // chosen plan.
    let graph = RandomTreeGenerator::paper_default(3, 10).generate(2);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let arcs_at = |cost: f64| {
        let best = ClusteringSearch::default()
            .best(&model, &cluster, &ArcCosts::uniform(cost))
            .unwrap();
        ev.internode_arcs(&best.allocation)
    };
    let cheap = arcs_at(1e-6);
    let pricey = arcs_at(5e-3);
    assert!(
        pricey <= cheap,
        "expensive network should not increase crossings: {pricey} > {cheap}"
    );
}
