//! Manual timing probe (ignored in CI): scalar vs SIMD kernel across
//! region shapes, for quick A/B iteration on the kernel without a full
//! `perf_planner` run. Run with:
//! `cargo test -p rod-geom --release --test path_timing_probe -- --ignored --nocapture`

use std::time::Instant;

use rod_geom::{FeasibilityKernel, FeasibleRegion, HaltonSeq, Matrix, SimplexSampler, Vector};

fn halton_points(dim: usize, n: usize, seed: u64) -> Vec<Vector> {
    let sampler = SimplexSampler::new(&vec![1.0; dim], 1.0);
    let mut seq = HaltonSeq::shifted(dim, seed);
    (0..n)
        .map(|_| sampler.map_cube_point(&seq.next_point()))
        .collect()
}

fn time_paths(name: &str, points: &[Vector], region: &FeasibleRegion, reps: usize) {
    let auto = FeasibilityKernel::new(points);
    let forced = FeasibilityKernel::new_force_scalar(points);
    let mut scalar_best = f64::INFINITY;
    let mut simd_best = f64::INFINITY;
    let mut count = 0;
    for _ in 0..reps {
        let t = Instant::now();
        let c1 = forced.count_feasible(region);
        scalar_best = scalar_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let c2 = auto.count_feasible(region);
        simd_best = simd_best.min(t.elapsed().as_secs_f64());
        assert_eq!(c1, c2);
        count = c1;
    }
    println!(
        "{name}: live {count}/{} scalar {:.3}ms simd {:.3}ms speedup {:.2}x",
        points.len(),
        scalar_best * 1e3,
        simd_best * 1e3,
        scalar_best / simd_best
    );
}

#[test]
#[ignore]
fn probe() {
    // Wide survival: few constraints, most points live.
    let points = halton_points(2, 100_000, 7);
    let region = FeasibleRegion::new(
        Matrix::from_rows(&[&[1.2, 0.4], &[0.4, 1.3], &[0.8, 0.8], &[0.3, 1.1]]),
        Vector::from([0.6, 0.6, 0.6, 0.6]),
    );
    time_paths("wide_d2_n4", &points, &region, 9);

    // Heavy kill: d6, 16 rows, sparse rows, ~1-2% survival.
    let points = halton_points(6, 100_000, 7);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for i in 0..16 {
        let mut r = vec![0.0; 6];
        r[i % 6] = 1.4 + 0.1 * (i as f64 % 3.0);
        r[(i + 2) % 6] = 0.9;
        rows.push(r);
    }
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let region = FeasibleRegion::new(Matrix::from_rows(&row_refs), Vector::from(vec![0.22; 16]));
    time_paths("kill_d6_n16", &points, &region, 9);

    // Dense mid-survival: d8, denser rows.
    let points = halton_points(8, 100_000, 7);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for i in 0..8 {
        let mut r = vec![0.0; 8];
        for (j, slot) in r.iter_mut().enumerate() {
            if (i + j) % 2 == 0 {
                *slot = 0.6 + 0.05 * j as f64;
            }
        }
        rows.push(r);
    }
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let region = FeasibleRegion::new(Matrix::from_rows(&row_refs), Vector::from(vec![0.5; 8]));
    time_paths("dense_d8_n8", &points, &region, 9);
}
