//! Bit-identity contract between the AVX2 and scalar kernel paths.
//!
//! The SIMD port in `rod_geom::simd` promises *bit-identical* results,
//! not merely close ones: lanes are points, accumulation order per
//! point is unchanged (k-ascending from `+0.0`, multiply then add,
//! never FMA), and masks carry no arithmetic. These tests pin that
//! contract with property-based sweeps over random batches — including
//! signed zeros and denormal coordinates, where naive vectorisation
//! shortcuts (FMA contraction, re-associated reductions, flush-to-zero)
//! would first diverge — plus forced-path tests showing that
//! `ROD_NO_SIMD` and the `*_force_scalar` constructors observably route
//! work through the scalar reference loops (via the process-global
//! path counters that `rod_core::obs::record_kernel_path` snapshots).
//!
//! The whole file is path-agnostic: on hosts without AVX2, or under the
//! CI leg that exports `ROD_NO_SIMD=1`, both legs of every comparison
//! run the scalar loops and the assertions still hold.

use proptest::prelude::*;

use rod_geom::simd::{path_counts, resolve_path, select_path};
use rod_geom::{
    FeasibilityKernel, FeasibleRegion, KernelPath, Matrix, PointBatch, Vector, VolumeEstimator,
};

/// A finite coordinate, biased toward the values where floating-point
/// shortcuts first diverge: signed zeros and (positive and negative)
/// denormals alongside ordinary magnitudes. Never NaN.
fn coordinate() -> impl Strategy<Value = f64> {
    (0u32..10, -100.0..100.0f64, 1u64..4096).prop_map(|(sel, normal, bits)| match sel {
        0 => 0.0,
        1 => -0.0,
        2 => f64::from_bits(bits),
        3 => -f64::from_bits(bits),
        _ => normal,
    })
}

/// Splits a flat coordinate stream into `d`-dimensional points,
/// dropping the ragged remainder. (The vendored proptest has no
/// flat-map, so dimension and coordinates are drawn independently.)
fn chunk_points(d: usize, flat: &[f64]) -> Vec<Vector> {
    flat.chunks_exact(d)
        .map(|c| Vector::new(c.to_vec()))
        .collect()
}

/// Sparse-ish constraint rows from a flat `(keep, magnitude)` stream:
/// each coefficient is zero half the time, exercising the kernel's nnz
/// row pruning.
fn chunk_rows(d: usize, n_rows: usize, flat: &[(u32, f64)]) -> Vec<Vec<f64>> {
    flat.chunks_exact(d)
        .take(n_rows)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&(keep, mag)| if keep == 0 { 0.0 } else { mag })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `dot_into` (runtime-dispatched) and `dot_into_scalar` produce
    /// `to_bits()`-equal loads for every point — the strongest possible
    /// equivalence, covering tile interiors and the ragged tail.
    #[test]
    fn dot_into_loads_are_bit_identical(
        d in 1usize..6,
        flat in prop::collection::vec(coordinate(), 1..1500),
        coeff_pool in prop::collection::vec(coordinate(), 5),
    ) {
        let points = chunk_points(d, &flat);
        prop_assume!(!points.is_empty());
        let coeffs = &coeff_pool[..d];
        let batch = PointBatch::from_points(&points);
        let mut simd_out = vec![0.0f64; batch.num_points()];
        let mut scalar_out = vec![0.0f64; batch.num_points()];
        batch.dot_into(coeffs, &mut simd_out);
        batch.dot_into_scalar(coeffs, &mut scalar_out);
        for (i, (a, b)) in simd_out.iter().zip(&scalar_out).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "load diverged at point {}", i);
        }
    }

    /// Feasible counts agree byte-for-byte across the auto-dispatched
    /// kernel, a forced-scalar kernel, the pinned scalar range walk,
    /// and the semantic oracle (`FeasibleRegion::contains` per point).
    #[test]
    fn feasible_counts_are_identical_across_paths(
        d in 1usize..6,
        flat in prop::collection::vec(coordinate(), 1..1500),
        n_rows in 1usize..=8,
        row_pool in prop::collection::vec((0u32..2, 0.01..3.0f64), 40),
        caps in prop::collection::vec(0.1..4.0f64, 8),
        lb_pool in prop::collection::vec((0u32..3, 0.0..0.3f64), 5),
    ) {
        let points = chunk_points(d, &flat);
        prop_assume!(!points.is_empty());
        let rows = chunk_rows(d, n_rows, &row_pool);
        let lb: Vec<f64> = lb_pool[..d]
            .iter()
            .map(|&(keep, v)| if keep == 0 { v } else { 0.0 })
            .collect();
        let n_rows = rows.len();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let region = FeasibleRegion::with_lower_bound(
            Matrix::from_rows(&row_refs),
            Vector::new(caps[..n_rows].to_vec()),
            Vector::new(lb),
        );
        let auto = FeasibilityKernel::new(&points);
        let forced = FeasibilityKernel::new_force_scalar(&points);
        let oracle = points.iter().filter(|p| region.contains(p)).count();
        let c_auto = auto.count_feasible(&region);
        prop_assert_eq!(c_auto, oracle);
        prop_assert_eq!(c_auto, forced.count_feasible(&region));
        prop_assert_eq!(c_auto, auto.count_feasible_range_scalar(&region, 0, points.len()));
    }
}

/// Volume estimates — the quantity the planner actually consumes — are
/// `to_bits()`-equal between the dispatched and the pinned-scalar
/// estimator legs, across several seeds and shapes.
#[test]
fn volume_estimates_are_bit_identical() {
    for (d, n_rows, seed) in [(2usize, 4usize, 7u64), (4, 8, 11), (6, 16, 42)] {
        let estimator = VolumeEstimator::new(&vec![1.0; d], 1.0, 4096, seed);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..n_rows {
            let mut r = vec![0.0; d];
            r[i % d] = 1.1 + 0.07 * i as f64;
            r[(i + 1) % d] = 0.6;
            rows.push(r);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let region =
            FeasibleRegion::new(Matrix::from_rows(&row_refs), Vector::new(vec![0.4; n_rows]));
        let fast = estimator.estimate(&region);
        let pinned = estimator.estimate_kernel_scalar(&region);
        assert_eq!(
            fast.ratio_to_ideal.to_bits(),
            pinned.ratio_to_ideal.to_bits()
        );
        assert_eq!(fast.absolute.to_bits(), pinned.absolute.to_bits());
        assert_eq!(fast.samples, pinned.samples);
    }
}

fn probe_points(d: usize, n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            Vector::new(
                (0..d)
                    .map(|k| ((i * (k + 3) + 1) % 97) as f64 / 97.0)
                    .collect(),
            )
        })
        .collect()
}

fn probe_region(d: usize) -> FeasibleRegion {
    let rows: Vec<Vec<f64>> = (0..d)
        .map(|i| {
            let mut r = vec![0.3; d];
            r[i] = 1.2;
            r
        })
        .collect();
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    FeasibleRegion::new(Matrix::from_rows(&row_refs), Vector::new(vec![0.8; d]))
}

/// A forced-scalar kernel reports `Scalar` and measurably bumps the
/// scalar block/dot counters when it runs. (Counters are process-global
/// and monotone, so with tests running in parallel we assert growth on
/// the expected counter, never stasis on the other.)
#[test]
fn force_scalar_is_observably_scalar() {
    let points = probe_points(3, 5000);
    let region = probe_region(3);
    let kernel = FeasibilityKernel::new_force_scalar(&points);
    assert_eq!(kernel.path(), KernelPath::Scalar);
    let before = path_counts();
    let count = kernel.count_feasible(&region);
    let mut out = vec![0.0; points.len()];
    kernel
        .batch()
        .dot_into_scalar(&[0.5, 0.25, 0.125], &mut out);
    let after = path_counts();
    assert!(count > 0);
    // 5000 points / 2048-point blocks = at least 3 scalar blocks.
    assert!(after.scalar_blocks >= before.scalar_blocks + 3);
    assert!(after.scalar_dot_rows > before.scalar_dot_rows);
}

/// The auto-dispatched kernel bumps the counter of whichever path it
/// selected — `Simd` on AVX2 hosts, `Scalar` under `ROD_NO_SIMD=1` or
/// on hosts without AVX2. Passes identically in both CI matrix legs.
#[test]
fn auto_kernel_counts_on_its_selected_path() {
    let points = probe_points(3, 5000);
    let region = probe_region(3);
    let kernel = FeasibilityKernel::new(&points);
    let before = path_counts();
    let count = kernel.count_feasible(&region);
    let mut out = vec![0.0; points.len()];
    kernel.batch().dot_into(&[0.5, 0.25, 0.125], &mut out);
    let after = path_counts();
    assert!(count > 0);
    match kernel.path() {
        KernelPath::Simd => {
            assert!(after.simd_blocks >= before.simd_blocks + 3);
            assert!(after.simd_dot_rows > before.simd_dot_rows);
        }
        KernelPath::Scalar => {
            assert!(after.scalar_blocks >= before.scalar_blocks + 3);
            assert!(after.scalar_dot_rows > before.scalar_dot_rows);
        }
    }
}

/// Setting `ROD_NO_SIMD=1` pins every *newly constructed* kernel to the
/// scalar path, regardless of host support. The variable is restored
/// before asserting; every other test in this binary is path-agnostic,
/// so the brief scalar window cannot fail them.
#[test]
fn rod_no_simd_env_pins_new_kernels_to_scalar() {
    let points = probe_points(2, 100);
    let region = probe_region(2);
    let prev = std::env::var_os("ROD_NO_SIMD");
    std::env::set_var("ROD_NO_SIMD", "1");
    let selected = select_path(false);
    let kernel = FeasibilityKernel::new(&points);
    let path = kernel.path();
    let before = path_counts();
    let count = kernel.count_feasible(&region);
    let after = path_counts();
    match prev {
        Some(v) => std::env::set_var("ROD_NO_SIMD", v),
        None => std::env::remove_var("ROD_NO_SIMD"),
    }
    assert_eq!(selected, KernelPath::Scalar);
    assert_eq!(path, KernelPath::Scalar);
    assert!(count > 0);
    assert!(after.scalar_blocks > before.scalar_blocks);
}

/// The dispatch precedence (forced > env > host support) as a pure
/// function — true on every host, with no environment mutation.
#[test]
fn dispatch_precedence() {
    assert_eq!(resolve_path(true, false, true), KernelPath::Scalar);
    assert_eq!(resolve_path(false, true, true), KernelPath::Scalar);
    assert_eq!(resolve_path(false, false, false), KernelPath::Scalar);
    assert_eq!(resolve_path(false, false, true), KernelPath::Simd);
}
