//! Property-based tests for the geometry layer.

use proptest::prelude::*;

use rod_geom::polygon::{feasible_area, Polygon};
use rod_geom::qmc::radical_inverse;
use rod_geom::simplex::{simplex_volume, unit_cube_to_simplex, SimplexSampler};
use rod_geom::{
    approx_eq, FeasibleRegion, Hyperplane, Matrix, OnlineStats, Vector, VolumeEstimator,
};

fn small_f64() -> impl Strategy<Value = f64> {
    (1u32..1000).prop_map(|x| x as f64 / 100.0)
}

proptest! {
    #[test]
    fn dot_is_commutative(a in prop::collection::vec(-100.0..100.0f64, 1..8),
                          b_seed in 0u64..1000) {
        let mut b = a.clone();
        for (i, x) in b.iter_mut().enumerate() {
            *x = (*x + b_seed as f64) * 0.37 + i as f64;
        }
        let va = Vector::new(a);
        let vb = Vector::new(b);
        prop_assert!(approx_eq(va.dot(&vb), vb.dot(&va)));
    }

    #[test]
    fn norm_triangle_inequality(pairs in prop::collection::vec(
        (-50.0..50.0f64, -50.0..50.0f64), 1..8)) {
        let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let va = Vector::new(a);
        let vb = Vector::new(b);
        prop_assert!((&va + &vb).norm() <= va.norm() + vb.norm() + 1e-9);
    }

    #[test]
    fn matmul_column_sums_preserved_by_allocation(
        rows in prop::collection::vec(
            prop::collection::vec(0.0..10.0f64, 3), 1..10),
        nodes in 1usize..5,
        assign_seed in 0u64..1000,
    ) {
        // A 0/1 allocation matrix never changes column sums of L^o.
        let m = rows.len();
        let lo = Matrix::from_rows(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
        let mut a = Matrix::zeros(nodes, m);
        for j in 0..m {
            let node = ((assign_seed as usize).wrapping_mul(31).wrapping_add(j * 7)) % nodes;
            a[(node, j)] = 1.0;
        }
        let ln = a.matmul(&lo);
        for k in 0..3 {
            prop_assert!(approx_eq(ln.col_sum(k), lo.col_sum(k)));
        }
    }

    #[test]
    fn radical_inverse_in_unit_interval(index in 1u64..1_000_000, base_idx in 0usize..5) {
        let bases = [2u64, 3, 5, 7, 11];
        let v = radical_inverse(index, bases[base_idx]);
        prop_assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn cube_to_simplex_preserves_nonnegativity_and_budget(
        u in prop::collection::vec(0.0..1.0f64, 1..8)
    ) {
        let x = unit_cube_to_simplex(&Vector::new(u));
        prop_assert!(x.is_nonnegative());
        prop_assert!(x.sum() <= 1.0 + 1e-12);
    }

    #[test]
    fn simplex_volume_scales_by_dth_power(coeffs in prop::collection::vec(small_f64(), 1..6),
                                          scale in 1u32..5) {
        // V(c·cap) = c^d V(cap).
        let d = coeffs.len() as i32;
        let v1 = simplex_volume(&coeffs, 1.0);
        let vs = simplex_volume(&coeffs, scale as f64);
        prop_assert!((vs / v1 - (scale as f64).powi(d)).abs() < 1e-6 * (scale as f64).powi(d));
    }

    #[test]
    fn plane_distance_scales_inversely(normal in prop::collection::vec(small_f64(), 1..6),
                                       factor in 1u32..10) {
        let h1 = Hyperplane::new(Vector::new(normal.clone()), 1.0);
        let h2 = Hyperplane::new(Vector::new(normal).scaled(factor as f64), 1.0);
        prop_assert!(approx_eq(h1.plane_distance(), h2.plane_distance() * factor as f64));
    }

    #[test]
    fn polygon_clipping_never_grows_area(w in small_f64(), h in small_f64(),
                                         a in small_f64(), b in small_f64(),
                                         c in small_f64()) {
        let base = Polygon::quadrant_box(w, h);
        let clipped = base.clip_halfplane(a, b, c);
        prop_assert!(clipped.area() <= base.area() + 1e-9);
    }

    #[test]
    fn feasibility_is_monotone(
        rows in prop::collection::vec(prop::collection::vec(0.0..5.0f64, 2), 1..5),
        point in prop::collection::vec(0.0..2.0f64, 2),
        shrink in 0.0..1.0f64,
    ) {
        let lo = Matrix::from_rows(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
        let caps = Vector::new(vec![3.0; rows.len()]);
        let region = FeasibleRegion::new(lo, caps);
        let p = Vector::new(point);
        if region.contains(&p) {
            prop_assert!(region.contains(&p.scaled(shrink)));
        }
    }

    #[test]
    fn online_stats_merge_matches_sequential(
        xs in prop::collection::vec(-100.0..100.0f64, 2..50),
        split in 1usize..49,
    ) {
        prop_assume!(split < xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.push(x); }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert!(approx_eq(left.mean(), whole.mean()));
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }
}

// Slower whole-pipeline property: QMC estimate matches exact polygon area
// in 2-D for random two-node regions. Kept at few cases for speed.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn qmc_matches_exact_area_2d(
        l11 in 1.0..10.0f64, l12 in 1.0..10.0f64,
        l21 in 1.0..10.0f64, l22 in 1.0..10.0f64,
    ) {
        let ln = Matrix::from_rows(&[&[l11, l12], &[l21, l22]]);
        let caps = Vector::from([1.0, 1.0]);
        let region = FeasibleRegion::new(ln, caps);
        let exact = feasible_area(&region.hyperplanes()).unwrap();
        let totals = [l11 + l21, l12 + l22];
        let est = VolumeEstimator::new(&totals, 2.0, 40_000, 1).estimate(&region);
        let rel = (est.absolute - exact).abs() / exact.max(1e-12);
        prop_assert!(rel < 0.03, "exact {exact} vs QMC {} (rel {rel})", est.absolute);
    }

    #[test]
    fn sampler_points_satisfy_constraint(
        coeffs in prop::collection::vec(0.5..8.0f64, 2..6),
        cap in 0.5..5.0f64,
        seed in 0u64..100,
    ) {
        let sampler = SimplexSampler::new(&coeffs, cap);
        let mut rng = rod_geom::seeded_rng(seed);
        for _ in 0..50 {
            let p = sampler.sample(&mut rng);
            let lhs: f64 = p.as_slice().iter().zip(&coeffs).map(|(x, c)| x * c).sum();
            prop_assert!(lhs <= cap + 1e-9);
            prop_assert!(p.is_nonnegative());
        }
    }
}
