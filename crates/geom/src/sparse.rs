//! Sparse rows and row-major sparse matrices for large load models.
//!
//! The paper's matrices are tiny (tens of rows, single-digit columns), so
//! the dense [`crate::Matrix`] is the natural representation there. At
//! production scale — thousands of nodes, tens of thousands of operators —
//! each operator still touches only a handful of streams, so its load
//! coefficient row `L^o_j` has a handful of nonzeros out of `d'` columns.
//! [`SparseRow`] stores exactly those `(column, value)` pairs, and
//! [`SparseLoadMatrix`] is a row collection of them.
//!
//! **Bit-identity contract.** Everything downstream of the load model is
//! pinned to the f64 bit (golden tests, cross-thread determinism), so the
//! sparse representation is only usable if it reproduces the dense
//! arithmetic exactly. It does, by construction:
//!
//! * entries are kept in ascending column order, the same order the dense
//!   loops accumulate in;
//! * skipped columns hold exactly `0.0`, and for the accumulations
//!   involved (`acc += c·x` with finite `x` and `acc` not `-0.0`) a zero
//!   term contributes `+0.0`, and IEEE-754 addition of `+0.0` to any such
//!   accumulator returns it unchanged — so *skipping* the term yields the
//!   same bits as *adding* it.
//!
//! The unit tests pin both properties; `rod-core`'s equivalence suite
//! extends the argument to whole placements and volume estimates.

use serde::{DeError, Deserialize, Serialize, Value};

/// One sparse row: `(column, value)` pairs in strictly ascending column
/// order, with no explicit zeros.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseRow {
    dim: usize,
    terms: Vec<(u32, f64)>,
}

impl SparseRow {
    /// An all-zero row of width `dim`.
    pub fn zero(dim: usize) -> SparseRow {
        SparseRow {
            dim,
            terms: Vec::new(),
        }
    }

    /// Builds a row from `(column, value)` terms. Panics when a column is
    /// out of range, duplicated, or out of order; zero values are dropped.
    pub fn from_terms(dim: usize, terms: impl IntoIterator<Item = (u32, f64)>) -> SparseRow {
        let mut kept: Vec<(u32, f64)> = Vec::new();
        for (col, value) in terms {
            assert!((col as usize) < dim, "column {col} out of range ({dim})");
            if let Some(&(last, _)) = kept.last() {
                assert!(col > last, "columns must be strictly ascending");
            }
            if value != 0.0 {
                kept.push((col, value));
            }
        }
        SparseRow { dim, terms: kept }
    }

    /// Compresses a dense slice, keeping nonzero entries only.
    pub fn from_dense(row: &[f64]) -> SparseRow {
        SparseRow {
            dim: row.len(),
            terms: row
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(k, &v)| (k as u32, v))
                .collect(),
        }
    }

    /// Row width (number of columns, counting the zeros).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.terms.len()
    }

    /// The `(column, value)` terms in ascending column order.
    pub fn terms(&self) -> &[(u32, f64)] {
        &self.terms
    }

    /// Iterates `(column, value)` pairs in ascending column order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.terms.iter().map(|&(k, v)| (k as usize, v))
    }

    /// Materialises the dense row.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for &(k, v) in &self.terms {
            out[k as usize] = v;
        }
        out
    }

    /// The L2 norm, accumulated over the stored terms in ascending column
    /// order — bit-identical to the dense norm (zero terms contribute
    /// `+0.0`, which IEEE-754 addition ignores).
    pub fn norm(&self) -> f64 {
        self.terms.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt()
    }

    /// Dot product with a dense vector, skipping zero columns —
    /// bit-identical to the dense dot for finite operands.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        assert_eq!(dense.len(), self.dim, "dimension mismatch");
        self.terms.iter().map(|&(k, v)| v * dense[k as usize]).sum()
    }
}

impl Serialize for SparseRow {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("dim".to_string(), self.dim.to_value()),
            ("terms".to_string(), self.terms.to_value()),
        ])
    }
}

impl Deserialize for SparseRow {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        let dim: usize = serde::field(pairs, "dim", "SparseRow")?;
        let terms: Vec<(u32, f64)> = serde::field(pairs, "terms", "SparseRow")?;
        let mut last: Option<u32> = None;
        for &(col, value) in &terms {
            if (col as usize) >= dim {
                return Err(DeError::custom(format!(
                    "SparseRow column {col} out of range ({dim})"
                )));
            }
            if last.is_some_and(|l| col <= l) {
                return Err(DeError::custom("SparseRow columns must be ascending"));
            }
            if value == 0.0 {
                return Err(DeError::custom("SparseRow stores explicit zero"));
            }
            last = Some(col);
        }
        Ok(SparseRow { dim, terms })
    }
}

/// A row-major sparse matrix: one [`SparseRow`] per row, all of the same
/// width. The sparse counterpart of the operator load-coefficient matrix
/// `L^o`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparseLoadMatrix {
    rows: Vec<SparseRow>,
    cols: usize,
}

impl SparseLoadMatrix {
    /// Builds the matrix from rows. Panics when row widths disagree with
    /// `cols`.
    pub fn from_rows(cols: usize, rows: Vec<SparseRow>) -> SparseLoadMatrix {
        for (j, row) in rows.iter().enumerate() {
            assert_eq!(row.dim(), cols, "row {j} has width {}", row.dim());
        }
        SparseLoadMatrix { rows, cols }
    }

    /// Compresses a dense matrix given as row slices.
    pub fn from_dense_rows<'a>(
        cols: usize,
        rows: impl IntoIterator<Item = &'a [f64]>,
    ) -> SparseLoadMatrix {
        let rows: Vec<SparseRow> = rows.into_iter().map(SparseRow::from_dense).collect();
        SparseLoadMatrix::from_rows(cols, rows)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns (dense width).
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// One row.
    pub fn row(&self, j: usize) -> &SparseRow {
        &self.rows[j]
    }

    /// All rows.
    pub fn rows(&self) -> &[SparseRow] {
        &self.rows
    }

    /// Total stored (nonzero) entries across all rows.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(SparseRow::nnz).sum()
    }

    /// Per-column sums accumulated in row order — the same order a dense
    /// column sum over row-major storage uses, so the totals carry
    /// identical bits.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for row in &self.rows {
            for (k, v) in row.iter() {
                sums[k] += v;
            }
        }
        sums
    }

    /// Materialises the dense matrix as a flat row-major vector.
    pub fn to_dense_flat(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.rows.len() * self.cols];
        for (j, row) in self.rows.iter().enumerate() {
            for (k, v) in row.iter() {
                out[j * self.cols + k] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_round_trips() {
        let dense = [0.0, 3.5, 0.0, 2.0];
        let row = SparseRow::from_dense(&dense);
        assert_eq!(row.nnz(), 2);
        assert_eq!(row.terms(), &[(1, 3.5), (3, 2.0)]);
        assert_eq!(row.to_dense(), dense);
    }

    #[test]
    fn norm_is_bit_identical_to_dense_accumulation() {
        // Awkward magnitudes so any reordering or extra rounding shows.
        let dense = [0.0, 0.1, 0.0, 1e-13, 7.3e11, 0.0, 0.2 + 0.1];
        let sparse = SparseRow::from_dense(&dense);
        let dense_norm = dense.iter().map(|&v| v * v).sum::<f64>().sqrt();
        assert_eq!(sparse.norm().to_bits(), dense_norm.to_bits());
    }

    #[test]
    fn dot_dense_is_bit_identical_to_dense_dot() {
        let row_dense = [0.0, 0.1, 0.0, 0.3, 0.0];
        let x = [1.7, 2.9, 3.1, 0.77, 5.3];
        let sparse = SparseRow::from_dense(&row_dense);
        let dense_dot: f64 = row_dense.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert_eq!(sparse.dot_dense(&x).to_bits(), dense_dot.to_bits());
    }

    #[test]
    fn from_terms_drops_zeros_and_validates() {
        let row = SparseRow::from_terms(5, [(0, 1.0), (2, 0.0), (4, 2.0)]);
        assert_eq!(row.terms(), &[(0, 1.0), (4, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn from_terms_rejects_out_of_order() {
        let _ = SparseRow::from_terms(5, [(3, 1.0), (1, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_terms_rejects_out_of_range() {
        let _ = SparseRow::from_terms(2, [(2, 1.0)]);
    }

    #[test]
    fn matrix_col_sums_match_dense() {
        let rows = [
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.5],
            vec![4.0, 0.0, 0.0],
        ];
        let m = SparseLoadMatrix::from_dense_rows(3, rows.iter().map(|r| r.as_slice()));
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.nnz(), 4);
        let mut dense_sums = vec![0.0; 3];
        for r in &rows {
            for (k, &v) in r.iter().enumerate() {
                dense_sums[k] += v;
            }
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&m.col_sums()), bits(&dense_sums));
        assert_eq!(m.to_dense_flat(), rows.concat());
    }

    #[test]
    fn serde_round_trip_and_validation() {
        let m = SparseLoadMatrix::from_dense_rows(
            3,
            [vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]
                .iter()
                .map(|r| r.as_slice()),
        );
        let back = SparseLoadMatrix::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
        // A hand-built value with an explicit zero is rejected.
        let bad = Value::Object(vec![
            ("dim".into(), 2usize.to_value()),
            ("terms".into(), vec![(0u32, 0.0f64)].to_value()),
        ]);
        assert!(SparseRow::from_value(&bad).is_err());
    }
}
