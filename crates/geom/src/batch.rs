//! Batched, cache-friendly feasibility scoring over shared point sets.
//!
//! Every planner in the workspace bottlenecks on the same question: *how
//! many quasi-Monte-Carlo sample points does a candidate plan keep
//! feasible?* The scalar path answers it one point at a time — each point
//! a separately heap-allocated [`Vector`], each node constraint a fresh
//! dot product — which thrashes the cache as soon as the point set no
//! longer fits in L2.
//!
//! [`PointBatch`] stores the same point set column-major (structure of
//! arrays): one contiguous `f64` slice per input dimension. A node's load
//! at every point is then a column-wise fused accumulation
//!
//! ```text
//! load[p] += l_ik · col_k[p]        (k = 1..d, p over a block)
//! ```
//!
//! whose inner loop is a straight multiply-add over contiguous slices —
//! exactly the shape LLVM auto-vectorises into f64 lanes.
//! [`FeasibilityKernel`] layers *survivor compaction* on top: once a
//! constraint pass kills more than half the current working set, the
//! surviving points' coordinates are physically copied into fresh dense
//! columns, so later node rows run the same vectorised inner loop over a
//! geometrically shrinking point set. This is the batched analogue of the
//! scalar walk's per-point early exit — without it a dense kernel does
//! `n·d` work per point while the scalar path stops at the first violated
//! constraint; with index-gather compaction instead, the bounds-checked
//! indexed loads defeat vectorisation and give the win straight back.
//!
//! **Bit-identity.** The per-point accumulation order is unchanged: for a
//! fixed point `p`, loads are summed over `k` ascending starting from
//! `0.0`, precisely the order of the scalar iterator-`sum` walk in
//! [`FeasibleRegion::contains`]. IEEE-754 addition is deterministic for a
//! fixed operand order, so every per-point feasibility decision — and
//! therefore every count, ratio and placement derived from one — is
//! bit-identical to the scalar path. The equivalence tests in this module
//! and the golden suite in `rod-bench` pin this down.
//!
//! **Explicit SIMD.** On x86-64 hosts with AVX2 the kernel's inner loops
//! run through the hand-written 4×f64-lane implementations in
//! [`crate::simd`] (runtime-detected; forceable back to scalar with
//! `ROD_NO_SIMD` or the `force_scalar` constructors). The AVX2 block
//! scorer is *tile-major*: ordinary regions are walked once in pairs of
//! 16-point register tiles, folding every bound and constraint row into
//! per-tile live-bit words and abandoning a pair the moment its words
//! die — which subsumes the survivor compaction above at tile
//! granularity without copying anything. Regions with a long tail of
//! rows fall back to segmented passes that compact survivors with a
//! vectorised compress between segments. Lanes are points and the SIMD
//! loops multiply-then-add per lane (never FMA), so the same per-point
//! operand-order argument applies verbatim and the two paths are
//! bit-identical — see the `rod_geom::simd` module docs for the full
//! contract and `tests/simd_equivalence.rs` for the proptests pinning
//! it.

use crate::simd::{self, KernelPath};
use crate::vector::Vector;
use crate::volume::FeasibleRegion;

/// A point set stored column-major: one contiguous column per input
/// dimension, so per-plan node-load dot products accumulate column-wise
/// over cache-line-friendly slices.
/// Granularity of the precomputed per-column coordinate ranges in
/// [`PointBatch`] — the same 2048 points as the kernel's scoring block,
/// so a block's bounds are usually one lookup (two when a thread
/// partition splits mid-chunk).
pub(crate) const CHUNK: usize = 2048;

/// A point set stored column-major: one contiguous column per input
/// dimension, so per-plan node-load dot products accumulate column-wise
/// over cache-line-friendly slices.
#[derive(Clone, Debug)]
pub struct PointBatch {
    num_points: usize,
    dim: usize,
    /// Column-major storage: `cols[k · num_points + p]` is coordinate `k`
    /// of point `p`.
    cols: Vec<f64>,
    /// Per-column minimum (`+inf` for an empty batch), used to skip
    /// lower-bound columns no point can violate.
    col_min: Vec<f64>,
    /// Per-column, per-[`CHUNK`] `(min, max, nan_free)`, laid out
    /// `[k · n_chunks + chunk]` — precomputed once here so the SIMD
    /// block scorer's interval pruning never re-reads column data (a
    /// streaming bounds pass would cost more than the early-exiting
    /// kernel it is trying to save).
    chunk_bounds: Vec<(f64, f64, bool)>,
}

impl PointBatch {
    /// Transposes a row-major point set into columns.
    pub fn from_points(points: &[Vector]) -> Self {
        let num_points = points.len();
        let dim = points.first().map_or(0, Vector::dim);
        let mut cols = vec![0.0; dim * num_points];
        for (p, point) in points.iter().enumerate() {
            assert_eq!(point.dim(), dim, "ragged point set");
            for (k, &x) in point.as_slice().iter().enumerate() {
                cols[k * num_points + p] = x;
            }
        }
        let n_chunks = num_points.div_ceil(CHUNK);
        let mut chunk_bounds = Vec::with_capacity(dim * n_chunks);
        for k in 0..dim {
            for chunk in cols[k * num_points..(k + 1) * num_points].chunks(CHUNK) {
                let mut mn = f64::INFINITY;
                let mut mx = f64::NEG_INFINITY;
                let mut nan_free = true;
                for &x in chunk {
                    if x < mn {
                        mn = x;
                    }
                    if x > mx {
                        mx = x;
                    }
                    nan_free &= !x.is_nan();
                }
                chunk_bounds.push((mn, mx, nan_free));
            }
        }
        // Comparison-select folds ignore NaN exactly like the previous
        // `f64::min` fold, so the lower-bound column skip is unchanged.
        let col_min = (0..dim)
            .map(|k| {
                chunk_bounds[k * n_chunks..(k + 1) * n_chunks]
                    .iter()
                    .map(|&(mn, _, _)| mn)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        PointBatch {
            num_points,
            dim,
            cols,
            col_min,
            chunk_bounds,
        }
    }

    /// Conservative `(min, max, nan_free)` over `column(k)[start..end]`,
    /// folded from the precomputed [`CHUNK`] bounds of every chunk
    /// overlapping the range (a superset of it, so the bounds are valid
    /// for any prune that only needs containment). The min/max are
    /// comparison selections of actual coordinates — no arithmetic, no
    /// rounding.
    pub(crate) fn range_bounds(&self, k: usize, start: usize, end: usize) -> (f64, f64, bool) {
        debug_assert!(start < end && end <= self.num_points);
        let n_chunks = self.num_points.div_ceil(CHUNK);
        let (c0, c1) = (start / CHUNK, (end - 1) / CHUNK);
        let mut mn = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        let mut nan_free = true;
        for &(a, b, ok) in &self.chunk_bounds[k * n_chunks + c0..=k * n_chunks + c1] {
            if a < mn {
                mn = a;
            }
            if b > mx {
                mx = b;
            }
            nan_free &= ok;
        }
        (mn, mx, nan_free)
    }

    /// Number of points held.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Dimension of each point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One coordinate column, contiguous over all points.
    pub fn column(&self, k: usize) -> &[f64] {
        &self.cols[k * self.num_points..(k + 1) * self.num_points]
    }

    /// Writes `out[p] = Σ_k coeffs[k] · col_k[p]` for every point,
    /// accumulating columns in ascending `k` — the same per-point operand
    /// order as a scalar row-times-point dot product, so results are
    /// bit-identical to `coeffs.iter().zip(point).map(|(c, x)| c * x).sum()`.
    ///
    /// Zero coefficients are skipped entirely: a `0.0 · x` term is `±0.0`
    /// for finite `x`, and adding `±0.0` to an accumulator that started at
    /// `+0.0` never changes its bits, so the skip is exact. Sparse
    /// coefficient rows (operators touching a few streams out of many)
    /// thus cost O(nnz · P) instead of O(d · P).
    pub fn dot_into(&self, coeffs: &[f64], out: &mut [f64]) {
        self.dot_into_with_path(coeffs, out, simd::select_path(false));
    }

    /// [`dot_into`](Self::dot_into) pinned to the scalar loop regardless
    /// of host support — the reference path for A/B tests and the perf
    /// harness.
    pub fn dot_into_scalar(&self, coeffs: &[f64], out: &mut [f64]) {
        self.dot_into_with_path(coeffs, out, KernelPath::Scalar);
    }

    fn dot_into_with_path(&self, coeffs: &[f64], out: &mut [f64], path: KernelPath) {
        assert_eq!(coeffs.len(), self.dim, "coefficient row has wrong arity");
        assert_eq!(out.len(), self.num_points, "output buffer has wrong length");
        simd::note_dot(path);
        out.fill(0.0);
        #[cfg(target_arch = "x86_64")]
        if path == KernelPath::Simd {
            for (k, &c) in coeffs.iter().enumerate() {
                if c == 0.0 {
                    continue;
                }
                // SAFETY: `Simd` is only selected when AVX2 was detected.
                unsafe { simd::avx2::axpy(c, self.column(k), out) };
            }
            return;
        }
        for (k, &c) in coeffs.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            let col = self.column(k);
            for (acc, &x) in out.iter_mut().zip(col) {
                *acc += c * x;
            }
        }
    }
}

/// Batched feasibility counter over a [`PointBatch`]: scores all sample
/// points for a candidate plan's [`FeasibleRegion`] in one blocked pass.
#[derive(Clone, Debug)]
pub struct FeasibilityKernel {
    batch: PointBatch,
    /// Which inner-loop implementation this kernel scores with, decided
    /// once at construction (see [`crate::simd::select_path`]). Both
    /// paths are bit-identical; the field only affects speed — and the
    /// [`crate::simd::path_counts`] attribution.
    path: KernelPath,
}

impl FeasibilityKernel {
    /// Kernel over a row-major point set (transposed once here). Uses
    /// the AVX2 path when the host supports it and `ROD_NO_SIMD` is not
    /// set; [`path`](Self::path) reports the decision.
    pub fn new(points: &[Vector]) -> Self {
        FeasibilityKernel::from_batch(PointBatch::from_points(points))
    }

    /// [`new`](Self::new) pinned to the scalar reference path — for CI
    /// A/B runs and oracle comparisons, independent of the environment.
    pub fn new_force_scalar(points: &[Vector]) -> Self {
        FeasibilityKernel::from_batch_force_scalar(PointBatch::from_points(points))
    }

    /// Kernel over an existing batch (runtime path selection).
    pub fn from_batch(batch: PointBatch) -> Self {
        FeasibilityKernel {
            batch,
            path: simd::select_path(false),
        }
    }

    /// [`from_batch`](Self::from_batch) pinned to the scalar path.
    pub fn from_batch_force_scalar(batch: PointBatch) -> Self {
        FeasibilityKernel {
            batch,
            path: KernelPath::Scalar,
        }
    }

    /// The inner-loop implementation this kernel selected.
    pub fn path(&self) -> KernelPath {
        self.path
    }

    /// The underlying column store.
    pub fn batch(&self) -> &PointBatch {
        &self.batch
    }

    /// Number of points feasible for `region` — bit-identical to counting
    /// [`FeasibleRegion::contains`] over the same points in order.
    pub fn count_feasible(&self, region: &FeasibleRegion) -> usize {
        self.count_feasible_range(region, 0, self.batch.num_points)
    }

    /// [`count_feasible`](Self::count_feasible) restricted to the point
    /// index range `start..end` — the unit of work handed to each thread
    /// by the parallel estimator (integer counts merge associatively, so
    /// any partition of the range sums to the serial count exactly).
    ///
    /// The range is processed in cache-sized blocks so every constraint
    /// pass re-reads the working set from L2 instead of DRAM; see the
    /// module docs for the blocking + survivor-compaction design.
    pub fn count_feasible_range(&self, region: &FeasibleRegion, start: usize, end: usize) -> usize {
        self.count_range_with_path(region, start, end, self.path)
    }

    /// [`count_feasible_range`](Self::count_feasible_range) pinned to
    /// the scalar reference loops regardless of this kernel's selected
    /// path — the oracle leg of forced-path A/B comparisons without
    /// re-transposing the point set.
    pub fn count_feasible_range_scalar(
        &self,
        region: &FeasibleRegion,
        start: usize,
        end: usize,
    ) -> usize {
        self.count_range_with_path(region, start, end, KernelPath::Scalar)
    }

    fn count_range_with_path(
        &self,
        region: &FeasibleRegion,
        start: usize,
        end: usize,
        path: KernelPath,
    ) -> usize {
        assert!(start <= end && end <= self.batch.num_points);
        assert_eq!(
            region.dim(),
            self.batch.dim,
            "region dimension must match the point set"
        );
        // ~2048 points × d columns × 8 bytes keeps a block's columns,
        // loads and mask L2-resident for the dimensions ROD uses (d ≤ 16),
        // so re-streaming them once per node constraint is cheap.
        const BLOCK: usize = 2048;
        let mut scratch = Scratch::default();
        let mut total = 0usize;
        let mut s = start;
        while s < end {
            let e = (s + BLOCK).min(end);
            total += self.count_block(region, s, e, &mut scratch, path);
            s = e;
        }
        total
    }

    /// Scores one cache-resident block of points. Constraints are
    /// evaluated in node order against a dense working set that starts as
    /// the raw column range and is physically compacted (surviving
    /// coordinates copied into fresh dense columns) whenever a pass
    /// leaves fewer than half the points alive. Dead points therefore
    /// never cost more than 2× the live work, every inner loop stays a
    /// zipped-slice multiply-add the compiler can vectorise, and the
    /// per-point arithmetic order is untouched — so the count is
    /// bit-identical to the scalar walk. A block whose points all die
    /// skips the remaining constraints entirely (feasibility is a
    /// conjunction, so the count is independent of evaluation order).
    fn count_block(
        &self,
        region: &FeasibleRegion,
        start: usize,
        end: usize,
        scr: &mut Scratch,
        path: KernelPath,
    ) -> usize {
        simd::note_block(path);
        #[cfg(target_arch = "x86_64")]
        if path == KernelPath::Simd {
            // SAFETY: `Simd` is only ever selected after runtime AVX2
            // detection (see `simd::select_path`).
            return unsafe { self.count_block_avx2(region, start, end, scr) };
        }
        self.count_block_scalar(region, start, end, scr)
    }

    /// The reference blocked-scalar block scorer — kept verbatim as the
    /// oracle the SIMD path must match bit for bit.
    fn count_block_scalar(
        &self,
        region: &FeasibleRegion,
        start: usize,
        end: usize,
        scr: &mut Scratch,
    ) -> usize {
        let d = self.batch.dim;
        let n = region.constraints();
        let lb = region.lower_bound.as_slice();
        let width = end - start;

        // Alive flags over the current working set (initially the raw
        // column range).
        scr.mask.clear();
        scr.mask.resize(width, true);
        let mut live = width;

        // Lower bound `B ≤ R`, component-wise. Columns whose minimum
        // already clears the bound are skipped — no point can fail.
        for (k, &b) in lb.iter().enumerate() {
            if b <= self.batch.col_min[k] {
                continue;
            }
            let col = &self.batch.column(k)[start..end];
            live = 0;
            for (m, &x) in scr.mask.iter_mut().zip(col) {
                *m &= b <= x;
                live += *m as usize;
            }
        }

        // Node constraints `L^n_i · R ≤ C_i`, accumulated column-wise.
        // Until the first compaction the original batch columns serve as
        // the working set; afterwards `scr.work` holds the survivors'
        // coordinates, column-major with stride `w_len`. Loads for a tile
        // of `TILE` points accumulate in a stack array small enough to
        // live in registers, so each constraint row streams every column
        // exactly once with no load/store traffic on the accumulators.
        const TILE: usize = 16;
        let mut compacted = false;
        let mut w_len = width;
        // Distance between consecutive columns in `scr.work`; one slot
        // wider than `w_len` so the branchless compaction below may write
        // one harmless element past the survivors.
        let mut w_stride = width;
        for i in 0..n {
            if live == 0 {
                return 0;
            }
            let row = region.coefficients.row(i);
            // Zero columns of the constraint row contribute exactly `+0.0`
            // to every accumulator below (finite coordinates, accumulators
            // start at `+0.0`), so skipping them preserves every bit while
            // cutting a sparse row's pass from O(d) columns to O(nnz).
            scr.nz.clear();
            scr.nz.extend(
                row.iter()
                    .enumerate()
                    .filter_map(|(k, &c)| (c != 0.0).then_some((k, c))),
            );
            // Same tolerance as the scalar `contains` walk.
            let cap = region.capacities[i] + 1e-12;
            let tiled = w_len - w_len % TILE;
            let mut t = 0;
            live = 0;
            while t < tiled {
                let mut acc = [0.0f64; TILE];
                for &(k, c) in &scr.nz {
                    let col: &[f64] = if compacted {
                        &scr.work[k * w_stride..k * w_stride + w_len]
                    } else {
                        &self.batch.column(k)[start..end]
                    };
                    let src = &col[t..t + TILE];
                    for (a, &x) in acc.iter_mut().zip(src) {
                        *a += c * x;
                    }
                }
                for (m, &load) in scr.mask[t..t + TILE].iter_mut().zip(&acc) {
                    *m &= load <= cap;
                    live += *m as usize;
                }
                t += TILE;
            }
            // Ragged tail, one point at a time (same k-ascending order).
            for p in tiled..w_len {
                let mut acc = 0.0f64;
                for &(k, c) in &scr.nz {
                    let col: &[f64] = if compacted {
                        &scr.work[k * w_stride..k * w_stride + w_len]
                    } else {
                        &self.batch.column(k)[start..end]
                    };
                    acc += c * col[p];
                }
                let m = &mut scr.mask[p];
                *m &= acc <= cap;
                live += *m as usize;
            }
            // Compact below half occupancy (pointless after the last row).
            if i + 1 < n && live * 2 < w_len {
                // Branchless compress: always write, advance the cursor
                // only on keep. A ~50% kill rate is the worst case for a
                // branch predictor, so a data-dependent `if` here costs
                // more than the occasional dead store; the extra stride
                // slot makes the trailing dead store safe.
                let stride = live + 1;
                scr.next.clear();
                scr.next.resize(d * stride, 0.0);
                for k in 0..d {
                    let col: &[f64] = if compacted {
                        &scr.work[k * w_stride..k * w_stride + w_len]
                    } else {
                        &self.batch.column(k)[start..end]
                    };
                    let dst = &mut scr.next[k * stride..(k + 1) * stride];
                    let mut w = 0usize;
                    for (&m, &x) in scr.mask.iter().zip(col) {
                        dst[w] = x;
                        w += m as usize;
                    }
                }
                std::mem::swap(&mut scr.work, &mut scr.next);
                compacted = true;
                w_len = live;
                w_stride = stride;
                scr.mask.clear();
                scr.mask.resize(live, true);
            }
        }
        live
    }

    /// [`count_block_scalar`](Self::count_block_scalar) restructured
    /// around the explicit AVX2 bodies in [`crate::simd::avx2`], in
    /// two regimes:
    ///
    /// * **Fused pass** (up to 16 constraint rows — every planner
    ///   shape in `docs/benchmarks.md`): the block is walked once in
    ///   *pairs* of 16-point tiles. Each pair folds every lower bound
    ///   and every row into two live-bit words held in registers and
    ///   is abandoned the moment both words die, so dead points are
    ///   skipped at tile granularity without copying a coordinate —
    ///   the job the scalar path needs survivor compaction for. The
    ///   pair keeps eight independent f64 dependency chains in flight,
    ///   which is what lets the multiply-add stream run at FP
    ///   throughput instead of waiting out 4-cycle add latency (a
    ///   single tile's four chains measurably cannot).
    /// * **Segmented passes** (longer regions): rows run in segments
    ///   of 8 with the live words persisted in `scr.bits`. Between
    ///   segments, once occupancy drops below a quarter, survivors are
    ///   compacted with the table-driven vpermps compress
    ///   ([`crate::simd::avx2::compress_tile`] — 16 points per step
    ///   where the scalar write cursor moves one) into only the
    ///   columns the remaining rows still read, restoring the scalar
    ///   path's geometric working-set shrink where a long tail of rows
    ///   would otherwise re-walk mostly-dead tiles forever.
    ///
    /// Per-point arithmetic is untouched: each point's load still
    /// accumulates its row's nonzero columns `k` ascending from `+0.0`,
    /// multiply-then-add (never FMA), and every comparison is the same
    /// ordered `<=` — so every per-point decision, and therefore the
    /// count, is bit-identical to the scalar walk (feasibility is a
    /// conjunction: evaluation order and dead-point skipping cannot
    /// change any decision).
    ///
    /// One more conjunction-order freedom is exploited per block, using
    /// the block's column ranges (exact min/max over the actual
    /// coordinates — see `block_bounds`): **interval pruning**. A row
    /// whose maximum possible load over the block already clears its
    /// cap kills nothing and is dropped; a row whose minimum possible
    /// load violates it kills every point, so the block returns 0
    /// without touching a tile. The bounds are padded for the
    /// summation's rounding and disabled on non-finite columns, so a
    /// prune fires only when every per-point decision it skips is
    /// forced.
    ///
    /// # Safety
    /// AVX2 must be available on the running CPU (guaranteed by the
    /// dispatch in [`count_block`](Self::count_block)).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn count_block_avx2(
        &self,
        region: &FeasibleRegion,
        start: usize,
        end: usize,
        scr: &mut Scratch,
    ) -> usize {
        use crate::simd::avx2::{self, TILE};

        let n = region.constraints();
        let lb = region.lower_bound.as_slice();
        let width = end - start;

        // Conservative per-block column ranges, folded from the bounds
        // precomputed at batch construction — O(1) per lookup, no
        // column data touched. The bool is false when a NaN hides in
        // the range, which disables any prune that needs the bounds to
        // cover every load.
        let block_bounds = |k: usize| self.batch.range_bounds(k, start, end);

        // Active lower bounds: base pointers for every bound the block
        // can actually fail. The batch-wide `col_min` skip is the same
        // as the scalar path's; the block-range refinements are exact
        // (min/max select actual coordinates — no arithmetic): a bound
        // at or below the block minimum passes everywhere, one above
        // the block maximum fails everywhere (NaN coordinates fail
        // `b ≤ x` too, so the kill needs no NaN guard — the skip does).
        let mut lbs: Vec<(f64, *const f64)> = Vec::new();
        for (k, &b) in lb.iter().enumerate() {
            if b <= self.batch.col_min[k] {
                continue;
            }
            let (mn, mx, nan_free) = block_bounds(k);
            if b <= mn && nan_free {
                continue;
            }
            if b > mx {
                return 0;
            }
            lbs.push((b, self.batch.column(k)[start..end].as_ptr()));
        }

        // Constraint rows: nonzero `(column, coefficient)` pairs with k
        // ascending — the bit-identity order, same set the scalar path
        // builds in `scr.nz` — plus each row's interval bounds. `pad`
        // covers the bound summation's own rounding (≤ 16·ε relative
        // to the term magnitudes, padded a thousandfold), so a prune
        // fires only on rows the block genuinely cannot decide
        // otherwise.
        let mut nz: Vec<(usize, f64)> = Vec::new();
        // One constraint row's nonzero span in `nz` plus its padded
        // block-level load interval (see the pruning notes above).
        struct Row {
            cap: f64,
            begin: usize,
            end: usize,
            prune_hi: f64,
            prune_lo: f64,
        }
        let mut pending: Vec<Row> = Vec::with_capacity(n);
        for i in 0..n {
            let begin = nz.len();
            nz.extend(
                region
                    .coefficients
                    .row(i)
                    .iter()
                    .enumerate()
                    .filter_map(|(k, &c)| (c != 0.0).then_some((k, c))),
            );
            // Same tolerance as the scalar `contains` walk.
            let cap = region.capacities[i] + 1e-12;
            let (mut hi, mut lo, mut mag, mut nan_free) = (0.0f64, 0.0f64, 0.0f64, true);
            for &(k, c) in &nz[begin..] {
                let (mn, mx, ok) = block_bounds(k);
                let (a, b) = (c * mn, c * mx);
                hi += a.max(b);
                lo += a.min(b);
                mag += a.abs().max(b.abs());
                nan_free &= ok;
            }
            let pad = mag * 1e-9;
            // NaN loads fail every cap, so a kill needs no guard; a
            // skip must not outlive a NaN (or an indeterminate bound)
            // the row would catch, so those rows are never droppable.
            let hi_safe = if nan_free { hi + pad } else { f64::INFINITY };
            let lo_safe = lo - pad;
            pending.push(Row {
                cap,
                begin,
                end: nz.len(),
                prune_hi: if hi_safe.is_nan() {
                    f64::INFINITY
                } else {
                    hi_safe
                },
                prune_lo: if lo_safe.is_nan() {
                    f64::NEG_INFINITY
                } else {
                    lo_safe
                },
            });
        }
        // A row no point can satisfy decides the whole block.
        if pending.iter().any(|r| r.prune_lo > r.cap) {
            return 0;
        }
        // Drop rows no point can violate.
        pending.retain(|r| r.prune_hi > r.cap);
        let rows = pending;

        // The block's ragged tail (at most 15 points, final block only)
        // is decided entirely scalar up front — the same k-ascending
        // accumulation, ordered comparisons and first-violation early
        // exit as `FeasibleRegion::contains` — and never enters the
        // tile machinery below.
        let raw_full = width / TILE;
        let mut live_tail = 0usize;
        'points: for p in raw_full * TILE..width {
            for &(b, base) in &lbs {
                let pass = b <= *base.add(p);
                if !pass {
                    continue 'points;
                }
            }
            for r in &rows {
                let mut acc = 0.0f64;
                for &(k, c) in &nz[r.begin..r.end] {
                    acc += c * self.batch.column(k)[start..end][p];
                }
                let pass = acc <= r.cap;
                if !pass {
                    continue 'points;
                }
            }
            live_tail += 1;
        }

        // The working set: `w_len` points, either the raw column range
        // (until the first compaction) or the survivors' coordinates in
        // `scr.work` (`slots[k]`-th column, stride `w_stride`), with
        // one live-bit word per 16-point tile in `scr.bits`. Full-tile
        // words hold bits in `mask16`'s shuffled order (only ANDed,
        // popcounted and zero-tested; unshuffled just-in-time when a
        // compaction needs positions); a partial trailing tile's word
        // (post-compaction only) is point-order and touched only by the
        // scalar tail loops.
        let mut w_len = raw_full * TILE;
        if w_len == 0 {
            return live_tail;
        }

        // Fast path for ordinary regions (every row fits one fused
        // pass): each pair of 16-point tiles runs all lower bounds and
        // all constraint rows back to back with its live words in
        // registers, abandoned the moment both words die. Dead points
        // are skipped at tile granularity without copying a coordinate
        // — what survivor compaction exists for — and two tiles per
        // iteration double the independent f64 dependency chains so
        // the multiply-add stream saturates the FP ports instead of
        // waiting out add latency.
        const FUSED_MAX: usize = 16;
        if rows.len() <= FUSED_MAX {
            let mut ptrs: Vec<(*const f64, f64)> = Vec::with_capacity(nz.len());
            let mut spans: Vec<(f64, usize, usize)> = Vec::with_capacity(rows.len());
            for r in &rows {
                let begin = ptrs.len();
                ptrs.extend(
                    nz[r.begin..r.end]
                        .iter()
                        .map(|&(k, c)| (self.batch.column(k)[start..end].as_ptr(), c)),
                );
                spans.push((r.cap, begin, ptrs.len()));
            }
            let mut live = 0usize;
            let mut g = 0usize;
            while g + 2 <= raw_full {
                let off_a = g * TILE;
                let off_b = off_a + TILE;
                let mut wa = u16::MAX;
                let mut wb = u16::MAX;
                for &(b, base) in &lbs {
                    wa &= avx2::lower_bound_bits(b, base.add(off_a));
                    wb &= avx2::lower_bound_bits(b, base.add(off_b));
                    if wa | wb == 0 {
                        break;
                    }
                }
                if wa | wb != 0 {
                    for &(cap, rb, re) in &spans {
                        let mut aa = avx2::tile_zero();
                        let mut ab = avx2::tile_zero();
                        for &(base, c) in &ptrs[rb..re] {
                            aa = avx2::tile_axpy(aa, c, base.add(off_a));
                            ab = avx2::tile_axpy(ab, c, base.add(off_b));
                        }
                        wa &= avx2::tile_cmp_le(aa, cap);
                        wb &= avx2::tile_cmp_le(ab, cap);
                        if wa | wb == 0 {
                            break;
                        }
                    }
                }
                live += (wa.count_ones() + wb.count_ones()) as usize;
                g += 2;
            }
            if g < raw_full {
                let off = g * TILE;
                let mut w = u16::MAX;
                for &(b, base) in &lbs {
                    w &= avx2::lower_bound_bits(b, base.add(off));
                    if w == 0 {
                        break;
                    }
                }
                if w != 0 {
                    for &(cap, rb, re) in &spans {
                        let mut acc = avx2::tile_zero();
                        for &(base, c) in &ptrs[rb..re] {
                            acc = avx2::tile_axpy(acc, c, base.add(off));
                        }
                        w &= avx2::tile_cmp_le(acc, cap);
                        if w == 0 {
                            break;
                        }
                    }
                }
                live += w.count_ones() as usize;
            }
            return live + live_tail;
        }

        let reset_bits = |bits: &mut Vec<u16>, len: usize| {
            bits.clear();
            bits.resize(len.div_ceil(TILE), u16::MAX);
            if len % TILE != 0 {
                if let Some(last) = bits.last_mut() {
                    *last = (1u16 << (len % TILE)) - 1;
                }
            }
        };
        reset_bits(&mut scr.bits, w_len);
        let mut live = w_len;
        let mut compacted = false;
        let mut w_stride = w_len;
        let mut slots: Vec<usize> = Vec::new();

        // Lower bounds over the raw columns, tile-major with in-tile
        // early exit.
        if !lbs.is_empty() {
            live = 0;
            for (g, word) in scr.bits.iter_mut().enumerate() {
                let mut w = *word;
                for &(b, base) in &lbs {
                    w &= avx2::lower_bound_bits(b, base.add(g * TILE));
                    if w == 0 {
                        break;
                    }
                }
                *word = w;
                live += w.count_ones() as usize;
            }
        }

        // Long regions (more rows than one fused pass should chain):
        // segments of up to `SEGMENT` rows, each one tile-major
        // streaming pass over the working set with the live words
        // persisted in `scr.bits` between segments.
        const SEGMENT: usize = 8;
        let mut ptrs: Vec<(*const f64, f64)> = Vec::new();
        let mut spans: Vec<(f64, usize, usize)> = Vec::with_capacity(SEGMENT);
        let mut i = 0;
        while i < rows.len() {
            if live == 0 {
                return live_tail;
            }
            // Between segments, compact at quarter occupancy — the
            // point where copying the columns the remaining rows still
            // read (`slots` maps column index to its slot in
            // `scr.work`) beats re-walking mostly-dead tiles that the
            // 16-point live-word granularity cannot skip. The vpermps
            // compress copies surviving bits verbatim; 4 slack slots
            // per column absorb its unconditional 4-lane stores.
            if live * 4 < w_len {
                let mut used = vec![false; self.batch.dim];
                for r in &rows[i..] {
                    for &(k, _) in &nz[r.begin..r.end] {
                        used[k] = true;
                    }
                }
                let stride = live + 4;
                let mut new_slots = vec![usize::MAX; self.batch.dim];
                let n_used = used.iter().filter(|&&u| u).count();
                // No `clear()`: the compress overwrites `[0, live)` of
                // every slot and nothing ever reads the slack, so stale
                // contents are harmless and skipping the implied memset
                // matters at per-block compaction rates.
                scr.next.resize(n_used * stride, 0.0);
                let full = w_len / TILE;
                let mut slot = 0usize;
                for (k, _) in used.iter().enumerate().filter(|(_, &u)| u) {
                    let src = if compacted {
                        scr.work.as_ptr().add(slots[k] * w_stride)
                    } else {
                        self.batch.column(k)[start..end].as_ptr()
                    };
                    let dst = scr.next.as_mut_ptr().add(slot * stride);
                    let mut w = 0usize;
                    for (g, &word) in scr.bits[..full].iter().enumerate() {
                        if word == 0 {
                            continue;
                        }
                        w += avx2::compress_tile(
                            src.add(g * TILE),
                            avx2::unshuffle16(word),
                            dst.add(w),
                        );
                    }
                    for p in full * TILE..w_len {
                        if scr.bits[p / TILE] & (1u16 << (p % TILE)) != 0 {
                            *dst.add(w) = *src.add(p);
                            w += 1;
                        }
                    }
                    debug_assert_eq!(w, live);
                    new_slots[k] = slot;
                    slot += 1;
                }
                std::mem::swap(&mut scr.work, &mut scr.next);
                compacted = true;
                w_len = live;
                w_stride = stride;
                slots = new_slots;
                reset_bits(&mut scr.bits, w_len);
            }

            // This segment's rows, with column base pointers resolved
            // once under the current working-set mapping (k ascending
            // within each row — the bit-identity order).
            let seg_end = (i + SEGMENT).min(rows.len());
            spans.clear();
            ptrs.clear();
            for r in &rows[i..seg_end] {
                let begin = ptrs.len();
                ptrs.extend(nz[r.begin..r.end].iter().map(|&(k, c)| {
                    let base = if compacted {
                        scr.work.as_ptr().add(slots[k] * w_stride)
                    } else {
                        self.batch.column(k)[start..end].as_ptr()
                    };
                    (base, c)
                }));
                spans.push((r.cap, begin, ptrs.len()));
            }

            let full = w_len / TILE;
            live = 0;
            for (g, word) in scr.bits[..full].iter_mut().enumerate() {
                let mut w = *word;
                if w == 0 {
                    continue;
                }
                let off = g * TILE;
                for &(cap, rb, re) in &spans {
                    let mut acc = avx2::tile_zero();
                    for &(base, c) in &ptrs[rb..re] {
                        acc = avx2::tile_axpy(acc, c, base.add(off));
                    }
                    w &= avx2::tile_cmp_le(acc, cap);
                    if w == 0 {
                        break;
                    }
                }
                *word = w;
                live += w.count_ones() as usize;
            }
            // Post-compaction partial tile, one point at a time (same
            // k-ascending order), bits in point order.
            for p in full * TILE..w_len {
                let word = &mut scr.bits[p / TILE];
                let bit = 1u16 << (p % TILE);
                if *word & bit == 0 {
                    continue;
                }
                let mut dead = false;
                for &(cap, rb, re) in &spans {
                    let mut acc = 0.0f64;
                    for &(base, c) in &ptrs[rb..re] {
                        acc += c * *base.add(p);
                    }
                    let pass = acc <= cap;
                    dead = !pass;
                    if dead {
                        break;
                    }
                }
                if dead {
                    *word &= !bit;
                } else {
                    live += 1;
                }
            }
            i = seg_end;
        }
        live + live_tail
    }
}

/// Reusable per-call buffers so blocked scoring allocates once per range,
/// not once per block.
#[derive(Default)]
struct Scratch {
    /// Alive flag per point of the current working set (scalar path).
    mask: Vec<bool>,
    /// Alive bits of the working set, one `u16` per 16-point tile
    /// (AVX2 path) — see `count_block_avx2` for the bit-order contract.
    bits: Vec<u16>,
    /// Compacted survivor columns (column-major, stride = live count).
    work: Vec<f64>,
    /// Target buffer for the next compaction, swapped with `work`.
    next: Vec<f64>,
    /// Nonzero `(column, coefficient)` pairs of the constraint row being
    /// scored — sparse rows then stream O(nnz) columns, not O(d).
    nz: Vec<(usize, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::qmc::HaltonSeq;
    use crate::simplex::SimplexSampler;

    fn halton_points(dim: usize, n: usize, seed: u64) -> Vec<Vector> {
        let sampler = SimplexSampler::new(&vec![1.0; dim], 1.0);
        let mut seq = HaltonSeq::shifted(dim, seed);
        (0..n)
            .map(|_| sampler.map_cube_point(&seq.next_point()))
            .collect()
    }

    fn scalar_count(points: &[Vector], region: &FeasibleRegion) -> usize {
        points.iter().filter(|p| region.contains(p)).count()
    }

    #[test]
    fn transpose_round_trips() {
        let points = halton_points(3, 257, 5);
        let batch = PointBatch::from_points(&points);
        assert_eq!(batch.num_points(), 257);
        assert_eq!(batch.dim(), 3);
        for (p, point) in points.iter().enumerate() {
            for k in 0..3 {
                assert_eq!(batch.column(k)[p].to_bits(), point[k].to_bits());
            }
        }
    }

    #[test]
    fn dot_into_is_bit_identical_to_scalar_dot() {
        let points = halton_points(4, 1_000, 9);
        let batch = PointBatch::from_points(&points);
        let coeffs = [0.3, 1.7, 0.0, 2.5];
        let mut out = vec![0.0; points.len()];
        batch.dot_into(&coeffs, &mut out);
        for (p, point) in points.iter().enumerate() {
            let scalar: f64 = coeffs
                .iter()
                .zip(point.as_slice())
                .map(|(c, x)| c * x)
                .sum();
            assert_eq!(out[p].to_bits(), scalar.to_bits(), "point {p}");
        }
    }

    #[test]
    fn kernel_count_matches_scalar_contains() {
        // Enough points that several compaction passes fire.
        let points = halton_points(3, 8329, 3);
        let kernel = FeasibilityKernel::new(&points);
        let region = FeasibleRegion::new(
            Matrix::from_rows(&[&[2.0, 1.0, 0.5], &[0.5, 2.5, 1.0], &[1.0, 0.7, 2.0]]),
            Vector::from([0.4, 0.5, 0.45]),
        );
        assert_eq!(
            kernel.count_feasible(&region),
            scalar_count(&points, &region)
        );
    }

    #[test]
    fn kernel_respects_lower_bounds() {
        let points = halton_points(2, 5_000, 7);
        let kernel = FeasibilityKernel::new(&points);
        let region = FeasibleRegion::with_lower_bound(
            Matrix::from_rows(&[&[1.0, 1.0]]),
            Vector::from([0.8]),
            Vector::from([0.05, 0.1]),
        );
        let expected = scalar_count(&points, &region);
        assert!(expected > 0, "degenerate test instance");
        assert_eq!(kernel.count_feasible(&region), expected);
    }

    #[test]
    fn range_counts_partition_the_total() {
        let points = halton_points(3, 10_000, 11);
        let kernel = FeasibilityKernel::new(&points);
        let region = FeasibleRegion::new(
            Matrix::from_rows(&[&[1.5, 0.5, 1.0], &[0.5, 1.5, 1.0]]),
            Vector::from([0.45, 0.45]),
        );
        let total = kernel.count_feasible(&region);
        for splits in [2usize, 3, 7] {
            let chunk = points.len().div_ceil(splits);
            let mut sum = 0;
            let mut s = 0;
            while s < points.len() {
                let e = (s + chunk).min(points.len());
                sum += kernel.count_feasible_range(&region, s, e);
                s = e;
            }
            assert_eq!(sum, total, "splits = {splits}");
        }
    }

    #[test]
    fn empty_batch_counts_zero() {
        let kernel = FeasibilityKernel::new(&[]);
        assert_eq!(kernel.batch().num_points(), 0);
    }

    #[test]
    fn sparse_constraint_rows_count_bit_identically() {
        // Rows with mostly-zero columns exercise the zero-column skip;
        // the scalar walk (which never skips) is the reference.
        let points = halton_points(6, 6_000, 13);
        let kernel = FeasibilityKernel::new(&points);
        let region = FeasibleRegion::new(
            Matrix::from_rows(&[
                &[2.0, 0.0, 0.0, 0.0, 0.0, 1.5],
                &[0.0, 0.0, 3.0, 0.0, 0.0, 0.0],
                &[0.0, 1.0, 0.0, 0.0, 2.5, 0.0],
                &[0.0, 0.0, 0.0, 4.0, 0.0, 0.0],
            ]),
            Vector::from([0.3, 0.25, 0.3, 0.28]),
        );
        assert_eq!(
            kernel.count_feasible(&region),
            scalar_count(&points, &region)
        );
    }

    #[test]
    fn long_row_lists_count_bit_identically() {
        // More rows than one fused pass chains (24 > FUSED_MAX), so the
        // segmented passes run, with survivor compaction firing as
        // occupancy decays across segments; the scalar walk is the
        // reference. 7000 points also leaves an odd tile count and a
        // ragged block tail.
        let points = halton_points(5, 7_000, 19);
        let kernel = FeasibilityKernel::new(&points);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..24 {
            let mut r = vec![0.0; 5];
            r[i % 5] = 1.1 + 0.07 * (i % 4) as f64;
            r[(i + 2) % 5] = 0.6;
            rows.push(r);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let region = FeasibleRegion::new(Matrix::from_rows(&row_refs), Vector::from(vec![0.5; 24]));
        let expected = scalar_count(&points, &region);
        assert_eq!(kernel.count_feasible(&region), expected);
        // The forced-scalar kernel agrees too (three-way equality).
        let forced = FeasibilityKernel::new_force_scalar(&points);
        assert_eq!(forced.count_feasible(&region), expected);
    }

    #[test]
    fn dot_into_skips_zero_coefficients_exactly() {
        let points = halton_points(5, 800, 17);
        let batch = PointBatch::from_points(&points);
        let sparse = [0.0, 2.5, 0.0, 0.0, 1.1];
        let mut out = vec![0.0; points.len()];
        batch.dot_into(&sparse, &mut out);
        for (p, point) in points.iter().enumerate() {
            let scalar: f64 = sparse
                .iter()
                .zip(point.as_slice())
                .map(|(c, x)| c * x)
                .sum();
            assert_eq!(out[p].to_bits(), scalar.to_bits(), "point {p}");
        }
    }
}
