//! Batched, cache-friendly feasibility scoring over shared point sets.
//!
//! Every planner in the workspace bottlenecks on the same question: *how
//! many quasi-Monte-Carlo sample points does a candidate plan keep
//! feasible?* The scalar path answers it one point at a time — each point
//! a separately heap-allocated [`Vector`], each node constraint a fresh
//! dot product — which thrashes the cache as soon as the point set no
//! longer fits in L2.
//!
//! [`PointBatch`] stores the same point set column-major (structure of
//! arrays): one contiguous `f64` slice per input dimension. A node's load
//! at every point is then a column-wise fused accumulation
//!
//! ```text
//! load[p] += l_ik · col_k[p]        (k = 1..d, p over a block)
//! ```
//!
//! whose inner loop is a straight multiply-add over contiguous slices —
//! exactly the shape LLVM auto-vectorises into f64 lanes.
//! [`FeasibilityKernel`] layers *survivor compaction* on top: once a
//! constraint pass kills more than half the current working set, the
//! surviving points' coordinates are physically copied into fresh dense
//! columns, so later node rows run the same vectorised inner loop over a
//! geometrically shrinking point set. This is the batched analogue of the
//! scalar walk's per-point early exit — without it a dense kernel does
//! `n·d` work per point while the scalar path stops at the first violated
//! constraint; with index-gather compaction instead, the bounds-checked
//! indexed loads defeat vectorisation and give the win straight back.
//!
//! **Bit-identity.** The per-point accumulation order is unchanged: for a
//! fixed point `p`, loads are summed over `k` ascending starting from
//! `0.0`, precisely the order of the scalar iterator-`sum` walk in
//! [`FeasibleRegion::contains`]. IEEE-754 addition is deterministic for a
//! fixed operand order, so every per-point feasibility decision — and
//! therefore every count, ratio and placement derived from one — is
//! bit-identical to the scalar path. The equivalence tests in this module
//! and the golden suite in `rod-bench` pin this down.

use crate::vector::Vector;
use crate::volume::FeasibleRegion;

/// A point set stored column-major: one contiguous column per input
/// dimension, so per-plan node-load dot products accumulate column-wise
/// over cache-line-friendly slices.
#[derive(Clone, Debug)]
pub struct PointBatch {
    num_points: usize,
    dim: usize,
    /// Column-major storage: `cols[k · num_points + p]` is coordinate `k`
    /// of point `p`.
    cols: Vec<f64>,
    /// Per-column minimum (`+inf` for an empty batch), used to skip
    /// lower-bound columns no point can violate.
    col_min: Vec<f64>,
}

impl PointBatch {
    /// Transposes a row-major point set into columns.
    pub fn from_points(points: &[Vector]) -> Self {
        let num_points = points.len();
        let dim = points.first().map_or(0, Vector::dim);
        let mut cols = vec![0.0; dim * num_points];
        for (p, point) in points.iter().enumerate() {
            assert_eq!(point.dim(), dim, "ragged point set");
            for (k, &x) in point.as_slice().iter().enumerate() {
                cols[k * num_points + p] = x;
            }
        }
        let col_min = (0..dim)
            .map(|k| {
                cols[k * num_points..(k + 1) * num_points]
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        PointBatch {
            num_points,
            dim,
            cols,
            col_min,
        }
    }

    /// Number of points held.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Dimension of each point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One coordinate column, contiguous over all points.
    pub fn column(&self, k: usize) -> &[f64] {
        &self.cols[k * self.num_points..(k + 1) * self.num_points]
    }

    /// Writes `out[p] = Σ_k coeffs[k] · col_k[p]` for every point,
    /// accumulating columns in ascending `k` — the same per-point operand
    /// order as a scalar row-times-point dot product, so results are
    /// bit-identical to `coeffs.iter().zip(point).map(|(c, x)| c * x).sum()`.
    ///
    /// Zero coefficients are skipped entirely: a `0.0 · x` term is `±0.0`
    /// for finite `x`, and adding `±0.0` to an accumulator that started at
    /// `+0.0` never changes its bits, so the skip is exact. Sparse
    /// coefficient rows (operators touching a few streams out of many)
    /// thus cost O(nnz · P) instead of O(d · P).
    pub fn dot_into(&self, coeffs: &[f64], out: &mut [f64]) {
        assert_eq!(coeffs.len(), self.dim, "coefficient row has wrong arity");
        assert_eq!(out.len(), self.num_points, "output buffer has wrong length");
        out.fill(0.0);
        for (k, &c) in coeffs.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            let col = self.column(k);
            for (acc, &x) in out.iter_mut().zip(col) {
                *acc += c * x;
            }
        }
    }
}

/// Batched feasibility counter over a [`PointBatch`]: scores all sample
/// points for a candidate plan's [`FeasibleRegion`] in one blocked pass.
#[derive(Clone, Debug)]
pub struct FeasibilityKernel {
    batch: PointBatch,
}

impl FeasibilityKernel {
    /// Kernel over a row-major point set (transposed once here).
    pub fn new(points: &[Vector]) -> Self {
        FeasibilityKernel {
            batch: PointBatch::from_points(points),
        }
    }

    /// Kernel over an existing batch.
    pub fn from_batch(batch: PointBatch) -> Self {
        FeasibilityKernel { batch }
    }

    /// The underlying column store.
    pub fn batch(&self) -> &PointBatch {
        &self.batch
    }

    /// Number of points feasible for `region` — bit-identical to counting
    /// [`FeasibleRegion::contains`] over the same points in order.
    pub fn count_feasible(&self, region: &FeasibleRegion) -> usize {
        self.count_feasible_range(region, 0, self.batch.num_points)
    }

    /// [`count_feasible`](Self::count_feasible) restricted to the point
    /// index range `start..end` — the unit of work handed to each thread
    /// by the parallel estimator (integer counts merge associatively, so
    /// any partition of the range sums to the serial count exactly).
    ///
    /// The range is processed in cache-sized blocks so every constraint
    /// pass re-reads the working set from L2 instead of DRAM; see the
    /// module docs for the blocking + survivor-compaction design.
    pub fn count_feasible_range(&self, region: &FeasibleRegion, start: usize, end: usize) -> usize {
        assert!(start <= end && end <= self.batch.num_points);
        assert_eq!(
            region.dim(),
            self.batch.dim,
            "region dimension must match the point set"
        );
        // ~2048 points × d columns × 8 bytes keeps a block's columns,
        // loads and mask L2-resident for the dimensions ROD uses (d ≤ 16),
        // so re-streaming them once per node constraint is cheap.
        const BLOCK: usize = 2048;
        let mut scratch = Scratch::default();
        let mut total = 0usize;
        let mut s = start;
        while s < end {
            let e = (s + BLOCK).min(end);
            total += self.count_block(region, s, e, &mut scratch);
            s = e;
        }
        total
    }

    /// Scores one cache-resident block of points. Constraints are
    /// evaluated in node order against a dense working set that starts as
    /// the raw column range and is physically compacted (surviving
    /// coordinates copied into fresh dense columns) whenever a pass
    /// leaves fewer than half the points alive. Dead points therefore
    /// never cost more than 2× the live work, every inner loop stays a
    /// zipped-slice multiply-add the compiler can vectorise, and the
    /// per-point arithmetic order is untouched — so the count is
    /// bit-identical to the scalar walk. A block whose points all die
    /// skips the remaining constraints entirely (feasibility is a
    /// conjunction, so the count is independent of evaluation order).
    fn count_block(
        &self,
        region: &FeasibleRegion,
        start: usize,
        end: usize,
        scr: &mut Scratch,
    ) -> usize {
        let d = self.batch.dim;
        let n = region.constraints();
        let lb = region.lower_bound.as_slice();
        let width = end - start;

        // Alive flags over the current working set (initially the raw
        // column range).
        scr.mask.clear();
        scr.mask.resize(width, true);
        let mut live = width;

        // Lower bound `B ≤ R`, component-wise. Columns whose minimum
        // already clears the bound are skipped — no point can fail.
        for (k, &b) in lb.iter().enumerate() {
            if b <= self.batch.col_min[k] {
                continue;
            }
            let col = &self.batch.column(k)[start..end];
            live = 0;
            for (m, &x) in scr.mask.iter_mut().zip(col) {
                *m &= b <= x;
                live += *m as usize;
            }
        }

        // Node constraints `L^n_i · R ≤ C_i`, accumulated column-wise.
        // Until the first compaction the original batch columns serve as
        // the working set; afterwards `scr.work` holds the survivors'
        // coordinates, column-major with stride `w_len`. Loads for a tile
        // of `TILE` points accumulate in a stack array small enough to
        // live in registers, so each constraint row streams every column
        // exactly once with no load/store traffic on the accumulators.
        const TILE: usize = 16;
        let mut compacted = false;
        let mut w_len = width;
        // Distance between consecutive columns in `scr.work`; one slot
        // wider than `w_len` so the branchless compaction below may write
        // one harmless element past the survivors.
        let mut w_stride = width;
        for i in 0..n {
            if live == 0 {
                return 0;
            }
            let row = region.coefficients.row(i);
            // Zero columns of the constraint row contribute exactly `+0.0`
            // to every accumulator below (finite coordinates, accumulators
            // start at `+0.0`), so skipping them preserves every bit while
            // cutting a sparse row's pass from O(d) columns to O(nnz).
            scr.nz.clear();
            scr.nz.extend(
                row.iter()
                    .enumerate()
                    .filter_map(|(k, &c)| (c != 0.0).then_some((k, c))),
            );
            // Same tolerance as the scalar `contains` walk.
            let cap = region.capacities[i] + 1e-12;
            let tiled = w_len - w_len % TILE;
            let mut t = 0;
            live = 0;
            while t < tiled {
                let mut acc = [0.0f64; TILE];
                for &(k, c) in &scr.nz {
                    let col: &[f64] = if compacted {
                        &scr.work[k * w_stride..k * w_stride + w_len]
                    } else {
                        &self.batch.column(k)[start..end]
                    };
                    let src = &col[t..t + TILE];
                    for (a, &x) in acc.iter_mut().zip(src) {
                        *a += c * x;
                    }
                }
                for (m, &load) in scr.mask[t..t + TILE].iter_mut().zip(&acc) {
                    *m &= load <= cap;
                    live += *m as usize;
                }
                t += TILE;
            }
            // Ragged tail, one point at a time (same k-ascending order).
            for p in tiled..w_len {
                let mut acc = 0.0f64;
                for &(k, c) in &scr.nz {
                    let col: &[f64] = if compacted {
                        &scr.work[k * w_stride..k * w_stride + w_len]
                    } else {
                        &self.batch.column(k)[start..end]
                    };
                    acc += c * col[p];
                }
                let m = &mut scr.mask[p];
                *m &= acc <= cap;
                live += *m as usize;
            }
            // Compact below half occupancy (pointless after the last row).
            if i + 1 < n && live * 2 < w_len {
                // Branchless compress: always write, advance the cursor
                // only on keep. A ~50% kill rate is the worst case for a
                // branch predictor, so a data-dependent `if` here costs
                // more than the occasional dead store; the extra stride
                // slot makes the trailing dead store safe.
                let stride = live + 1;
                scr.next.clear();
                scr.next.resize(d * stride, 0.0);
                for k in 0..d {
                    let col: &[f64] = if compacted {
                        &scr.work[k * w_stride..k * w_stride + w_len]
                    } else {
                        &self.batch.column(k)[start..end]
                    };
                    let dst = &mut scr.next[k * stride..(k + 1) * stride];
                    let mut w = 0usize;
                    for (&m, &x) in scr.mask.iter().zip(col) {
                        dst[w] = x;
                        w += m as usize;
                    }
                }
                std::mem::swap(&mut scr.work, &mut scr.next);
                compacted = true;
                w_len = live;
                w_stride = stride;
                scr.mask.clear();
                scr.mask.resize(live, true);
            }
        }
        live
    }
}

/// Reusable per-call buffers so blocked scoring allocates once per range,
/// not once per block.
#[derive(Default)]
struct Scratch {
    /// Alive flag per point of the current working set.
    mask: Vec<bool>,
    /// Compacted survivor columns (column-major, stride = live count).
    work: Vec<f64>,
    /// Target buffer for the next compaction, swapped with `work`.
    next: Vec<f64>,
    /// Nonzero `(column, coefficient)` pairs of the constraint row being
    /// scored — sparse rows then stream O(nnz) columns, not O(d).
    nz: Vec<(usize, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::qmc::HaltonSeq;
    use crate::simplex::SimplexSampler;

    fn halton_points(dim: usize, n: usize, seed: u64) -> Vec<Vector> {
        let sampler = SimplexSampler::new(&vec![1.0; dim], 1.0);
        let mut seq = HaltonSeq::shifted(dim, seed);
        (0..n)
            .map(|_| sampler.map_cube_point(&seq.next_point()))
            .collect()
    }

    fn scalar_count(points: &[Vector], region: &FeasibleRegion) -> usize {
        points.iter().filter(|p| region.contains(p)).count()
    }

    #[test]
    fn transpose_round_trips() {
        let points = halton_points(3, 257, 5);
        let batch = PointBatch::from_points(&points);
        assert_eq!(batch.num_points(), 257);
        assert_eq!(batch.dim(), 3);
        for (p, point) in points.iter().enumerate() {
            for k in 0..3 {
                assert_eq!(batch.column(k)[p].to_bits(), point[k].to_bits());
            }
        }
    }

    #[test]
    fn dot_into_is_bit_identical_to_scalar_dot() {
        let points = halton_points(4, 1_000, 9);
        let batch = PointBatch::from_points(&points);
        let coeffs = [0.3, 1.7, 0.0, 2.5];
        let mut out = vec![0.0; points.len()];
        batch.dot_into(&coeffs, &mut out);
        for (p, point) in points.iter().enumerate() {
            let scalar: f64 = coeffs
                .iter()
                .zip(point.as_slice())
                .map(|(c, x)| c * x)
                .sum();
            assert_eq!(out[p].to_bits(), scalar.to_bits(), "point {p}");
        }
    }

    #[test]
    fn kernel_count_matches_scalar_contains() {
        // Enough points that several compaction passes fire.
        let points = halton_points(3, 8329, 3);
        let kernel = FeasibilityKernel::new(&points);
        let region = FeasibleRegion::new(
            Matrix::from_rows(&[&[2.0, 1.0, 0.5], &[0.5, 2.5, 1.0], &[1.0, 0.7, 2.0]]),
            Vector::from([0.4, 0.5, 0.45]),
        );
        assert_eq!(
            kernel.count_feasible(&region),
            scalar_count(&points, &region)
        );
    }

    #[test]
    fn kernel_respects_lower_bounds() {
        let points = halton_points(2, 5_000, 7);
        let kernel = FeasibilityKernel::new(&points);
        let region = FeasibleRegion::with_lower_bound(
            Matrix::from_rows(&[&[1.0, 1.0]]),
            Vector::from([0.8]),
            Vector::from([0.05, 0.1]),
        );
        let expected = scalar_count(&points, &region);
        assert!(expected > 0, "degenerate test instance");
        assert_eq!(kernel.count_feasible(&region), expected);
    }

    #[test]
    fn range_counts_partition_the_total() {
        let points = halton_points(3, 10_000, 11);
        let kernel = FeasibilityKernel::new(&points);
        let region = FeasibleRegion::new(
            Matrix::from_rows(&[&[1.5, 0.5, 1.0], &[0.5, 1.5, 1.0]]),
            Vector::from([0.45, 0.45]),
        );
        let total = kernel.count_feasible(&region);
        for splits in [2usize, 3, 7] {
            let chunk = points.len().div_ceil(splits);
            let mut sum = 0;
            let mut s = 0;
            while s < points.len() {
                let e = (s + chunk).min(points.len());
                sum += kernel.count_feasible_range(&region, s, e);
                s = e;
            }
            assert_eq!(sum, total, "splits = {splits}");
        }
    }

    #[test]
    fn empty_batch_counts_zero() {
        let kernel = FeasibilityKernel::new(&[]);
        assert_eq!(kernel.batch().num_points(), 0);
    }

    #[test]
    fn sparse_constraint_rows_count_bit_identically() {
        // Rows with mostly-zero columns exercise the zero-column skip;
        // the scalar walk (which never skips) is the reference.
        let points = halton_points(6, 6_000, 13);
        let kernel = FeasibilityKernel::new(&points);
        let region = FeasibleRegion::new(
            Matrix::from_rows(&[
                &[2.0, 0.0, 0.0, 0.0, 0.0, 1.5],
                &[0.0, 0.0, 3.0, 0.0, 0.0, 0.0],
                &[0.0, 1.0, 0.0, 0.0, 2.5, 0.0],
                &[0.0, 0.0, 0.0, 4.0, 0.0, 0.0],
            ]),
            Vector::from([0.3, 0.25, 0.3, 0.28]),
        );
        assert_eq!(
            kernel.count_feasible(&region),
            scalar_count(&points, &region)
        );
    }

    #[test]
    fn dot_into_skips_zero_coefficients_exactly() {
        let points = halton_points(5, 800, 17);
        let batch = PointBatch::from_points(&points);
        let sparse = [0.0, 2.5, 0.0, 0.0, 1.1];
        let mut out = vec![0.0; points.len()];
        batch.dot_into(&sparse, &mut out);
        for (p, point) in points.iter().enumerate() {
            let scalar: f64 = sparse
                .iter()
                .zip(point.as_slice())
                .map(|(c, x)| c * x)
                .sum();
            assert_eq!(out[p].to_bits(), scalar.to_bits(), "point {p}");
        }
    }
}
