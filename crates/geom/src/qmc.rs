//! Low-discrepancy (quasi-Monte-Carlo) point sequences.
//!
//! Section 7.1 of the ROD paper computes feasible-set sizes "using Quasi
//! Monte Carlo integration" because plain Monte-Carlo needs `O(2^d)` samples
//! for acceptable error in `d` dimensions. We implement the classic Halton
//! sequence with optional random digit scrambling (Owen-style per-digit
//! permutation is overkill at d ≤ 10; a random-shift Cranley–Patterson
//! rotation suffices and keeps the estimator unbiased across seeds).

use rand::Rng as _;

use crate::rng::{seeded_rng, Rng};
use crate::vector::Vector;

/// The first 16 primes — enough bases for 16-dimensional Halton points,
/// comfortably above the ≤ 8 input streams used in the paper's experiments.
const PRIMES: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// Radical inverse of `index` in base `base`: reflects the base-`base`
/// digits of `index` about the radix point. The Halton sequence in
/// dimension `k` is the radical inverse in the `k`-th prime base.
pub fn radical_inverse(mut index: u64, base: u64) -> f64 {
    let mut result = 0.0;
    let mut digit_weight = 1.0 / base as f64;
    while index > 0 {
        result += (index % base) as f64 * digit_weight;
        index /= base;
        digit_weight /= base as f64;
    }
    result
}

/// A Halton low-discrepancy sequence in the unit cube `[0,1)^d`, optionally
/// rotated by a random Cranley–Patterson shift so that independent seeds
/// give independent (but still low-discrepancy) estimators.
#[derive(Clone, Debug)]
pub struct HaltonSeq {
    dim: usize,
    index: u64,
    shift: Vec<f64>,
}

impl HaltonSeq {
    /// Unshifted Halton sequence. Panics if `dim` exceeds the available
    /// prime bases (16).
    pub fn new(dim: usize) -> Self {
        assert!(
            dim <= PRIMES.len(),
            "HaltonSeq supports up to {} dimensions, got {dim}",
            PRIMES.len()
        );
        HaltonSeq {
            dim,
            // Skip index 0 (the all-zeros point) — standard practice.
            index: 1,
            shift: vec![0.0; dim],
        }
    }

    /// Randomly shifted Halton sequence (Cranley–Patterson rotation).
    pub fn shifted(dim: usize, seed: u64) -> Self {
        let mut seq = HaltonSeq::new(dim);
        let mut rng: Rng = seeded_rng(seed);
        for s in &mut seq.shift {
            *s = rng.gen::<f64>();
        }
        seq
    }

    /// Dimension of the generated points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Next point of the sequence.
    pub fn next_point(&mut self) -> Vector {
        let idx = self.index;
        self.index += 1;
        Vector::new(
            (0..self.dim)
                .map(|k| {
                    let v = radical_inverse(idx, PRIMES[k]) + self.shift[k];
                    v - v.floor() // wrap into [0,1)
                })
                .collect(),
        )
    }

    /// Collects the next `n` points.
    pub fn take_points(&mut self, n: usize) -> Vec<Vector> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

impl Iterator for HaltonSeq {
    type Item = Vector;
    fn next(&mut self) -> Option<Vector> {
        Some(self.next_point())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn radical_inverse_base2_prefix() {
        // Van der Corput: 1 → 0.5, 2 → 0.25, 3 → 0.75, 4 → 0.125.
        assert!(approx_eq(radical_inverse(1, 2), 0.5));
        assert!(approx_eq(radical_inverse(2, 2), 0.25));
        assert!(approx_eq(radical_inverse(3, 2), 0.75));
        assert!(approx_eq(radical_inverse(4, 2), 0.125));
    }

    #[test]
    fn radical_inverse_base3() {
        assert!(approx_eq(radical_inverse(1, 3), 1.0 / 3.0));
        assert!(approx_eq(radical_inverse(2, 3), 2.0 / 3.0));
        assert!(approx_eq(radical_inverse(3, 3), 1.0 / 9.0));
    }

    #[test]
    fn points_in_unit_cube() {
        let mut seq = HaltonSeq::shifted(5, 9);
        for _ in 0..200 {
            let p = seq.next_point();
            assert_eq!(p.dim(), 5);
            for &x in p.as_slice() {
                assert!((0.0..1.0).contains(&x), "coordinate {x} out of range");
            }
        }
    }

    #[test]
    fn estimates_cube_mean() {
        // The mean of each coordinate over many Halton points ≈ 1/2.
        let mut seq = HaltonSeq::new(3);
        let n = 4096;
        let mut sums = [0.0; 3];
        for _ in 0..n {
            let p = seq.next_point();
            for (s, &x) in sums.iter_mut().zip(p.as_slice()) {
                *s += x;
            }
        }
        for s in sums {
            assert!((s / n as f64 - 0.5).abs() < 1e-3, "mean {}", s / n as f64);
        }
    }

    #[test]
    fn estimates_simplex_fraction() {
        // Fraction of the unit square below x + y <= 1 is 1/2; Halton
        // should nail it to ~1e-3 with a few thousand points.
        let mut seq = HaltonSeq::new(2);
        let n = 8192;
        let hits = seq
            .take_points(n)
            .iter()
            .filter(|p| p[0] + p[1] <= 1.0)
            .count();
        assert!((hits as f64 / n as f64 - 0.5).abs() < 2e-3);
    }

    #[test]
    fn shift_changes_points_not_distribution() {
        let mut a = HaltonSeq::shifted(2, 1);
        let mut b = HaltonSeq::shifted(2, 2);
        let pa = a.next_point();
        let pb = b.next_point();
        assert_ne!(pa, pb);
    }

    #[test]
    #[should_panic(expected = "up to 16 dimensions")]
    fn too_many_dimensions_panics() {
        let _ = HaltonSeq::new(17);
    }
}
