//! Hyperplanes and the two distance metrics of the ROD heuristics.
//!
//! A node hyperplane (paper §3.1) is the set of rate points at which node
//! `N_i` is exactly fully loaded: `l^n_{i1} r_1 + … + l^n_{id} r_d = C_i`.
//! In the normalised coordinate system (§3.3) every node hyperplane has the
//! form `w_{i1} x_1 + … + w_{id} x_d = 1` and the ideal hyperplane is
//! `x_1 + … + x_d = 1`.
//!
//! Two distances drive the heuristics:
//!
//! * **axis distance** on axis `k` (MMAD, §4.1): `offset / normal_k` — the
//!   intercept of the hyperplane with coordinate axis `k`;
//! * **plane distance** (MMPD, §4.2): `offset / ‖normal‖₂` — the Euclidean
//!   distance from the origin (or, for the §6.1 lower-bound extension, from
//!   an arbitrary base point `B`) to the hyperplane.

use serde::{Deserialize, Serialize};

use crate::vector::Vector;

/// A hyperplane `normal · x = offset` in `d` dimensions.
///
/// For node hyperplanes the normal has non-negative components (load
/// coefficients) and the offset is positive (CPU capacity), so all
/// distances below are well defined and non-negative on the workloads the
/// ROD algorithms produce.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hyperplane {
    /// The coefficient vector (`W_i` row in normalised space, `L^n_i` row in
    /// raw rate space).
    pub normal: Vector,
    /// Right-hand side (1 in normalised space, `C_i` in raw rate space).
    pub offset: f64,
}

impl Hyperplane {
    /// Creates a hyperplane `normal · x = offset`.
    pub fn new(normal: Vector, offset: f64) -> Self {
        Hyperplane { normal, offset }
    }

    /// The ideal hyperplane `x_1 + … + x_d = 1` of the normalised space.
    pub fn ideal(dim: usize) -> Self {
        Hyperplane::new(Vector::ones(dim), 1.0)
    }

    /// Dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.normal.dim()
    }

    /// Evaluates `normal · x - offset`; negative ⇒ strictly below the
    /// hyperplane (node not fully loaded), zero ⇒ on it, positive ⇒ above
    /// (node overloaded).
    pub fn signed_excess(&self, x: &Vector) -> f64 {
        self.normal.dot(x) - self.offset
    }

    /// True when point `x` is on or below the hyperplane (feasible side).
    pub fn contains_below(&self, x: &Vector) -> bool {
        self.signed_excess(x) <= 0.0
    }

    /// Axis distance on axis `k`: the intercept `offset / normal_k`
    /// (paper §4.1). Returns `f64::INFINITY` when the hyperplane is
    /// parallel to the axis (`normal_k = 0`), which models an empty node
    /// hyperplane "at infinity".
    pub fn axis_distance(&self, k: usize) -> f64 {
        let nk = self.normal[k];
        if nk == 0.0 {
            f64::INFINITY
        } else {
            self.offset / nk
        }
    }

    /// Euclidean distance from the origin to the hyperplane:
    /// `offset / ‖normal‖₂` (paper §4.2). `INFINITY` for a zero normal
    /// (an empty node).
    pub fn plane_distance(&self) -> f64 {
        let n = self.normal.norm();
        if n == 0.0 {
            f64::INFINITY
        } else {
            self.offset / n
        }
    }

    /// Euclidean distance from base point `b` to the hyperplane:
    /// `(offset - normal·b) / ‖normal‖₂` — the radius of the largest
    /// hypersphere centred at `b` that fits below this hyperplane. This is
    /// the `(1 - W_i B̃)/‖W_i‖` quantity of the §6.1 lower-bound
    /// extension. Negative when `b` is already above the hyperplane.
    pub fn distance_from(&self, b: &Vector) -> f64 {
        let n = self.normal.norm();
        if n == 0.0 {
            f64::INFINITY
        } else {
            (self.offset - self.normal.dot(b)) / n
        }
    }

    /// True when this hyperplane lies entirely on or above the ideal
    /// hyperplane within the non-negative orthant — the *Class I*
    /// membership test of the ROD assignment phase (§5.2): a normalised
    /// node hyperplane is above the ideal one iff every weight
    /// `w_{ik} ≤ 1` (equivalently every axis intercept ≥ 1).
    ///
    /// Only meaningful for normalised hyperplanes (`offset == 1`).
    pub fn is_above_ideal(&self) -> bool {
        debug_assert!(
            (self.offset - 1.0).abs() < 1e-12,
            "Class I test is defined on normalised hyperplanes"
        );
        self.normal.as_slice().iter().all(|&w| w <= 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn axis_distance_intercepts() {
        // 2x + 4y = 8 → intercepts at x=4, y=2.
        let h = Hyperplane::new(Vector::from([2.0, 4.0]), 8.0);
        assert!(approx_eq(h.axis_distance(0), 4.0));
        assert!(approx_eq(h.axis_distance(1), 2.0));
    }

    #[test]
    fn axis_distance_parallel_axis_is_infinite() {
        let h = Hyperplane::new(Vector::from([0.0, 1.0]), 1.0);
        assert_eq!(h.axis_distance(0), f64::INFINITY);
    }

    #[test]
    fn plane_distance_matches_formula() {
        // 3x + 4y = 10 → distance 10/5 = 2.
        let h = Hyperplane::new(Vector::from([3.0, 4.0]), 10.0);
        assert!(approx_eq(h.plane_distance(), 2.0));
    }

    #[test]
    fn distance_from_base_point() {
        let h = Hyperplane::new(Vector::from([3.0, 4.0]), 10.0);
        let b = Vector::from([1.0, 1.0]); // normal·b = 7
        assert!(approx_eq(h.distance_from(&b), 3.0 / 5.0));
        // From the origin it matches plane_distance.
        assert!(approx_eq(
            h.distance_from(&Vector::zeros(2)),
            h.plane_distance()
        ));
    }

    #[test]
    fn ideal_hyperplane() {
        let h = Hyperplane::ideal(3);
        assert!(approx_eq(h.plane_distance(), 1.0 / 3.0f64.sqrt()));
        assert!(h.is_above_ideal()); // the ideal plane is (weakly) above itself
        for k in 0..3 {
            assert!(approx_eq(h.axis_distance(k), 1.0));
        }
    }

    #[test]
    fn class_one_test() {
        let above = Hyperplane::new(Vector::from([0.5, 0.9]), 1.0);
        assert!(above.is_above_ideal());
        let crossing = Hyperplane::new(Vector::from([0.5, 1.2]), 1.0);
        assert!(!crossing.is_above_ideal());
    }

    #[test]
    fn containment() {
        let h = Hyperplane::new(Vector::from([1.0, 1.0]), 1.0);
        assert!(h.contains_below(&Vector::from([0.3, 0.3])));
        assert!(h.contains_below(&Vector::from([0.5, 0.5])));
        assert!(!h.contains_below(&Vector::from([0.8, 0.3])));
    }

    #[test]
    fn empty_node_is_at_infinity() {
        let h = Hyperplane::new(Vector::zeros(2), 1.0);
        assert_eq!(h.plane_distance(), f64::INFINITY);
    }
}
