//! Small, dependency-light geometry and numerics for the ROD reproduction.
//!
//! The ROD paper ("Providing Resiliency to Load Variations in Distributed
//! Stream Processing", VLDB 2006) reasons about operator placement through a
//! small amount of linear algebra and convex geometry:
//!
//! * node load coefficient matrices `L^n = A · L^o` ([`Matrix`]),
//! * node hyperplanes `L^n_i · R = C_i` and their axis / plane distances
//!   ([`Hyperplane`]),
//! * the *feasible set* `{R ≥ 0 : L^n R ≤ C}` whose volume is the
//!   optimisation objective — measured exactly in two dimensions
//!   ([`polygon`]) and by quasi-Monte-Carlo integration in higher
//!   dimensions ([`qmc`], [`volume`]), exactly as §7.1 of the paper
//!   prescribes ("the feasible set sizes of the load distribution plans are
//!   computed using Quasi Monte Carlo integration").
//!
//! Everything here is written from scratch on top of `std` (plus `rand` for
//! scrambling and sampling); the matrices involved are tiny (tens of rows,
//! single-digit columns), so a simple row-major `Vec<f64>` representation is
//! both clear and fast.

#![warn(missing_docs)]
pub mod batch;
pub mod hyperplane;
pub mod matrix;
pub mod polygon;
pub mod qmc;
pub mod rng;
pub mod simd;
pub mod simplex;
pub mod sobol;
pub mod sparse;
pub mod stats;
pub mod vector;
pub mod volume;

pub use batch::{FeasibilityKernel, PointBatch};
pub use hyperplane::Hyperplane;
pub use matrix::Matrix;
pub use polygon::Polygon;
pub use qmc::HaltonSeq;
pub use rng::seeded_rng;
pub use simd::{KernelPath, KernelPathCounts};
pub use simplex::{simplex_volume, SimplexSampler};
pub use sobol::SobolSeq;
pub use sparse::{SparseLoadMatrix, SparseRow};
pub use stats::{OnlineStats, Percentiles};
pub use vector::Vector;
pub use volume::{exact_volume_3d, FeasibleRegion, VolumeEstimate, VolumeEstimator};

/// Comparison tolerance used across the crate for geometric predicates.
///
/// The quantities involved (normalised weights, distances) are all O(1), so
/// a fixed absolute epsilon is appropriate.
pub const EPS: f64 = 1e-9;

/// Returns true when `a` and `b` are equal within [`EPS`] absolutely or
/// within `1e-9` relatively (for larger magnitudes).
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    diff <= EPS || diff <= 1e-9 * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(0.0, 1e-12));
        assert!(!approx_eq(0.0, 1e-3));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0));
        assert!(!approx_eq(1e12, 1.1e12));
    }
}
