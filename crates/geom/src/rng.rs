//! Deterministic random-number plumbing.
//!
//! Every randomised component of the reproduction (workload generation,
//! trace synthesis, Monte-Carlo scrambling, baseline algorithms) takes an
//! explicit seed so that experiments are exactly repeatable; this module
//! centralises the RNG choice.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG used throughout the workspace. ChaCha12 is the `StdRng`
/// algorithm of `rand 0.8` but, unlike `StdRng`, its stream is *documented*
/// to be stable across crate versions — important for reproducible
/// experiment tables.
pub type Rng = ChaCha12Rng;

/// Creates a deterministic RNG from a `u64` seed.
pub fn seeded_rng(seed: u64) -> Rng {
    ChaCha12Rng::seed_from_u64(seed)
}

/// Derives an independent child seed from a parent seed and an index, so
/// that parallel experiment arms get decorrelated streams without sharing
/// mutable state. SplitMix64 finalizer — full-period, well mixed.
pub fn derive_seed(parent: u64, index: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(derive_seed(7, i)), "collision at index {i}");
        }
    }

    #[test]
    fn derive_seed_depends_on_parent() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }
}
