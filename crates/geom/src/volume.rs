//! Feasible-set volume estimation.
//!
//! The ROD objective is the volume of `F(A) = {R ≥ 0 : L^n R ≤ C}`. By
//! Theorem 1 this set is always contained in the *ideal* simplex
//! `{R ≥ 0 : Σ l_k r_k ≤ C_T}`, so we estimate the ratio
//! `|F(A)| / |F*|` by drawing (quasi-)uniform points from the ideal simplex
//! and counting how many satisfy every node constraint — precisely the
//! procedure §7.1 describes for both the Borealis prototype ("randomly
//! generating workload points, all within the ideal feasible set") and the
//! simulator ("Quasi Monte Carlo integration"). Multiplying the ratio by
//! the closed-form `V(F*) = C_T^d/(d! ∏ l_k)` recovers an absolute volume.
//!
//! For `d = 2` the exact polygon area from [`crate::polygon`] is available
//! and is used in tests to validate the estimator.

use serde::{Deserialize, Serialize};

use crate::batch::{FeasibilityKernel, PointBatch};
use crate::hyperplane::Hyperplane;
use crate::matrix::Matrix;
use crate::qmc::HaltonSeq;
use crate::simplex::{simplex_volume, SimplexSampler};
use crate::vector::Vector;

/// A feasible region `{R ≥ B : L^n R ≤ C}` with optional lower bound `B`
/// (zero by default; non-zero for the §6.1 extension).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeasibleRegion {
    /// Node load-coefficient matrix `L^n` (n × d).
    pub coefficients: Matrix,
    /// Node capacity vector `C` (length n).
    pub capacities: Vector,
    /// Workload lower bound `B` (length d, component-wise).
    pub lower_bound: Vector,
}

impl FeasibleRegion {
    /// Region with zero lower bound.
    pub fn new(coefficients: Matrix, capacities: Vector) -> Self {
        let d = coefficients.cols();
        assert_eq!(
            coefficients.rows(),
            capacities.dim(),
            "one capacity per node required"
        );
        FeasibleRegion {
            coefficients,
            capacities,
            lower_bound: Vector::zeros(d),
        }
    }

    /// Region with an explicit lower bound `B` on the workload set.
    pub fn with_lower_bound(coefficients: Matrix, capacities: Vector, lower_bound: Vector) -> Self {
        assert_eq!(coefficients.cols(), lower_bound.dim());
        let mut r = FeasibleRegion::new(coefficients, capacities);
        r.lower_bound = lower_bound;
        r
    }

    /// Number of input-rate dimensions `d`.
    pub fn dim(&self) -> usize {
        self.coefficients.cols()
    }

    /// Number of node constraints `n`.
    pub fn constraints(&self) -> usize {
        self.coefficients.rows()
    }

    /// True when rate point `r` satisfies every node constraint and the
    /// lower bound.
    pub fn contains(&self, r: &Vector) -> bool {
        if !self.lower_bound.le(r) {
            return false;
        }
        for i in 0..self.coefficients.rows() {
            let load: f64 = self
                .coefficients
                .row(i)
                .iter()
                .zip(r.as_slice())
                .map(|(l, x)| l * x)
                .sum();
            if load > self.capacities[i] + 1e-12 {
                return false;
            }
        }
        true
    }

    /// Largest `α ≥ 0` such that `base + α·direction` stays feasible —
    /// exact ray casting against the node hyperplanes:
    /// `α* = min_i (C_i − L_i·base) / (L_i·direction)` over constraints
    /// with positive directional load. `f64::INFINITY` when the ray never
    /// leaves the region, `0.0` when `base` is already infeasible.
    /// (The lower bound is ignored: headroom asks about growth.)
    pub fn max_scale_along(&self, base: &Vector, direction: &Vector) -> f64 {
        assert_eq!(base.dim(), self.dim());
        assert_eq!(direction.dim(), self.dim());
        let mut alpha = f64::INFINITY;
        for i in 0..self.coefficients.rows() {
            let row = self.coefficients.row(i);
            let load: f64 = row.iter().zip(base.as_slice()).map(|(l, x)| l * x).sum();
            let slack = self.capacities[i] - load;
            if slack < 0.0 {
                return 0.0;
            }
            let dir_load: f64 = row
                .iter()
                .zip(direction.as_slice())
                .map(|(l, x)| l * x)
                .sum();
            if dir_load > 0.0 {
                alpha = alpha.min(slack / dir_load);
            }
        }
        alpha
    }

    /// The node hyperplanes `L^n_i · R = C_i`.
    pub fn hyperplanes(&self) -> Vec<Hyperplane> {
        (0..self.coefficients.rows())
            .map(|i| Hyperplane::new(self.coefficients.row_vector(i), self.capacities[i]))
            .collect()
    }
}

/// High-accuracy volume of a three-dimensional feasible region by
/// sweeping the third coordinate and integrating the *exact* clipped
/// polygon area of each slice (composite Simpson). The slice-area
/// function of a convex polytope is piecewise smooth, so a few thousand
/// panels give ~1e-6 relative accuracy — an independent check of the
/// quasi-Monte-Carlo estimator one dimension beyond the closed-form
/// d = 2 case.
///
/// Returns `None` when the region is not 3-dimensional or is unbounded.
pub fn exact_volume_3d(region: &FeasibleRegion) -> Option<f64> {
    use crate::polygon::feasible_area;
    if region.dim() != 3 {
        return None;
    }
    if !region.lower_bound.as_slice().iter().all(|&b| b == 0.0) {
        return None; // sweep assumes the full orthant
    }
    // Bound on x3: the tightest axis-2 intercept over all constraints.
    let ln = &region.coefficients;
    let x3_max = (0..ln.rows())
        .filter(|&i| ln[(i, 2)] > 0.0)
        .map(|i| region.capacities[i] / ln[(i, 2)])
        .fold(f64::INFINITY, f64::min);
    if !x3_max.is_finite() {
        return None;
    }
    // Exact area of the slice at fixed x3.
    let slice_area = |x3: f64| -> Option<f64> {
        let constraints: Vec<Hyperplane> = (0..ln.rows())
            .map(|i| {
                Hyperplane::new(
                    Vector::from([ln[(i, 0)], ln[(i, 1)]]),
                    region.capacities[i] - ln[(i, 2)] * x3,
                )
            })
            .collect();
        // A negative remaining capacity makes the slice empty.
        if constraints.iter().any(|h| h.offset < 0.0) {
            return Some(0.0);
        }
        feasible_area(&constraints)
    };
    // Composite Simpson over [0, x3_max].
    let panels = 4096usize; // even
    let h = x3_max / panels as f64;
    let mut sum = slice_area(0.0)? + slice_area(x3_max)?;
    for j in 1..panels {
        let weight = if j % 2 == 1 { 4.0 } else { 2.0 };
        sum += weight * slice_area(j as f64 * h)?;
    }
    Some(sum * h / 3.0)
}

/// Result of a volume estimation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VolumeEstimate {
    /// Fraction of ideal-simplex sample points that were feasible.
    pub ratio_to_ideal: f64,
    /// `ratio_to_ideal × V(F*)`.
    pub absolute: f64,
    /// Exact volume of the enclosing ideal simplex.
    pub ideal_volume: f64,
    /// Number of sample points used.
    pub samples: usize,
}

/// Ideal-simplex volume restricted to the load-carrying axes: zero
/// coefficients are dropped (the set is unbounded along them and the
/// sampler pins those rates to 0), and an all-zero system has volume 0.
fn projected_ideal_volume(total_coeffs: &[f64], total_cap: f64) -> f64 {
    let positive: Vec<f64> = total_coeffs.iter().copied().filter(|&a| a > 0.0).collect();
    if positive.is_empty() {
        0.0
    } else {
        simplex_volume(&positive, total_cap)
    }
}

/// Quasi-Monte-Carlo estimator of feasible-set volume ratios.
///
/// The estimator is configured once with the total load coefficients
/// `l = colsums(L^o)` and total capacity `C_T` (which define the ideal
/// simplex) and can then score any number of candidate regions — all plans
/// for the same query graph share the same ideal simplex, so they are
/// scored against the *same* point set, making plan-to-plan comparisons
/// noise-free.
#[derive(Clone, Debug)]
pub struct VolumeEstimator {
    points: Vec<Vector>,
    kernel: FeasibilityKernel,
    ideal_volume: f64,
}

impl VolumeEstimator {
    /// Builds an estimator with `samples` scrambled-Halton points uniform
    /// in the ideal simplex `{R ≥ 0 : Σ total_coeffs_k R_k ≤ total_cap}`.
    ///
    /// Zero total coefficients (inputs feeding only zero-load operators)
    /// leave the ideal set unbounded along those axes; the sampler pins
    /// them to rate 0 and `ideal_volume` is measured on the subspace of
    /// load-carrying inputs (0 when there are none). Plan-to-plan ratio
    /// comparisons stay valid — every plan is scored on the same points.
    pub fn new(total_coeffs: &[f64], total_cap: f64, samples: usize, seed: u64) -> Self {
        let sampler = SimplexSampler::new(total_coeffs, total_cap);
        let mut seq = HaltonSeq::shifted(total_coeffs.len(), seed);
        let points: Vec<Vector> = (0..samples)
            .map(|_| sampler.map_cube_point(&seq.next_point()))
            .collect();
        VolumeEstimator {
            kernel: FeasibilityKernel::new(&points),
            points,
            ideal_volume: projected_ideal_volume(total_coeffs, total_cap),
        }
    }

    /// Like [`VolumeEstimator::new`] but with a shifted Sobol' point set
    /// — preferable at the higher dimensions (d ≥ ~6) where Halton's
    /// correlation artefacts start to show.
    pub fn with_sobol(total_coeffs: &[f64], total_cap: f64, samples: usize, seed: u64) -> Self {
        let sampler = SimplexSampler::new(total_coeffs, total_cap);
        let mut seq = crate::sobol::SobolSeq::shifted(total_coeffs.len(), seed);
        let points: Vec<Vector> = (0..samples)
            .map(|_| sampler.map_cube_point(&seq.next_point()))
            .collect();
        VolumeEstimator {
            kernel: FeasibilityKernel::new(&points),
            points,
            ideal_volume: projected_ideal_volume(total_coeffs, total_cap),
        }
    }

    /// Number of sample points held.
    pub fn samples(&self) -> usize {
        self.points.len()
    }

    /// Exact ideal-simplex volume.
    pub fn ideal_volume(&self) -> f64 {
        self.ideal_volume
    }

    /// The shared sample points (for callers that need to score many plans
    /// in a custom loop).
    pub fn points(&self) -> &[Vector] {
        &self.points
    }

    /// The same points as a column-major [`PointBatch`] — the layout the
    /// batched scoring paths (e.g. `SampledFeasibility` precomputes) want.
    pub fn batch(&self) -> &PointBatch {
        self.kernel.batch()
    }

    /// Estimates the volume of `region` (which must live in the same rate
    /// space — same `d`, and be contained in the ideal simplex, which holds
    /// for every region generated from an allocation of the same graph).
    ///
    /// Scoring runs through the batched [`FeasibilityKernel`] — one
    /// column-wise pass over the structure-of-arrays point store — and the
    /// point range is partitioned across the persistent
    /// [`rod_pool::global`] worker pool (default size: `ROD_THREADS` or
    /// `std::thread::available_parallelism()`); each range's integer hit
    /// count is merged in range order, so the result is bit-identical to
    /// the serial scalar scan regardless of thread count.
    pub fn estimate(&self, region: &FeasibleRegion) -> VolumeEstimate {
        self.estimate_with_threads(region, rod_pool::global().size())
    }

    /// [`VolumeEstimator::estimate`] with an explicit chunk count
    /// (clamped to at least 1; small point sets fall back to the
    /// single-threaded kernel since dispatch would cost more than
    /// counting). Chunks run on the persistent [`rod_pool::global`]
    /// pool — no per-call thread spawn.
    pub fn estimate_with_threads(&self, region: &FeasibleRegion, threads: usize) -> VolumeEstimate {
        assert_eq!(region.dim(), self.points.first().map_or(0, Vector::dim));
        // Below ~4k points per chunk, dispatch outweighs the counting
        // work (clamps oversized thread requests on tiny point sets).
        const MIN_POINTS_PER_THREAD: usize = 4_096;
        let threads = threads
            .max(1)
            .min(self.points.len().div_ceil(MIN_POINTS_PER_THREAD).max(1));
        let hits = if threads == 1 {
            self.kernel.count_feasible(region)
        } else {
            let ranges = rod_pool::chunks(self.points.len(), threads);
            // Ordered reduction: range counts are summed in range order.
            // Integer addition is associative, so the total equals the
            // serial count exactly, whatever the pool's worker count.
            rod_pool::global().map_reduce(
                ranges.len(),
                |t| {
                    let r = &ranges[t];
                    self.kernel.count_feasible_range(region, r.start, r.end)
                },
                0usize,
                |acc, part| acc + part,
            )
        };
        self.estimate_from_hits(hits)
    }

    /// The inner-loop implementation the kernel selected at
    /// construction ([`crate::simd::select_path`]): `Simd` on AVX2
    /// hosts unless `ROD_NO_SIMD` suppressed it, `Scalar` otherwise.
    pub fn kernel_path(&self) -> crate::simd::KernelPath {
        self.kernel.path()
    }

    /// Single-threaded estimate through the blocked kernel pinned to
    /// its **scalar** loops, whatever the host supports — the
    /// blocked-scalar reference leg of SIMD A/B comparisons (the
    /// `kernel_estimate_seconds` column of `BENCH_planner.json`).
    /// Bit-identical to [`estimate`](Self::estimate) by the kernel's
    /// path contract.
    pub fn estimate_kernel_scalar(&self, region: &FeasibleRegion) -> VolumeEstimate {
        assert_eq!(region.dim(), self.points.first().map_or(0, Vector::dim));
        let hits = self
            .kernel
            .count_feasible_range_scalar(region, 0, self.points.len());
        self.estimate_from_hits(hits)
    }

    /// The retired point-at-a-time scan, kept as the reference
    /// implementation: the batched kernel must agree with it bit for bit
    /// (asserted by the equivalence tests here and the golden suite in
    /// `rod-bench`), and `perf_planner` times both to track the speedup.
    pub fn estimate_scalar(&self, region: &FeasibleRegion) -> VolumeEstimate {
        assert_eq!(region.dim(), self.points.first().map_or(0, Vector::dim));
        let hits = self.points.iter().filter(|p| region.contains(p)).count();
        self.estimate_from_hits(hits)
    }

    fn estimate_from_hits(&self, hits: usize) -> VolumeEstimate {
        let ratio = hits as f64 / self.points.len() as f64;
        VolumeEstimate {
            ratio_to_ideal: ratio,
            absolute: ratio * self.ideal_volume,
            ideal_volume: self.ideal_volume,
            samples: self.points.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::feasible_area;

    fn region(rows: &[&[f64]], caps: &[f64]) -> FeasibleRegion {
        FeasibleRegion::new(Matrix::from_rows(rows), Vector::from(caps))
    }

    #[test]
    fn contains_respects_constraints() {
        let r = region(&[&[1.0, 0.0], &[0.0, 1.0]], &[1.0, 2.0]);
        assert!(r.contains(&Vector::from([0.5, 1.5])));
        assert!(!r.contains(&Vector::from([1.5, 0.5])));
        assert!(!r.contains(&Vector::from([0.5, 2.5])));
    }

    #[test]
    fn contains_respects_lower_bound() {
        let r = FeasibleRegion::with_lower_bound(
            Matrix::from_rows(&[&[1.0, 1.0]]),
            Vector::from([2.0]),
            Vector::from([0.5, 0.0]),
        );
        assert!(r.contains(&Vector::from([0.6, 0.4])));
        assert!(!r.contains(&Vector::from([0.4, 0.4])), "below lower bound");
    }

    #[test]
    fn estimate_matches_exact_2d_area() {
        // Example 2 plan (a): L^n = [[4,2],[6,9]], C = (1,1);
        // ideal simplex: 10 r1 + 11 r2 <= 2.
        let reg = region(&[&[4.0, 2.0], &[6.0, 9.0]], &[1.0, 1.0]);
        let exact = feasible_area(&reg.hyperplanes()).unwrap();
        let est = VolumeEstimator::new(&[10.0, 11.0], 2.0, 50_000, 7).estimate(&reg);
        let rel_err = (est.absolute - exact).abs() / exact;
        assert!(rel_err < 0.01, "relative error {rel_err}");
    }

    #[test]
    fn ideal_region_has_ratio_one() {
        // A single node holding everything with the full capacity is
        // exactly the ideal simplex.
        let reg = region(&[&[10.0, 11.0]], &[2.0]);
        let est = VolumeEstimator::new(&[10.0, 11.0], 2.0, 20_000, 1).estimate(&reg);
        assert!(est.ratio_to_ideal > 0.999, "ratio {}", est.ratio_to_ideal);
    }

    #[test]
    fn tighter_region_has_smaller_ratio() {
        let est = VolumeEstimator::new(&[1.0, 1.0, 1.0], 1.0, 30_000, 2);
        let loose = region(
            &[&[0.4, 0.3, 0.3], &[0.3, 0.4, 0.3], &[0.3, 0.3, 0.4]],
            &[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        );
        let tight = region(
            &[&[0.8, 0.1, 0.1], &[0.1, 0.8, 0.1], &[0.1, 0.1, 0.8]],
            &[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        );
        let v_loose = est.estimate(&loose).ratio_to_ideal;
        let v_tight = est.estimate(&tight).ratio_to_ideal;
        assert!(
            v_loose > v_tight,
            "balanced plan {v_loose} should beat skewed plan {v_tight}"
        );
    }

    #[test]
    fn three_dim_exact_simplex_ratio() {
        // Region {x >= 0 : x1+x2+x3 <= 1/2} inside ideal {sum <= 1} has
        // ratio (1/2)^3 = 1/8.
        let reg = region(&[&[1.0, 1.0, 1.0]], &[0.5]);
        let est = VolumeEstimator::new(&[1.0, 1.0, 1.0], 1.0, 60_000, 3).estimate(&reg);
        assert!(
            (est.ratio_to_ideal - 0.125).abs() < 0.01,
            "ratio {}",
            est.ratio_to_ideal
        );
    }

    #[test]
    fn ray_casting_headroom() {
        // x + y <= 1, base (0.25, 0.25): along +x the boundary is at
        // alpha = 0.5; along the diagonal (1,1) at 0.25.
        let reg = region(&[&[1.0, 1.0]], &[1.0]);
        let base = Vector::from([0.25, 0.25]);
        assert!((reg.max_scale_along(&base, &Vector::from([1.0, 0.0])) - 0.5).abs() < 1e-12);
        assert!((reg.max_scale_along(&base, &Vector::from([1.0, 1.0])) - 0.25).abs() < 1e-12);
        // A direction that only shrinks load never exits.
        assert_eq!(
            reg.max_scale_along(&base, &Vector::from([-1.0, 0.0])),
            f64::INFINITY
        );
        // From an infeasible base, zero.
        assert_eq!(
            reg.max_scale_along(&Vector::from([2.0, 0.0]), &Vector::from([1.0, 0.0])),
            0.0
        );
        // Boundary point found by the ray is itself feasible.
        let alpha = reg.max_scale_along(&base, &Vector::from([1.0, 0.0]));
        let boundary = &base + &Vector::from([alpha, 0.0]);
        assert!(reg.contains(&boundary));
    }

    #[test]
    fn exact_3d_volume_of_simplex() {
        // {x >= 0 : x1 + x2 + x3 <= 1} has volume 1/6.
        let reg = region(&[&[1.0, 1.0, 1.0]], &[1.0]);
        let v = exact_volume_3d(&reg).unwrap();
        assert!((v - 1.0 / 6.0).abs() < 1e-6, "volume {v}");
    }

    #[test]
    fn exact_3d_volume_of_box() {
        // [0,1]x[0,2]x[0,3] via three axis constraints → volume 6.
        let reg = region(
            &[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]],
            &[1.0, 2.0, 3.0],
        );
        let v = exact_volume_3d(&reg).unwrap();
        assert!((v - 6.0).abs() < 1e-5, "volume {v}");
    }

    #[test]
    fn exact_3d_validates_qmc_on_random_region() {
        let reg = region(
            &[&[2.0, 1.0, 0.5], &[0.5, 2.5, 1.0], &[1.0, 0.7, 2.0]],
            &[1.0, 1.0, 1.0],
        );
        let exact = exact_volume_3d(&reg).unwrap();
        let totals = [3.5, 4.2, 3.5];
        let est = VolumeEstimator::new(&totals, 3.0, 80_000, 3).estimate(&reg);
        let rel = (est.absolute - exact).abs() / exact;
        assert!(
            rel < 0.02,
            "exact {exact} vs QMC {} (rel {rel})",
            est.absolute
        );
    }

    #[test]
    fn exact_3d_rejects_wrong_dimension_and_unbounded() {
        let reg2 = region(&[&[1.0, 1.0]], &[1.0]);
        assert_eq!(exact_volume_3d(&reg2), None);
        // x3 unconstrained → unbounded.
        let unbounded = region(&[&[1.0, 1.0, 0.0]], &[1.0]);
        assert_eq!(exact_volume_3d(&unbounded), None);
    }

    #[test]
    fn sobol_estimator_matches_exact_2d_area() {
        let reg = region(&[&[4.0, 2.0], &[6.0, 9.0]], &[1.0, 1.0]);
        let exact = feasible_area(&reg.hyperplanes()).unwrap();
        let est = VolumeEstimator::with_sobol(&[10.0, 11.0], 2.0, 50_000, 7).estimate(&reg);
        let rel_err = (est.absolute - exact).abs() / exact;
        assert!(rel_err < 0.01, "relative error {rel_err}");
    }

    #[test]
    fn parallel_estimate_is_bit_identical_to_serial() {
        // 20k points exceed the per-thread floor, so requested thread
        // counts > 1 genuinely spawn workers.
        let est = VolumeEstimator::new(&[10.0, 11.0], 2.0, 20_000, 7);
        let reg = region(&[&[4.0, 2.0], &[6.0, 9.0]], &[1.0, 1.0]);
        let serial = est.estimate_with_threads(&reg, 1);
        for threads in [2, 3, 4, 5, 8] {
            let parallel = est.estimate_with_threads(&reg, threads);
            assert_eq!(
                serial.ratio_to_ideal.to_bits(),
                parallel.ratio_to_ideal.to_bits(),
                "threads = {threads}"
            );
            assert_eq!(
                serial.absolute.to_bits(),
                parallel.absolute.to_bits(),
                "threads = {threads}"
            );
        }
        // The default path (available_parallelism) agrees too.
        assert_eq!(
            est.estimate(&reg).ratio_to_ideal.to_bits(),
            serial.ratio_to_ideal.to_bits()
        );
    }

    #[test]
    fn tiny_point_sets_fall_back_to_serial() {
        let est = VolumeEstimator::new(&[1.0, 1.0], 1.0, 500, 3);
        let reg = region(&[&[0.7, 0.6]], &[0.5]);
        let serial = est.estimate_with_threads(&reg, 1);
        let requested_many = est.estimate_with_threads(&reg, 64);
        assert_eq!(
            serial.ratio_to_ideal.to_bits(),
            requested_many.ratio_to_ideal.to_bits()
        );
    }

    #[test]
    fn batched_kernel_estimate_is_bit_identical_to_scalar() {
        // A spread of region shapes: loose, tight, lower-bounded, and
        // higher-dimensional — the kernel must agree with the retired
        // per-point walk bit for bit on every one.
        let est2 = VolumeEstimator::new(&[10.0, 11.0], 2.0, 30_000, 7);
        let est5 = VolumeEstimator::with_sobol(&[1.0; 5], 1.0, 30_000, 13);
        let regions2 = [
            region(&[&[4.0, 2.0], &[6.0, 9.0]], &[1.0, 1.0]),
            region(&[&[10.0, 11.0]], &[2.0]),
            FeasibleRegion::with_lower_bound(
                Matrix::from_rows(&[&[4.0, 2.0], &[6.0, 9.0]]),
                Vector::from([1.0, 1.0]),
                Vector::from([0.01, 0.01]),
            ),
        ];
        for (i, reg) in regions2.iter().enumerate() {
            let batched = est2.estimate(reg);
            let scalar = est2.estimate_scalar(reg);
            assert_eq!(
                batched.ratio_to_ideal.to_bits(),
                scalar.ratio_to_ideal.to_bits(),
                "2-d region {i}"
            );
            assert_eq!(batched.absolute.to_bits(), scalar.absolute.to_bits());
        }
        let reg5 = region(
            &[
                &[0.5, 0.2, 0.2, 0.2, 0.2],
                &[0.2, 0.5, 0.2, 0.2, 0.2],
                &[0.2, 0.2, 0.5, 0.2, 0.2],
            ],
            &[0.4, 0.4, 0.4],
        );
        assert_eq!(
            est5.estimate(&reg5).ratio_to_ideal.to_bits(),
            est5.estimate_scalar(&reg5).ratio_to_ideal.to_bits()
        );
    }

    #[test]
    fn shared_points_give_identical_repeat_scores() {
        let est = VolumeEstimator::new(&[1.0, 1.0], 1.0, 5_000, 9);
        let reg = region(&[&[0.7, 0.6]], &[0.5]);
        let a = est.estimate(&reg).ratio_to_ideal;
        let b = est.estimate(&reg).ratio_to_ideal;
        assert_eq!(a, b);
    }
}
