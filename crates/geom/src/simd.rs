//! Explicit-SIMD (AVX2, 4×f64 lane) inner loops for the batched
//! feasibility kernel, behind a runtime-dispatched bit-identity contract.
//!
//! The blocked kernel in [`crate::batch`] already arranges every hot loop
//! as a straight multiply-add over contiguous `f64` slices, which LLVM
//! auto-vectorises — but only at the portable x86-64 baseline (SSE2,
//! 2×f64 lanes). This module provides hand-written AVX2 versions of the
//! three inner loops — the `avx2::axpy` accumulation behind
//! [`PointBatch::dot_into`](crate::batch::PointBatch::dot_into), the
//! lower-bound mask pass, and the per-constraint multiply-add +
//! survivor-compaction loop of `FeasibilityKernel::count_block` — at
//! 4×f64 lanes, with the survivor bookkeeping reduced to one live-bit
//! word per 16-point tile (AND, popcount, and a zero test) and the
//! compaction's write cursor to a table-driven vpermps compress
//! (`avx2::compress_tile`); see `count_block_avx2` in
//! [`crate::batch`] for how the two compose.
//!
//! ## Dispatch contract
//!
//! Which path runs is decided by [`select_path`] (pure logic in
//! [`resolve_path`], unit-testable without touching the environment):
//!
//! 1. a `force_scalar` constructor argument always wins (CI A/B runs,
//!    the perf harness's reference leg),
//! 2. otherwise the `ROD_NO_SIMD` environment variable (any value other
//!    than empty or `0`) forces the scalar path,
//! 3. otherwise AVX2 is detected at runtime via
//!    `is_x86_feature_detected!("avx2")`; hosts without it (or non-x86_64
//!    builds, where the detection is compiled out entirely) fall back to
//!    the scalar path.
//!
//! Every block and every dot row notes which path scored it in a set of
//! process-global [`path_counts`] counters, so tests — and
//! `rod_core::obs` via its `record_kernel_path` helper — can observe
//! that a forced path was actually taken rather than trusting the flag.
//!
//! ## Bit-identity, by construction
//!
//! Lanes are *points*: one SIMD register holds the partial loads of four
//! different sample points, and each point's accumulation still walks the
//! nonzero constraint columns `k` in ascending order starting from
//! `+0.0`. Per-point operand order is therefore exactly the scalar
//! walk's, and IEEE-754 arithmetic is deterministic for a fixed operand
//! order — so counts, load vectors, and every placement derived from
//! them are bit-identical across paths (pinned by the proptests in
//! `tests/simd_equivalence.rs` and the golden suite in `rod-bench`).
//!
//! Two details make this *by construction* rather than by luck:
//!
//! * **No fused multiply-add.** The kernels use `_mm256_mul_pd` followed
//!   by `_mm256_add_pd`, never `_mm256_fmadd_pd`: an FMA skips the
//!   intermediate rounding of the product, which is usually *more*
//!   accurate but differs from the scalar `acc + c * x` (rustc does not
//!   contract float expressions), and would break the contract.
//! * **Masks carry no arithmetic.** On the hot path a tile's 16
//!   comparison bits are only ever ANDed together, tested for zero and
//!   popcounted — order-oblivious — so the kernel is free to produce
//!   them in the fixed shuffled order that the cheapest bit-extraction
//!   sequence emits (see `mask16` below). The one positional consumer,
//!   the survivor compress, converts to point order just in time with
//!   `avx2::unshuffle16` and then copies coordinates verbatim.
//!   Skipping a dead tile's remaining constraints is legal because
//!   feasibility is a conjunction.
//!
//! This is the repository's first architecture-specific code; the
//! pattern it establishes — runtime detection, a scalar oracle kept
//! verbatim, forced-path constructors, and a forced-scalar CI matrix
//! leg — is the template for every future kernel.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which implementation a [`FeasibilityKernel`](crate::FeasibilityKernel)
/// (or one `dot_into` call) uses for its inner loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// The reference blocked-scalar loops (auto-vectorised by LLVM at
    /// the portable baseline). Always available; always the oracle.
    Scalar,
    /// The explicit AVX2 4×f64-lane loops in this module.
    Simd,
}

/// True when the build target and the running CPU support the AVX2 path.
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when `ROD_NO_SIMD` is set to anything other than empty or `0` —
/// the environment override that forces the scalar path process-wide
/// (read at kernel construction / per `dot_into` call, so tests and CI
/// matrix legs can flip it without rebuilding).
pub fn simd_disabled_by_env() -> bool {
    std::env::var("ROD_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The dispatch decision, as a pure function of its inputs — the logic
/// behind [`select_path`], separated so the precedence (forced > env >
/// detection) is unit-testable without mutating the process environment.
pub fn resolve_path(force_scalar: bool, env_disabled: bool, supported: bool) -> KernelPath {
    if force_scalar || env_disabled || !supported {
        KernelPath::Scalar
    } else {
        KernelPath::Simd
    }
}

/// Selects the path for a new kernel (or one `dot_into` call): scalar
/// when forced, when `ROD_NO_SIMD` is set, or when the host lacks AVX2.
pub fn select_path(force_scalar: bool) -> KernelPath {
    resolve_path(force_scalar, simd_disabled_by_env(), simd_supported())
}

static SIMD_BLOCKS: AtomicU64 = AtomicU64::new(0);
static SCALAR_BLOCKS: AtomicU64 = AtomicU64::new(0);
static SIMD_DOT_ROWS: AtomicU64 = AtomicU64::new(0);
static SCALAR_DOT_ROWS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-global kernel-path counters: how many blocks
/// (`FeasibilityKernel::count_block` calls) and dot rows
/// ([`dot_into`](crate::batch::PointBatch::dot_into) calls) each path
/// has scored since process start. Monotone; take two snapshots and
/// subtract to attribute work to a region of code (see
/// `rod_core::obs::record_kernel_path`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelPathCounts {
    /// Blocks scored by the AVX2 path.
    pub simd_blocks: u64,
    /// Blocks scored by the scalar path.
    pub scalar_blocks: u64,
    /// `dot_into` rows accumulated by the AVX2 path.
    pub simd_dot_rows: u64,
    /// `dot_into` rows accumulated by the scalar path.
    pub scalar_dot_rows: u64,
}

/// Reads the current [`KernelPathCounts`].
pub fn path_counts() -> KernelPathCounts {
    KernelPathCounts {
        simd_blocks: SIMD_BLOCKS.load(Ordering::Relaxed),
        scalar_blocks: SCALAR_BLOCKS.load(Ordering::Relaxed),
        simd_dot_rows: SIMD_DOT_ROWS.load(Ordering::Relaxed),
        scalar_dot_rows: SCALAR_DOT_ROWS.load(Ordering::Relaxed),
    }
}

/// Notes one scored block on `path`'s counter.
pub(crate) fn note_block(path: KernelPath) {
    match path {
        KernelPath::Simd => SIMD_BLOCKS.fetch_add(1, Ordering::Relaxed),
        KernelPath::Scalar => SCALAR_BLOCKS.fetch_add(1, Ordering::Relaxed),
    };
}

/// Notes one accumulated `dot_into` row on `path`'s counter.
pub(crate) fn note_dot(path: KernelPath) {
    match path {
        KernelPath::Simd => SIMD_DOT_ROWS.fetch_add(1, Ordering::Relaxed),
        KernelPath::Scalar => SCALAR_DOT_ROWS.fetch_add(1, Ordering::Relaxed),
    };
}

/// The AVX2 loop bodies. Everything here is `unsafe` twice over: callers
/// must have verified AVX2 support (the dispatch above guarantees it —
/// [`KernelPath::Simd`] is only ever selected after detection), and the
/// pointer arithmetic relies on the slice-length invariants asserted by
/// the safe wrappers in [`crate::batch`].
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use std::arch::x86_64::*;

    /// Points per tile of the tile-major block scorer: four 4-lane
    /// registers' worth of accumulators, enough work per mask fold to
    /// amortise the bit extraction while leaving ymm registers to spare.
    pub const TILE: usize = 16;

    /// A tile of 16 per-point load accumulators in four ymm registers.
    #[derive(Clone, Copy)]
    pub struct Tile(__m256d, __m256d, __m256d, __m256d);

    /// Extracts the 16 sign bits of four 4×f64 comparison masks as one
    /// `u16`, in the module's fixed **shuffled bit order**.
    ///
    /// The cheap sequence — two `vshufps` picking the low 32-bit half of
    /// every f64 mask lane, then two `vmovmskps` — is roughly half the
    /// µops of four `vmovmskpd` plus a shift/OR chain, but `vshufps`
    /// works within 128-bit halves, so the bits come out in the order
    ///
    /// ```text
    /// [p0 p1 p4 p5 p2 p3 p6 p7 | p8 p9 p12 p13 p10 p11 p14 p15]
    /// ```
    ///
    /// (`m0` holds points 0–3, `m1` 4–7, `m2` 8–11, `m3` 12–15). Every
    /// mask this module produces uses the same order, and callers only
    /// AND masks together, test for zero and popcount — all
    /// order-oblivious — so the shuffle is never observed. The unit
    /// tests invert it with `scramble16`.
    ///
    /// # Safety
    /// AVX2 must be available.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mask16(m0: __m256d, m1: __m256d, m2: __m256d, m3: __m256d) -> u16 {
        let lo = _mm256_shuffle_ps::<0x88>(_mm256_castpd_ps(m0), _mm256_castpd_ps(m1));
        let hi = _mm256_shuffle_ps::<0x88>(_mm256_castpd_ps(m2), _mm256_castpd_ps(m3));
        (_mm256_movemask_ps(lo) as u16) | ((_mm256_movemask_ps(hi) as u16) << 8)
    }

    /// Converts a mask between [`mask16`]'s shuffled bit order and
    /// point order. The shuffle swaps bit pairs `(2,3)` ↔ `(4,5)`
    /// within each byte, which is its own inverse — so this one
    /// function maps either direction. The kernel calls it just in
    /// time when survivor compaction needs bit *positions* (compare
    /// masks are otherwise only ANDed, popcounted and zero-tested,
    /// all order-oblivious).
    #[inline]
    pub(crate) fn unshuffle16(w: u16) -> u16 {
        (w & 0xC3C3) | ((w & 0x0C0C) << 2) | ((w & 0x3030) >> 2)
    }

    /// `vpermps` index table for the 4-lane f64 compress: entry `m`
    /// maps the doubles whose mask bits are set in `m` to the front, in
    /// lane order. Doubles are permuted as pairs of 32-bit lanes (`2j`,
    /// `2j+1`), so the move is a pure bit copy.
    static COMPRESS_LUT: [[i32; 8]; 16] = [
        [0, 0, 0, 0, 0, 0, 0, 0],
        [0, 1, 0, 0, 0, 0, 0, 0],
        [2, 3, 0, 0, 0, 0, 0, 0],
        [0, 1, 2, 3, 0, 0, 0, 0],
        [4, 5, 0, 0, 0, 0, 0, 0],
        [0, 1, 4, 5, 0, 0, 0, 0],
        [2, 3, 4, 5, 0, 0, 0, 0],
        [0, 1, 2, 3, 4, 5, 0, 0],
        [6, 7, 0, 0, 0, 0, 0, 0],
        [0, 1, 6, 7, 0, 0, 0, 0],
        [2, 3, 6, 7, 0, 0, 0, 0],
        [0, 1, 2, 3, 6, 7, 0, 0],
        [4, 5, 6, 7, 0, 0, 0, 0],
        [0, 1, 4, 5, 6, 7, 0, 0],
        [2, 3, 4, 5, 6, 7, 0, 0],
        [0, 1, 2, 3, 4, 5, 6, 7],
    ];

    /// Compresses the 16 `src` coordinates whose alive bit is set to
    /// the front of `dst` (in index order), returning how many were
    /// written — one tile of the survivor compaction. `bits` is in
    /// **point order** (callers unshuffle a working mask with
    /// [`unshuffle16`] first). Each 4-point nibble is compressed with
    /// one table-driven `vpermps` and an unconditional 4-lane store, so
    /// `dst` **must have at least 3 slots of slack** past the survivors
    /// (the caller's compacted stride provides 4). The permutation
    /// copies bits verbatim — no arithmetic — so compacted coordinates
    /// are exactly the originals.
    ///
    /// # Safety
    /// AVX2 must be available, `src` must point at 16 readable `f64`s,
    /// and `dst` at `bits.count_ones() + 3` writable ones.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn compress_tile(src: *const f64, bits: u16, dst: *mut f64) -> usize {
        let mut w = 0usize;
        for nibble in 0..4 {
            let nib = ((bits >> (4 * nibble)) & 0xF) as usize;
            let v = _mm256_loadu_pd(src.add(4 * nibble));
            let idx = _mm256_loadu_si256(COMPRESS_LUT[nib].as_ptr() as *const __m256i);
            let packed = _mm256_permutevar8x32_ps(_mm256_castpd_ps(v), idx);
            _mm256_storeu_pd(dst.add(w), _mm256_castps_pd(packed));
            w += nib.count_ones() as usize;
        }
        w
    }

    /// A zeroed accumulator tile (`+0.0` lanes — the scalar
    /// accumulators' starting value, load-bearing for bit-identity).
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn tile_zero() -> Tile {
        let z = _mm256_setzero_pd();
        Tile(z, z, z, z)
    }

    /// `acc[p] += c · xs[p]` for the 16 points at `xs` — multiply then
    /// add (never `fmadd`; see the module docs), per lane, so each
    /// point's accumulation rounds exactly like the scalar `acc + c * x`.
    ///
    /// # Safety
    /// AVX2 must be available and `xs` must point at 16 readable `f64`s.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn tile_axpy(acc: Tile, c: f64, xs: *const f64) -> Tile {
        let cv = _mm256_set1_pd(c);
        Tile(
            _mm256_add_pd(acc.0, _mm256_mul_pd(cv, _mm256_loadu_pd(xs))),
            _mm256_add_pd(acc.1, _mm256_mul_pd(cv, _mm256_loadu_pd(xs.add(4)))),
            _mm256_add_pd(acc.2, _mm256_mul_pd(cv, _mm256_loadu_pd(xs.add(8)))),
            _mm256_add_pd(acc.3, _mm256_mul_pd(cv, _mm256_loadu_pd(xs.add(12)))),
        )
    }

    /// `load ≤ cap` per point of the tile, as 16 comparison bits in
    /// [`mask16`]'s shuffled order (one set bit = one point passed).
    /// The comparison is ordered-quiet (`NaN ≤ cap` is false), matching
    /// the scalar `load <= cap`. The caller ANDs the bits into its
    /// per-tile live word and popcounts — the whole survivor merge is
    /// two scalar ops, where a byte-level flag array would cost a
    /// load/expand/blend/store chain per tile.
    ///
    /// # Safety
    /// AVX2 must be available.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn tile_cmp_le(acc: Tile, cap: f64) -> u16 {
        let capv = _mm256_set1_pd(cap);
        mask16(
            _mm256_cmp_pd::<_CMP_LE_OQ>(acc.0, capv),
            _mm256_cmp_pd::<_CMP_LE_OQ>(acc.1, capv),
            _mm256_cmp_pd::<_CMP_LE_OQ>(acc.2, capv),
            _mm256_cmp_pd::<_CMP_LE_OQ>(acc.3, capv),
        )
    }

    /// `acc[p] += c · xs[p]` over whole slices — the 4-lane body behind
    /// [`PointBatch::dot_into`](crate::batch::PointBatch::dot_into).
    /// Multiply then add per lane; the ragged tail runs scalar with the
    /// same expression, so every element rounds identically to the
    /// scalar loop.
    ///
    /// # Safety
    /// AVX2 must be available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(c: f64, xs: &[f64], acc: &mut [f64]) {
        debug_assert_eq!(xs.len(), acc.len());
        let cv = _mm256_set1_pd(c);
        let n4 = xs.len() - xs.len() % 4;
        let mut t = 0;
        while t < n4 {
            let a = _mm256_loadu_pd(acc.as_ptr().add(t));
            let x = _mm256_loadu_pd(xs.as_ptr().add(t));
            _mm256_storeu_pd(
                acc.as_mut_ptr().add(t),
                _mm256_add_pd(a, _mm256_mul_pd(cv, x)),
            );
            t += 4;
        }
        for p in n4..xs.len() {
            acc[p] += c * xs[p];
        }
    }

    /// `b ≤ col[p]` for the 16 points at `p`, as 16 comparison bits in
    /// [`mask16`]'s shuffled order — one tile of the kernel's
    /// lower-bound pass. Ordered-quiet, like the scalar `b <= x`.
    ///
    /// # Safety
    /// AVX2 must be available and `p` must point at 16 readable `f64`s.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn lower_bound_bits(b: f64, p: *const f64) -> u16 {
        let bv = _mm256_set1_pd(b);
        mask16(
            _mm256_cmp_pd::<_CMP_LE_OQ>(bv, _mm256_loadu_pd(p)),
            _mm256_cmp_pd::<_CMP_LE_OQ>(bv, _mm256_loadu_pd(p.add(4))),
            _mm256_cmp_pd::<_CMP_LE_OQ>(bv, _mm256_loadu_pd(p.add(8))),
            _mm256_cmp_pd::<_CMP_LE_OQ>(bv, _mm256_loadu_pd(p.add(12))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_path_precedence() {
        use KernelPath::*;
        // force_scalar always wins.
        assert_eq!(resolve_path(true, false, true), Scalar);
        assert_eq!(resolve_path(true, true, true), Scalar);
        // Env disable wins over detection.
        assert_eq!(resolve_path(false, true, true), Scalar);
        // Unsupported host falls back.
        assert_eq!(resolve_path(false, false, false), Scalar);
        // Only the unforced, enabled, supported case goes SIMD.
        assert_eq!(resolve_path(false, false, true), Simd);
    }

    #[test]
    fn counters_are_monotone() {
        let before = path_counts();
        note_block(KernelPath::Scalar);
        note_block(KernelPath::Simd);
        note_dot(KernelPath::Scalar);
        note_dot(KernelPath::Simd);
        let after = path_counts();
        assert!(after.scalar_blocks > before.scalar_blocks);
        assert!(after.simd_blocks > before.simd_blocks);
        assert!(after.scalar_dot_rows > before.scalar_dot_rows);
        assert!(after.simd_dot_rows > before.simd_dot_rows);
    }

    #[cfg(target_arch = "x86_64")]
    mod avx2_units {
        use super::super::avx2;
        use super::super::simd_supported;

        #[test]
        fn axpy_matches_scalar_bitwise() {
            if !simd_supported() {
                return;
            }
            let xs: Vec<f64> = (0..103).map(|i| (i as f64).sin() * 3.7).collect();
            let mut acc: Vec<f64> = (0..103).map(|i| (i as f64).cos() * 0.9).collect();
            let mut reference = acc.clone();
            let c = 1.37e-3;
            unsafe { avx2::axpy(c, &xs, &mut acc) };
            for (a, &x) in reference.iter_mut().zip(&xs) {
                *a += c * x;
            }
            for (p, (a, r)) in acc.iter().zip(&reference).enumerate() {
                assert_eq!(a.to_bits(), r.to_bits(), "element {p}");
            }
        }

        /// Expected mask built in point order, then mapped through the
        /// documented shuffle (`unshuffle16` is an involution, so it
        /// shuffles too).
        fn point_order_mask(pass: impl Fn(usize) -> bool) -> u16 {
            let mut bits = 0u16;
            for p in 0..16 {
                bits |= (pass(p) as u16) << p;
            }
            avx2::unshuffle16(bits)
        }

        #[test]
        fn unshuffle16_is_an_involution() {
            // Brute-force the documented mapping: the shuffle swaps bit
            // pairs (2,3)↔(4,5) within each byte.
            const POS: [u32; 8] = [0, 1, 4, 5, 2, 3, 6, 7];
            for bits in [0u16, 0xFFFF, 0x0001, 0x8000, 0x5A5A, 0xC813, 0x7FFE] {
                let mut expect = 0u16;
                for p in 0..16u32 {
                    if bits >> p & 1 == 1 {
                        expect |= 1 << (POS[p as usize % 8] + 8 * (p / 8));
                    }
                }
                assert_eq!(avx2::unshuffle16(bits), expect);
                assert_eq!(avx2::unshuffle16(avx2::unshuffle16(bits)), bits);
            }
        }

        #[test]
        fn compress_tile_keeps_exact_bits_in_order() {
            if !simd_supported() {
                return;
            }
            let src: Vec<f64> = (0..16).map(|i| (i as f64) * 0.1 - 1.3).collect();
            // Every nibble pattern appears across these masks.
            for bits in [0u16, 0xFFFF, 0x0001, 0x8000, 0x5A5A, 0xC813, 0x7FFE] {
                let expect: Vec<u64> = src
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| bits >> p & 1 == 1)
                    .map(|(_, x)| x.to_bits())
                    .collect();
                let mut dst = vec![0.0; expect.len() + 4];
                let w = unsafe { avx2::compress_tile(src.as_ptr(), bits, dst.as_mut_ptr()) };
                assert_eq!(w, expect.len(), "bits {bits:#06x}");
                for (p, e) in expect.iter().enumerate() {
                    assert_eq!(dst[p].to_bits(), *e, "bits {bits:#06x} survivor {p}");
                }
            }
        }

        #[test]
        fn lower_bound_bits_match_scalar() {
            if !simd_supported() {
                return;
            }
            let col: Vec<f64> = (0..16).map(|i| (i as f64) / 10.0).collect();
            let bits = unsafe { avx2::lower_bound_bits(1.15, col.as_ptr()) };
            assert_eq!(bits, point_order_mask(|p| 1.15 <= col[p]));
        }

        #[test]
        fn tile_cmp_le_matches_scalar() {
            if !simd_supported() {
                return;
            }
            let loads: Vec<f64> = (0..16).map(|i| (i as f64) * 0.07).collect();
            let acc = unsafe {
                let mut t = avx2::tile_zero();
                t = avx2::tile_axpy(t, 1.0, loads.as_ptr());
                t
            };
            let bits = unsafe { avx2::tile_cmp_le(acc, 0.5) };
            assert_eq!(bits, point_order_mask(|p| loads[p] <= 0.5));
        }
    }
}
