//! Streaming statistics used by the experiment harness and the simulator.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation σ/μ — the "normalized rate" spread the
    /// paper annotates on Figure 2. Zero when the mean is zero.
    pub fn coeff_of_variation(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean, `σ/√n` (0 with fewer than 2 samples).
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            // Sample (n−1) variance for the error of the mean.
            (self.m2 / (self.count - 1) as f64 / self.count as f64).sqrt()
        }
    }

    /// A normal-approximation 95% confidence interval for the mean.
    pub fn confidence95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error();
        (self.mean() - half, self.mean() + half)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile summary over a collected sample (used for latency
/// distributions reported by the simulator).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Percentiles {
    sorted: Vec<f64>,
}

impl Percentiles {
    /// Builds the summary from raw observations (takes ownership, sorts).
    /// NaN observations sort to the end (IEEE total order) instead of
    /// panicking, so a single bad sample cannot abort a whole run report.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(f64::total_cmp);
        Percentiles { sorted: samples }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// The `q`-quantile for `q ∈ [0,1]` by linear interpolation between
    /// closest ranks. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// Median (p50).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Maximum observation.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!(approx_eq(s.mean(), 5.0));
        assert!(approx_eq(s.std_dev(), 2.0));
        assert!(approx_eq(s.min(), 2.0));
        assert!(approx_eq(s.max(), 9.0));
        assert!(approx_eq(s.coeff_of_variation(), 0.4));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.coeff_of_variation(), 0.0);
    }

    #[test]
    fn std_error_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            large.push((i % 3) as f64);
        }
        assert!(large.std_error() < small.std_error());
        let (lo, hi) = large.confidence95();
        assert!(lo < large.mean() && large.mean() < hi);
        assert_eq!(OnlineStats::new().std_error(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!(approx_eq(left.mean(), whole.mean()));
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert!(approx_eq(a.mean(), before.mean()));

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert!(approx_eq(e.mean(), before.mean()));
    }

    #[test]
    fn percentiles_interpolate() {
        let p = Percentiles::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert!(approx_eq(p.quantile(0.0).unwrap(), 1.0));
        assert!(approx_eq(p.quantile(1.0).unwrap(), 4.0));
        assert!(approx_eq(p.median().unwrap(), 2.5));
        assert!(approx_eq(p.quantile(1.0 / 3.0).unwrap(), 2.0));
        assert!(approx_eq(p.mean().unwrap(), 2.5));
    }

    #[test]
    fn percentiles_empty() {
        let p = Percentiles::from_samples(vec![]);
        assert_eq!(p.quantile(0.5), None);
        assert_eq!(p.mean(), None);
        assert_eq!(p.max(), None);
    }
}
