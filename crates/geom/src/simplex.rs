//! Sampling and measuring the ideal feasible simplex.
//!
//! Theorem 1 of the ROD paper shows that the best any placement can do is
//! the *ideal feasible set* — in normalised coordinates, the standard
//! simplex `{x ≥ 0 : x₁ + … + x_d ≤ 1}`; in raw rate space, the simplex
//! under `l₁r₁ + … + l_d r_d = C_T` with volume `C_T^d / (d! ∏ l_k)`.
//!
//! The evaluation (§7.1) generates "workload points, all within the ideal
//! feasible set" and reports what fraction of them a plan can sustain; this
//! module provides the uniform-in-simplex point generation, both for
//! pseudo-random points and for low-discrepancy [`crate::qmc::HaltonSeq`] inputs.

use rand::Rng as _;

use crate::rng::Rng;
use crate::vector::Vector;

/// Exact volume of the simplex `{x ≥ 0 : Σ a_k x_k ≤ c}`:
/// `c^d / (d! ∏ a_k)`. This is the paper's `V(F*)` formula with `a = l`,
/// `c = C_T`. Panics when some `a_k ≤ 0` (the region would be unbounded).
pub fn simplex_volume(coeffs: &[f64], cap: f64) -> f64 {
    assert!(!coeffs.is_empty(), "zero-dimensional simplex");
    let d = coeffs.len();
    let mut v = 1.0;
    for (k, &a) in coeffs.iter().enumerate() {
        assert!(a > 0.0, "nonpositive coefficient {a} in simplex_volume");
        // Accumulate (cap / a_k) / (k+1) to keep intermediates well scaled.
        v *= (cap / a) / (k + 1) as f64;
        let _ = k;
    }
    debug_assert_eq!(d, coeffs.len());
    v
}

/// Volume of the unit `d`-ball, `π^{d/2} / Γ(d/2 + 1)`.
pub fn unit_ball_volume(d: usize) -> f64 {
    // Iterate the recurrence V_d = V_{d-1} · √π · Γ((d+1)/2)/Γ(d/2+1)
    // via the simpler two-step form V_d = V_{d-2} · 2π/d.
    match d {
        0 => 1.0,
        1 => 2.0,
        _ => unit_ball_volume(d - 2) * 2.0 * std::f64::consts::PI / d as f64,
    }
}

/// The Figure 9 lower bound: the ratio of feasible-set volume to ideal
/// simplex volume is at least the volume of the radius-`r` hypersphere's
/// non-negative-orthant portion over the standard simplex volume:
/// `(V_d · r^d / 2^d) · d!`. Valid for normalised systems (`r` measured
/// in the normalised space whose ideal simplex is `{x ≥ 0 : Σx ≤ 1}`).
pub fn hypersphere_ratio_bound(r: f64, d: usize) -> f64 {
    let mut factorial = 1.0;
    for k in 1..=d {
        factorial *= k as f64;
    }
    unit_ball_volume(d) * r.powi(d as i32) / 2f64.powi(d as i32) * factorial
}

/// Maps a point of the unit cube `[0,1)^d` to the standard simplex
/// `{x ≥ 0 : Σ x ≤ 1}` uniformly, via the order-statistics construction:
/// sort the coordinates of `(u₁,…,u_d)` and take consecutive gaps of
/// `(0, u_(1), …, u_(d))`. The map is measure-preserving, so it works for
/// both pseudo-random and low-discrepancy inputs (for the latter it yields
/// a stratified, if not provably low-discrepancy, point set — standard
/// practice for QMC over simplices).
pub fn unit_cube_to_simplex(u: &Vector) -> Vector {
    let mut sorted: Vec<f64> = u.as_slice().to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut prev = 0.0;
    let mut out = Vec::with_capacity(sorted.len());
    for &v in &sorted {
        out.push(v - prev);
        prev = v;
    }
    Vector::new(out)
}

/// Uniform sampler over the scaled simplex
/// `{R ≥ 0 : Σ a_k R_k ≤ c}` (the ideal feasible set in rate space).
#[derive(Clone, Debug)]
pub struct SimplexSampler {
    /// Per-axis scale factors: a standard-simplex point `x` maps to the
    /// rate point `r_k = x_k · c / a_k`.
    scale: Vec<f64>,
}

impl SimplexSampler {
    /// Sampler for `{R ≥ 0 : Σ coeffs_k R_k ≤ cap}`.
    ///
    /// A zero coefficient leaves the region unbounded along that axis (the
    /// input feeds only zero-load operators), so no finite sampler can
    /// cover it — but feasibility of any region built from the same load
    /// model is independent of that coordinate (every per-node coefficient
    /// is then also zero). Such axes are pinned to rate 0; samples stay
    /// uniform only over the load-carrying axes.
    pub fn new(coeffs: &[f64], cap: f64) -> Self {
        assert!(
            coeffs.iter().all(|&a| a.is_finite() && a >= 0.0),
            "negative or non-finite coefficient"
        );
        SimplexSampler {
            scale: coeffs
                .iter()
                .map(|&a| if a > 0.0 { cap / a } else { 0.0 })
                .collect(),
        }
    }

    /// Sampler for the standard simplex (all coefficients 1, cap 1).
    pub fn standard(dim: usize) -> Self {
        SimplexSampler {
            scale: vec![1.0; dim],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.scale.len()
    }

    /// Maps a unit-cube point (from a QMC sequence) into the simplex.
    pub fn map_cube_point(&self, u: &Vector) -> Vector {
        let x = unit_cube_to_simplex(u);
        Vector::new(
            x.as_slice()
                .iter()
                .zip(&self.scale)
                .map(|(xi, s)| xi * s)
                .collect(),
        )
    }

    /// Draws a pseudo-random point uniformly from the simplex.
    pub fn sample(&self, rng: &mut Rng) -> Vector {
        let u = Vector::new((0..self.dim()).map(|_| rng.gen::<f64>()).collect());
        self.map_cube_point(&u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::qmc::HaltonSeq;
    use crate::rng::seeded_rng;

    #[test]
    fn unit_ball_volumes() {
        use super::unit_ball_volume;
        assert!(approx_eq(unit_ball_volume(1), 2.0));
        assert!(approx_eq(unit_ball_volume(2), std::f64::consts::PI));
        assert!(approx_eq(
            unit_ball_volume(3),
            4.0 / 3.0 * std::f64::consts::PI
        ));
    }

    #[test]
    fn hypersphere_bound_sanity() {
        use super::hypersphere_ratio_bound;
        // d = 2: bound(r) = π r² / 4 · 2 = π r² / 2. At the ideal radius
        // r* = 1/√2 the inscribed quarter-disc covers π/4 of the triangle.
        let b = hypersphere_ratio_bound(1.0 / 2f64.sqrt(), 2);
        assert!(approx_eq(b, std::f64::consts::PI / 4.0));
        // The bound can never exceed 1 at the ideal radius.
        for d in 1..8 {
            let r_star = 1.0 / (d as f64).sqrt();
            let b = hypersphere_ratio_bound(r_star, d);
            assert!(b <= 1.0 + 1e-12, "d={d}: bound {b} > 1");
            assert!(b > 0.0);
        }
        // Monotone in r.
        assert!(hypersphere_ratio_bound(0.3, 3) > hypersphere_ratio_bound(0.2, 3));
    }

    #[test]
    fn standard_simplex_volumes() {
        assert!(approx_eq(simplex_volume(&[1.0], 1.0), 1.0));
        assert!(approx_eq(simplex_volume(&[1.0, 1.0], 1.0), 0.5));
        assert!(approx_eq(simplex_volume(&[1.0, 1.0, 1.0], 1.0), 1.0 / 6.0));
    }

    #[test]
    fn scaled_simplex_volume_matches_paper_formula() {
        // V = C_T^d / (d! * l1 * l2) for d=2: 2^2 / (2 * 10 * 11).
        assert!(approx_eq(
            simplex_volume(&[10.0, 11.0], 2.0),
            4.0 / (2.0 * 110.0)
        ));
    }

    #[test]
    fn cube_to_simplex_stays_in_simplex() {
        let mut rng = seeded_rng(3);
        let s = SimplexSampler::standard(4);
        for _ in 0..500 {
            let p = s.sample(&mut rng);
            assert!(p.is_nonnegative());
            assert!(p.sum() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn gaps_sum_to_max_coordinate() {
        let u = Vector::from([0.7, 0.2, 0.4]);
        let x = unit_cube_to_simplex(&u);
        assert!(approx_eq(x.sum(), 0.7));
        assert_eq!(x.dim(), 3);
        assert!(x.is_nonnegative());
    }

    #[test]
    fn scaled_points_respect_constraint() {
        let coeffs = [4.0, 9.0, 2.0];
        let cap = 7.0;
        let s = SimplexSampler::new(&coeffs, cap);
        let mut rng = seeded_rng(11);
        for _ in 0..500 {
            let p = s.sample(&mut rng);
            let lhs: f64 = p.as_slice().iter().zip(&coeffs).map(|(r, a)| r * a).sum();
            assert!(lhs <= cap + 1e-9);
            assert!(p.is_nonnegative());
        }
    }

    #[test]
    fn sampler_mean_matches_theory() {
        // Each coordinate of a uniform point in the standard d-simplex has
        // mean 1/(d+1).
        let d = 3;
        let s = SimplexSampler::standard(d);
        let mut rng = seeded_rng(5);
        let n = 40_000;
        let mut sums = vec![0.0; d];
        for _ in 0..n {
            let p = s.sample(&mut rng);
            for (acc, &x) in sums.iter_mut().zip(p.as_slice()) {
                *acc += x;
            }
        }
        for acc in sums {
            let mean = acc / n as f64;
            assert!(
                (mean - 1.0 / (d as f64 + 1.0)).abs() < 5e-3,
                "mean {mean} far from {}",
                1.0 / (d as f64 + 1.0)
            );
        }
    }

    #[test]
    fn halton_points_fill_simplex_uniformly() {
        // Volume check: fraction of simplex points with x0 <= 1/2 in the
        // standard 2-simplex is 1 - (1/2)^2 = 3/4.
        let s = SimplexSampler::standard(2);
        let mut seq = HaltonSeq::new(2);
        let n = 8192;
        let hits = (0..n)
            .filter(|_| {
                let p = s.map_cube_point(&seq.next_point());
                p[0] <= 0.5
            })
            .count();
        assert!((hits as f64 / n as f64 - 0.75).abs() < 5e-3);
    }
}
