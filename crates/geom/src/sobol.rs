//! Sobol' low-discrepancy sequences.
//!
//! A second QMC family alongside [`crate::qmc::HaltonSeq`]. Halton's
//! correlation artefacts grow with dimension; Sobol' points keep their
//! stratification properties further out, which matters for the d = 8
//! sweeps of the Figure 15 experiment. Implemented with Gray-code
//! updates and the Joe–Kuo direction numbers for the first 16
//! dimensions; validity of custom direction numbers (odd `m_i < 2^i`)
//! is checked at construction.

use rand::Rng as _;

use crate::rng::seeded_rng;
use crate::vector::Vector;

/// Bits of precision in the generated coordinates.
const BITS: u32 = 52;

/// Joe–Kuo primitive-polynomial parameters for dimensions 2..=16:
/// `(degree s, coefficient bits a, initial direction numbers m)`.
/// Dimension 1 is the van der Corput sequence (all `m_i = 1`).
const JOE_KUO: [(u32, u32, &[u64]); 15] = [
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
    (5, 4, &[1, 1, 5, 5, 5]),
    (5, 7, &[1, 1, 7, 11, 19]),
    (5, 11, &[1, 1, 5, 1, 1]),
    (5, 13, &[1, 1, 1, 3, 11]),
    (5, 14, &[1, 3, 5, 5, 31]),
    (6, 1, &[1, 3, 3, 9, 7, 49]),
    (6, 13, &[1, 1, 1, 15, 21, 21]),
    (6, 16, &[1, 3, 1, 13, 27, 49]),
];

/// A Sobol' sequence over `[0,1)^d` with optional Cranley–Patterson
/// random shift (for independent replicates across seeds).
#[derive(Clone, Debug)]
pub struct SobolSeq {
    dim: usize,
    /// Direction numbers `v[k][j]`, scaled into the top `BITS` bits.
    directions: Vec<[u64; BITS as usize]>,
    /// Current Gray-code state per dimension.
    state: Vec<u64>,
    index: u64,
    shift: Vec<f64>,
}

impl SobolSeq {
    /// Unshifted Sobol' sequence. Supports up to 16 dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(
            (1..=JOE_KUO.len() + 1).contains(&dim),
            "SobolSeq supports 1..={} dimensions, got {dim}",
            JOE_KUO.len() + 1
        );
        let mut directions = Vec::with_capacity(dim);
        // Dimension 1: v_j = 2^(BITS - j - 1) (van der Corput in base 2).
        let mut first = [0u64; BITS as usize];
        for (j, v) in first.iter_mut().enumerate() {
            *v = 1u64 << (BITS - 1 - j as u32);
        }
        directions.push(first);
        for &(s, a, m_init) in JOE_KUO.iter().take(dim - 1) {
            directions.push(direction_numbers(s, a, m_init));
        }
        SobolSeq {
            dim,
            directions,
            state: vec![0; dim],
            index: 0,
            shift: vec![0.0; dim],
        }
    }

    /// Randomly shifted sequence.
    pub fn shifted(dim: usize, seed: u64) -> Self {
        let mut seq = SobolSeq::new(dim);
        let mut rng = seeded_rng(seed);
        for s in &mut seq.shift {
            *s = rng.gen::<f64>();
        }
        seq
    }

    /// Dimension of generated points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Next point (Gray-code update: flip the direction of the lowest
    /// zero bit of the running index).
    pub fn next_point(&mut self) -> Vector {
        // Skip the origin: advance before emitting.
        let c = self.index.trailing_ones() as usize; // lowest zero bit of index
        self.index += 1;
        let scale = 1.0 / (1u64 << BITS) as f64;
        let mut out = Vec::with_capacity(self.dim);
        for k in 0..self.dim {
            self.state[k] ^= self.directions[k][c.min(BITS as usize - 1)];
            let v = self.state[k] as f64 * scale + self.shift[k];
            out.push(v - v.floor());
        }
        Vector::new(out)
    }

    /// Collects the next `n` points.
    pub fn take_points(&mut self, n: usize) -> Vec<Vector> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

impl Iterator for SobolSeq {
    type Item = Vector;
    fn next(&mut self) -> Option<Vector> {
        Some(self.next_point())
    }
}

/// Expands initial direction numbers via the primitive-polynomial
/// recurrence into `BITS` scaled direction numbers.
fn direction_numbers(s: u32, a: u32, m_init: &[u64]) -> [u64; BITS as usize] {
    assert_eq!(m_init.len(), s as usize, "need s initial direction numbers");
    let mut m = vec![0u64; BITS as usize];
    for (i, &mi) in m_init.iter().enumerate() {
        assert!(mi % 2 == 1, "direction number m_{i} must be odd");
        assert!(mi < (2u64 << i), "direction number m_{i} too large");
        m[i] = mi;
    }
    for j in s as usize..BITS as usize {
        // m_j = 2^s m_{j-s} XOR m_{j-s} XOR sum of a-selected terms.
        let mut val = (m[j - s as usize] << s) ^ m[j - s as usize];
        for k in 1..s {
            if (a >> (s - 1 - k)) & 1 == 1 {
                val ^= m[j - k as usize] << k;
            }
        }
        m[j] = val;
    }
    let mut v = [0u64; BITS as usize];
    for (j, entry) in v.iter_mut().enumerate() {
        *entry = m[j] << (BITS - 1 - j as u32);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_dimension_is_van_der_corput() {
        let mut seq = SobolSeq::new(1);
        // 0.5, 0.75, 0.25, 0.375 ... (Gray-code order of base-2 radical
        // inverses, origin skipped).
        let first: Vec<f64> = seq.take_points(4).iter().map(|p| p[0]).collect();
        assert_eq!(first[0], 0.5);
        assert_eq!(first[1], 0.75);
        assert_eq!(first[2], 0.25);
        assert_eq!(first[3], 0.375);
    }

    #[test]
    fn points_in_unit_cube() {
        let mut seq = SobolSeq::shifted(8, 3);
        for _ in 0..500 {
            let p = seq.next_point();
            assert_eq!(p.dim(), 8);
            for &x in p.as_slice() {
                assert!((0.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn dyadic_stratification_per_dimension() {
        // The first 2^k points have exactly 2^(k-3) points in each of the
        // 8 dyadic intervals of every coordinate — the (t,m,s)-net
        // property that makes Sobol converge fast.
        let dim = 6;
        let mut seq = SobolSeq::new(dim);
        let n = 256;
        // The net property holds for indices 0..2^k; we skip the origin
        // (index 0), so count it back in by hand.
        let mut points = vec![Vector::zeros(dim)];
        points.extend(seq.take_points(n - 1));
        for k in 0..dim {
            let mut counts = [0usize; 8];
            for p in &points {
                counts[(p[k] * 8.0) as usize % 8] += 1;
            }
            for (bin, &c) in counts.iter().enumerate() {
                assert_eq!(c, n / 8, "dim {k} bin {bin}: {counts:?}");
            }
        }
    }

    #[test]
    fn estimates_cube_volume() {
        // Fraction of [0,1]^3 with x+y+z <= 1 is 1/6.
        let mut seq = SobolSeq::new(3);
        let n = 16_384;
        let hits = seq
            .take_points(n)
            .iter()
            .filter(|p| p[0] + p[1] + p[2] <= 1.0)
            .count();
        let est = hits as f64 / n as f64;
        assert!((est - 1.0 / 6.0).abs() < 2e-3, "estimate {est}");
    }

    #[test]
    fn high_dimension_pairwise_uniformity() {
        // 2-D projections of dims (6, 7): quadrant counts balanced.
        let mut seq = SobolSeq::new(8);
        let n = 4096;
        let mut quad = [0usize; 4];
        for p in seq.take_points(n) {
            let q = (p[6] >= 0.5) as usize * 2 + (p[7] >= 0.5) as usize;
            quad[q] += 1;
        }
        for &c in &quad {
            assert!(
                (c as f64 - n as f64 / 4.0).abs() < n as f64 * 0.02,
                "{quad:?}"
            );
        }
    }

    #[test]
    fn shifted_sequences_differ_by_seed() {
        let a = SobolSeq::shifted(2, 1).next_point();
        let b = SobolSeq::shifted(2, 2).next_point();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn too_many_dimensions_panics() {
        let _ = SobolSeq::new(17);
    }
}
