//! A small dense `f64` vector.
//!
//! Rate vectors `R`, capacity vectors `C`, load-coefficient rows and weight
//! rows in the ROD formulation all have between 2 and a few dozen entries,
//! so a thin wrapper over `Vec<f64>` with the handful of operations the
//! algorithms need is the right tool — no SIMD, no generic dimension
//! gymnastics.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A dense vector of `f64` components.
#[derive(Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Vector(pub Vec<f64>);

impl Vector {
    /// Creates a vector from components.
    pub fn new(components: Vec<f64>) -> Self {
        Vector(components)
    }

    /// Creates a zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Vector(vec![0.0; dim])
    }

    /// Creates a vector of all ones of dimension `dim`.
    pub fn ones(dim: usize) -> Self {
        Vector(vec![1.0; dim])
    }

    /// Dimension (number of components).
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// True when the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Component slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutable component slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Dot product. Panics if dimensions differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dot product of vectors with different dimensions"
        );
        self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (L2) norm. This is the norm the ROD paper uses both to
    /// order operators (Phase 1) and to measure plane distance `1/‖W_i‖₂`.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Sum of components.
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Largest component (`-inf` for the empty vector).
    pub fn max(&self) -> f64 {
        self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest component (`+inf` for the empty vector).
    pub fn min(&self) -> f64 {
        self.0.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Component-wise scaling by a scalar.
    pub fn scaled(&self, factor: f64) -> Vector {
        Vector(self.0.iter().map(|a| a * factor).collect())
    }

    /// Component-wise product (Hadamard).
    pub fn hadamard(&self, other: &Vector) -> Vector {
        assert_eq!(self.dim(), other.dim());
        Vector(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a * b)
                .collect(),
        )
    }

    /// True when every component is ≥ 0.
    pub fn is_nonnegative(&self) -> bool {
        self.0.iter().all(|&a| a >= 0.0)
    }

    /// True when `self[k] <= other[k]` for every `k` (the component-wise
    /// partial order used to state feasibility monotonicity).
    pub fn le(&self, other: &Vector) -> bool {
        assert_eq!(self.dim(), other.dim());
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector{:?}", self.0)
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector(v)
    }
}

impl From<&[f64]> for Vector {
    fn from(v: &[f64]) -> Self {
        Vector(v.to_vec())
    }
}

impl<const N: usize> From<[f64; N]> for Vector {
    fn from(v: [f64; N]) -> Self {
        Vector(v.to_vec())
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, other: &Vector) -> Vector {
        assert_eq!(self.dim(), other.dim());
        Vector(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, other: &Vector) -> Vector {
        assert_eq!(self.dim(), other.dim());
        Vector(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, other: &Vector) {
        assert_eq!(self.dim(), other.dim());
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, factor: f64) -> Vector {
        self.scaled(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dot_and_norm() {
        let a = Vector::from([3.0, 4.0]);
        assert!(approx_eq(a.norm(), 5.0));
        let b = Vector::from([1.0, 2.0]);
        assert!(approx_eq(a.dot(&b), 11.0));
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from([1.0, 2.0]);
        let b = Vector::from([10.0, 20.0]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0]);
        assert_eq!(a.scaled(3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[10.0, 40.0]);
    }

    #[test]
    fn aggregates() {
        let a = Vector::from([4.0, -1.0, 2.5]);
        assert!(approx_eq(a.sum(), 5.5));
        assert!(approx_eq(a.max(), 4.0));
        assert!(approx_eq(a.min(), -1.0));
        assert!(!a.is_nonnegative());
        assert!(Vector::zeros(3).is_nonnegative());
    }

    #[test]
    fn partial_order() {
        let lo = Vector::from([1.0, 1.0]);
        let hi = Vector::from([1.0, 2.0]);
        assert!(lo.le(&hi));
        assert!(!hi.le(&lo));
        assert!(lo.le(&lo));
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn dot_dimension_mismatch_panics() {
        let _ = Vector::from([1.0]).dot(&Vector::from([1.0, 2.0]));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut acc = Vector::zeros(2);
        acc += &Vector::from([1.0, 2.0]);
        acc += &Vector::from([0.5, 0.5]);
        assert_eq!(acc.as_slice(), &[1.5, 2.5]);
    }
}
