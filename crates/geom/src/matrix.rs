//! A small dense row-major `f64` matrix.
//!
//! Used for the operator load-coefficient matrix `L^o` (m×d), the node
//! load-coefficient matrix `L^n = A·L^o` (n×d), the 0/1 allocation matrix
//! `A` (n×m) and the normalised weight matrix `W` (n×d) of the paper.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::vector::Vector;

/// Dense row-major matrix.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a nested slice of rows. All rows must have the
    /// same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` copied into an owned [`Vector`].
    pub fn row_vector(&self, i: usize) -> Vector {
        Vector::from(self.row(i))
    }

    /// Column `k` copied into an owned [`Vector`].
    pub fn col_vector(&self, k: usize) -> Vector {
        assert!(k < self.cols, "col {k} out of bounds ({} cols)", self.cols);
        Vector::new((0..self.rows).map(|i| self[(i, k)]).collect())
    }

    /// Sum of column `k`. For a load-coefficient matrix this is the total
    /// load coefficient `l_k` of input stream `I_k` (paper, Table 1).
    pub fn col_sum(&self, k: usize) -> f64 {
        (0..self.rows).map(|i| self[(i, k)]).sum()
    }

    /// All column sums as a vector.
    pub fn col_sums(&self) -> Vector {
        Vector::new((0..self.cols).map(|k| self.col_sum(k)).collect())
    }

    /// Matrix × matrix product. Used for `L^n = A · L^o`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == 0.0 {
                    continue;
                }
                for k in 0..other.cols {
                    out[(i, k)] += a * other[(j, k)];
                }
            }
        }
        out
    }

    /// Matrix × vector product.
    pub fn matvec(&self, v: &Vector) -> Vector {
        assert_eq!(self.cols, v.dim(), "matvec dimension mismatch");
        Vector::new(
            (0..self.rows)
                .map(|i| {
                    self.row(i)
                        .iter()
                        .zip(v.as_slice())
                        .map(|(a, b)| a * b)
                        .sum()
                })
                .collect(),
        )
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(2, 1)], 6.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col_vector(0).as_slice(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn col_sums_match_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.col_sums().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn matmul_identity() {
        let id = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(id.matmul(&m), m);
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn matmul_allocation_example() {
        // Example 2 of the paper, Plan (a): operators {o1,o4} on N1,
        // {o2,o3} on N2. L^o rows: (4,0),(6,0),(0,9),(0,2).
        let lo = Matrix::from_rows(&[&[4.0, 0.0], &[6.0, 0.0], &[0.0, 9.0], &[0.0, 2.0]]);
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 1.0], &[0.0, 1.0, 1.0, 0.0]]);
        let ln = a.matmul(&lo);
        assert_eq!(ln.row(0), &[4.0, 2.0]);
        assert_eq!(ln.row(1), &[6.0, 9.0]);
        // Column sums are invariant under allocation.
        assert_eq!(ln.col_sums().as_slice(), lo.col_sums().as_slice());
    }

    #[test]
    fn matvec_matches_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = Vector::from([10.0, 1.0]);
        let out = m.matvec(&v);
        assert!(approx_eq(out[0], 12.0));
        assert!(approx_eq(out[1], 34.0));
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
