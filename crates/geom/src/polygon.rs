//! Exact two-dimensional feasible-set geometry.
//!
//! For `d = 2` input streams the feasible set
//! `{(r₁,r₂) ≥ 0 : L^n R ≤ C}` is a convex polygon: the non-negative
//! quadrant clipped by one half-plane per node. The paper draws these
//! polygons in Figures 5 and 6 for the three plans of Example 2; we compute
//! their areas in closed form with Sutherland–Hodgman clipping plus the
//! shoelace formula. This also serves as the ground truth against which the
//! quasi-Monte-Carlo estimator of [`crate::volume`] is validated.

use serde::{Deserialize, Serialize};

use crate::hyperplane::Hyperplane;
use crate::EPS;

/// A point in the plane.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }
}

/// A convex polygon given by its vertices in counter-clockwise order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point2>,
}

impl Polygon {
    /// Creates a polygon from CCW vertices. An empty vertex list models the
    /// empty set (area zero).
    pub fn new(vertices: Vec<Point2>) -> Self {
        Polygon { vertices }
    }

    /// Axis-aligned box `[0,w] × [0,h]` — the starting region before
    /// clipping by node hyperplanes.
    pub fn quadrant_box(w: f64, h: f64) -> Self {
        Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(w, 0.0),
            Point2::new(w, h),
            Point2::new(0.0, h),
        ])
    }

    /// The vertices (CCW).
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// True when the polygon is empty (or degenerate with fewer than three
    /// vertices).
    pub fn is_empty(&self) -> bool {
        self.vertices.len() < 3
    }

    /// Area by the shoelace formula. Zero for degenerate polygons.
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let n = self.vertices.len();
        let mut twice = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            twice += a.x * b.y - b.x * a.y;
        }
        twice.abs() / 2.0
    }

    /// Clips the polygon to the half-plane `a·x + b·y ≤ c`
    /// (Sutherland–Hodgman). Returns the clipped polygon, possibly empty.
    pub fn clip_halfplane(&self, a: f64, b: f64, c: f64) -> Polygon {
        if self.vertices.is_empty() {
            return self.clone();
        }
        let inside = |p: &Point2| a * p.x + b * p.y <= c + EPS;
        let n = self.vertices.len();
        let mut out = Vec::with_capacity(n + 1);
        for i in 0..n {
            let cur = self.vertices[i];
            let nxt = self.vertices[(i + 1) % n];
            let cur_in = inside(&cur);
            let nxt_in = inside(&nxt);
            if cur_in {
                out.push(cur);
            }
            if cur_in != nxt_in {
                // Edge crosses the boundary line a·x + b·y = c; find t so
                // that cur + t (nxt - cur) lies on it.
                let denom = a * (nxt.x - cur.x) + b * (nxt.y - cur.y);
                if denom.abs() > EPS {
                    let t = (c - a * cur.x - b * cur.y) / denom;
                    let t = t.clamp(0.0, 1.0);
                    out.push(Point2::new(
                        cur.x + t * (nxt.x - cur.x),
                        cur.y + t * (nxt.y - cur.y),
                    ));
                }
            }
        }
        Polygon::new(out)
    }

    /// Clips by a 2-D [`Hyperplane`] interpreted as `normal·x ≤ offset`.
    pub fn clip_hyperplane(&self, h: &Hyperplane) -> Polygon {
        assert_eq!(h.dim(), 2, "polygon clipping is two-dimensional");
        self.clip_halfplane(h.normal[0], h.normal[1], h.offset)
    }
}

/// Exact area of the 2-D feasible set `{R ≥ 0 : L^n R ≤ C}` where row `i`
/// of `constraints` is the pair `(normal, capacity)` of node `i`.
///
/// The region is unbounded when some stream loads no node; callers pass a
/// `bound` box large enough to contain every axis intercept (the
/// [`feasible_area`] helper derives one automatically).
pub fn clipped_area(constraints: &[Hyperplane], bound: f64) -> f64 {
    let mut poly = Polygon::quadrant_box(bound, bound);
    for h in constraints {
        poly = poly.clip_hyperplane(h);
        if poly.is_empty() {
            return 0.0;
        }
    }
    poly.area()
}

/// Exact area of a 2-D feasible set with an automatically derived bounding
/// box: 1 + the largest finite axis intercept of any constraint. Returns
/// `None` when the feasible set is unbounded (some axis is unconstrained by
/// every hyperplane), because its area is infinite.
pub fn feasible_area(constraints: &[Hyperplane]) -> Option<f64> {
    for k in 0..2 {
        let bounded = constraints.iter().any(|h| h.normal[k] > 0.0);
        if !bounded {
            return None;
        }
    }
    let mut max_intercept: f64 = 0.0;
    for h in constraints {
        for k in 0..2 {
            let d = h.axis_distance(k);
            if d.is_finite() {
                max_intercept = max_intercept.max(d);
            }
        }
    }
    Some(clipped_area(constraints, max_intercept + 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::vector::Vector;

    fn h(a: f64, b: f64, c: f64) -> Hyperplane {
        Hyperplane::new(Vector::from([a, b]), c)
    }

    #[test]
    fn unit_box_area() {
        assert!(approx_eq(Polygon::quadrant_box(1.0, 1.0).area(), 1.0));
        assert!(approx_eq(Polygon::quadrant_box(3.0, 2.0).area(), 6.0));
    }

    #[test]
    fn clip_to_triangle() {
        // Unit box clipped by x + y <= 1 → right triangle of area 1/2.
        let poly = Polygon::quadrant_box(1.0, 1.0).clip_halfplane(1.0, 1.0, 1.0);
        assert!(approx_eq(poly.area(), 0.5));
    }

    #[test]
    fn clip_away_everything() {
        let poly = Polygon::quadrant_box(1.0, 1.0).clip_halfplane(1.0, 0.0, -1.0);
        assert!(poly.is_empty());
        assert!(approx_eq(poly.area(), 0.0));
    }

    #[test]
    fn clip_is_monotone() {
        let base = Polygon::quadrant_box(2.0, 2.0);
        let once = base.clip_halfplane(1.0, 1.0, 2.0);
        let twice = once.clip_halfplane(1.0, 0.0, 1.0);
        assert!(twice.area() <= once.area() + EPS);
        assert!(once.area() <= base.area() + EPS);
    }

    #[test]
    fn example2_plan_areas() {
        // Paper Example 2 / Figure 5 with C1 = C2 = C. Take C = 1.
        // Plan (a): N1 has (4,2), N2 has (6,9).
        //   Feasible: 4r1+2r2<=1, 6r1+9r2<=1.
        // Plan (b): N1 has (4,9), N2 has (6,2).
        // Plan (c): N1 has (10,0), N2 has (0,11).
        let area_a = feasible_area(&[h(4.0, 2.0, 1.0), h(6.0, 9.0, 1.0)]).unwrap();
        let area_b = feasible_area(&[h(4.0, 9.0, 1.0), h(6.0, 2.0, 1.0)]).unwrap();
        let area_c = feasible_area(&[h(10.0, 0.0, 1.0), h(0.0, 11.0, 1.0)]).unwrap();
        // Plan (c) is a rectangle: (1/10)·(1/11).
        assert!(approx_eq(area_c, 1.0 / 110.0));
        // All three are below the ideal triangle area 1/2 · (2/10) · (2/11)
        // with C_T = 2 (ideal: 10 r1 + 11 r2 <= 2).
        let ideal = 0.5 * (2.0 / 10.0) * (2.0 / 11.0);
        for a in [area_a, area_b, area_c] {
            assert!(a <= ideal + EPS, "plan area {a} exceeds ideal {ideal}");
            assert!(a > 0.0);
        }
    }

    #[test]
    fn unbounded_region_detected() {
        // Only r1 is constrained → infinite area.
        assert_eq!(feasible_area(&[h(1.0, 0.0, 1.0)]), None);
    }

    #[test]
    fn intersection_area_two_triangles() {
        // x+2y<=2 and 2x+y<=2 over the quadrant: symmetric kite with
        // vertices (0,0),(1,0),(2/3,2/3),(0,1); area = 2/3.
        let area = feasible_area(&[h(1.0, 2.0, 2.0), h(2.0, 1.0, 2.0)]).unwrap();
        assert!(approx_eq(area, 2.0 / 3.0));
    }
}
