//! Ablation: the Class I / Class II node distinction.
//!
//! ROD's assignment step first looks for *Class I* nodes (candidate
//! hyperplane above the ideal hyperplane — the MMAD-following move) and
//! only falls back to the MMPD pick among Class II nodes. This ablation
//! compares full ROD against the pure-MMPD greedy (always max candidate
//! plane distance) in feasible-set quality, and times both.

use criterion::{criterion_group, criterion_main, Criterion};

use rod_core::allocation::PlanEvaluator;
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::metrics::{feasible_ratio, make_estimator};
use rod_core::rod::{RodOptions, RodPlanner};
use rod_workloads::RandomTreeGenerator;

fn quality_report() {
    println!("\n--- class-structure ablation: mean feasible-set ratio over 6 graphs ---");
    let cluster = Cluster::homogeneous(6, 1.0);
    for use_class_one in [true, false] {
        let mut sum = 0.0;
        let graphs = 6;
        for g in 0..graphs {
            let graph = RandomTreeGenerator::paper_default(4, 24).generate(100 + g);
            let model = LoadModel::derive(&graph).unwrap();
            let ev = PlanEvaluator::new(&model, &cluster);
            let estimator = make_estimator(&model, &cluster, 20_000, g);
            let plan = RodPlanner::with_options(RodOptions {
                use_class_one,
                ..RodOptions::default()
            })
            .place(&model, &cluster)
            .unwrap();
            sum += feasible_ratio(&ev, &estimator, &plan.allocation);
        }
        let label = if use_class_one {
            "with Class I (full ROD)"
        } else {
            "pure MMPD"
        };
        println!("{label}: {:.4}", sum / graphs as f64);
    }
}

fn bench_classes(c: &mut Criterion) {
    quality_report();
    let graph = RandomTreeGenerator::paper_default(5, 40).generate(11);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(6, 1.0);
    let mut group = c.benchmark_group("ablation_classes");
    for use_class_one in [true, false] {
        let name = if use_class_one {
            "with_class_one"
        } else {
            "pure_mmpd"
        };
        group.bench_function(name, |b| {
            let planner = RodPlanner::with_options(RodOptions {
                use_class_one,
                ..RodOptions::default()
            });
            b.iter(|| planner.place(&model, &cluster).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classes);
criterion_main!(benches);
