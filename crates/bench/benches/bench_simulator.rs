//! Criterion bench: discrete-event simulator throughput.
//!
//! The latency and probing experiments run thousands of simulated
//! seconds; this bench tracks events-per-second-ish cost on a fixed
//! workload so regressions in the engine's hot path (event heap, node
//! dispatch) are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::rod::RodPlanner;
use rod_sim::{Simulation, SimulationConfig, SourceSpec};
use rod_workloads::RandomTreeGenerator;

fn bench_simulation(c: &mut Criterion) {
    let inputs = 3;
    let graph = RandomTreeGenerator::paper_default(inputs, 10).generate(7);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;

    let mut group = c.benchmark_group("simulator_horizon");
    group.sample_size(10);
    for &horizon in &[5.0f64, 20.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(horizon as u64),
            &horizon,
            |b, &h| {
                b.iter(|| {
                    Simulation::new(
                        &graph,
                        &alloc,
                        &cluster,
                        vec![SourceSpec::ConstantRate(100.0); inputs],
                        SimulationConfig {
                            horizon: h,
                            warmup: h * 0.2,
                            seed: 1,
                            ..SimulationConfig::default()
                        },
                    )
                    .run()
                });
            },
        );
    }
    group.finish();
}

fn bench_join_simulation(c: &mut Criterion) {
    use rod_workloads::joins::{join_pairs, JoinConfig};
    let graph = join_pairs(&JoinConfig::default(), 3);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let mut group = c.benchmark_group("simulator_joins");
    group.sample_size(10);
    group.bench_function("join_workload_10s", |b| {
        b.iter(|| {
            Simulation::new(
                &graph,
                &alloc,
                &cluster,
                vec![SourceSpec::ConstantRate(30.0); 4],
                SimulationConfig {
                    horizon: 10.0,
                    warmup: 2.0,
                    seed: 2,
                    ..SimulationConfig::default()
                },
            )
            .run()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_join_simulation);
criterion_main!(benches);
