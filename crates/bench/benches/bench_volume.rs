//! Criterion bench: quasi-Monte-Carlo feasible-set volume estimation.
//!
//! Volume estimation dominates the experiment harness (every plan of
//! every sweep is scored against tens of thousands of points), so its
//! throughput matters. Tracks cost vs sample count and vs dimension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rod_core::allocation::PlanEvaluator;
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::metrics::make_estimator;
use rod_core::rod::RodPlanner;
use rod_workloads::RandomTreeGenerator;

fn bench_samples(c: &mut Criterion) {
    let graph = RandomTreeGenerator::paper_default(5, 20).generate(4);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(5, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let region = ev.feasible_region(&alloc);

    let mut group = c.benchmark_group("volume_vs_samples");
    for &samples in &[5_000usize, 20_000, 80_000] {
        let estimator = make_estimator(&model, &cluster, samples, 1);
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, _| {
            b.iter(|| estimator.estimate(&region));
        });
    }
    group.finish();
}

fn bench_dimensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("volume_vs_dimension");
    for &d in &[2usize, 5, 8] {
        let graph = RandomTreeGenerator::paper_default(d, 16).generate(5);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(5, 1.0);
        let ev = PlanEvaluator::new(&model, &cluster);
        let alloc = RodPlanner::new()
            .place(&model, &cluster)
            .unwrap()
            .allocation;
        let region = ev.feasible_region(&alloc);
        let estimator = make_estimator(&model, &cluster, 20_000, 2);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| estimator.estimate(&region));
        });
    }
    group.finish();
}

/// Batched [`FeasibilityKernel`](rod_geom::FeasibilityKernel) path vs the
/// reference per-point scalar walk, on the same estimator and region. The
/// two are asserted bit-identical up front, so this group only ever
/// compares equivalent computations.
fn bench_kernel_vs_scalar(c: &mut Criterion) {
    let graph = RandomTreeGenerator::paper_default(6, 16).generate(5);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(16, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let region = ev.feasible_region(&alloc);
    let estimator = make_estimator(&model, &cluster, 80_000, 1);
    assert_eq!(
        estimator.estimate_scalar(&region).ratio_to_ideal.to_bits(),
        estimator
            .estimate_with_threads(&region, 1)
            .ratio_to_ideal
            .to_bits(),
        "batched kernel diverged from the scalar path"
    );

    let mut group = c.benchmark_group("kernel_vs_scalar");
    group.bench_function("scalar", |b| {
        b.iter(|| estimator.estimate_scalar(&region));
    });
    group.bench_function("kernel", |b| {
        b.iter(|| estimator.estimate_with_threads(&region, 1));
    });
    group.finish();
}

/// Persistent-pool parallel estimation vs the retired per-call
/// `thread::scope` dispatch it replaced. Both partition the point range
/// with [`rod_pool::chunks`] and sum per-range counts in range order, so
/// they are exact — the difference under the timer is purely thread
/// startup: the scope path pays a spawn + join per estimate, the pool
/// path reuses workers that already exist.
fn bench_pool_vs_scope(c: &mut Criterion) {
    const THREADS: usize = 4;
    let graph = RandomTreeGenerator::paper_default(6, 16).generate(5);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(16, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let region = ev.feasible_region(&alloc);
    let estimator = make_estimator(&model, &cluster, 80_000, 1);
    let kernel = rod_geom::FeasibilityKernel::from_batch(estimator.batch().clone());
    let ranges = rod_pool::chunks(estimator.points().len(), THREADS);

    let scope_count = |region: &rod_geom::FeasibleRegion| {
        std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|r| {
                    let kernel = &kernel;
                    s.spawn(move || kernel.count_feasible_range(region, r.start, r.end))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
    };
    assert_eq!(
        scope_count(&region),
        kernel.count_feasible(&region),
        "scope reference diverged from the serial count"
    );
    assert_eq!(
        estimator
            .estimate_with_threads(&region, THREADS)
            .ratio_to_ideal
            .to_bits(),
        estimator
            .estimate_with_threads(&region, 1)
            .ratio_to_ideal
            .to_bits(),
        "pooled estimate diverged from serial"
    );

    let mut group = c.benchmark_group("pool_vs_scope");
    group.bench_function("pool", |b| {
        b.iter(|| estimator.estimate_with_threads(&region, THREADS));
    });
    group.bench_function("scope", |b| {
        b.iter(|| scope_count(&region));
    });
    group.finish();
}

fn bench_point_generation(c: &mut Criterion) {
    c.bench_function("estimator_build_20k_d5", |b| {
        let graph = RandomTreeGenerator::paper_default(5, 20).generate(6);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(5, 1.0);
        b.iter(|| make_estimator(&model, &cluster, 20_000, 3));
    });
}

criterion_group!(
    benches,
    bench_samples,
    bench_dimensions,
    bench_kernel_vs_scalar,
    bench_pool_vs_scope,
    bench_point_generation
);
criterion_main!(benches);
