//! Criterion bench: incremental plan evaluation vs full recompute.
//!
//! The evaluation layer's promise is that moving one operator (or
//! scoring one candidate) touches a single node row in O(d) instead of
//! rebuilding the whole n×d weight matrix. This bench pins that down on
//! a 200-operator tree: `incremental` applies an unassign/assign pair
//! through `IncrementalPlanEval`, `from_scratch` reassigns on a plain
//! `Allocation` and rebuilds `WeightMatrix` the way callers did before
//! the layer existed. Both read the min plane distance so neither side
//! can skip the answer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rod_core::allocation::WeightMatrix;
use rod_core::cluster::Cluster;
use rod_core::eval::IncrementalPlanEval;
use rod_core::ids::{NodeId, OperatorId};
use rod_core::load_model::LoadModel;
use rod_core::rod::RodPlanner;
use rod_workloads::RandomTreeGenerator;

fn bench_single_move(c: &mut Criterion) {
    let graph = RandomTreeGenerator::paper_default(5, 40).generate(4);
    let model = LoadModel::derive(&graph).unwrap();
    let mut group = c.benchmark_group("single_move_rescore");
    for &n in &[4usize, 16, 64] {
        let cluster = Cluster::homogeneous(n, 1.0);
        let alloc = RodPlanner::new()
            .place(&model, &cluster)
            .unwrap()
            .allocation;
        let op = OperatorId(0);

        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            let mut eval = IncrementalPlanEval::from_allocation(&model, &cluster, &alloc);
            b.iter(|| {
                let home = eval.allocation().node_of(op).unwrap();
                let next = NodeId((home.0 + 1) % n);
                eval.unassign(op, home);
                eval.assign(op, next);
                eval.min_plane_distance()
            });
        });

        group.bench_with_input(BenchmarkId::new("from_scratch", n), &n, |b, _| {
            let mut moving = alloc.clone();
            b.iter(|| {
                let home = moving.node_of(op).unwrap();
                moving.assign(op, NodeId((home.0 + 1) % n));
                let w = WeightMatrix::new(
                    &moving.node_load_matrix(model.lo()),
                    model.total_coeffs(),
                    &cluster,
                );
                w.min_plane_distance()
            });
        });
    }
    group.finish();
}

fn bench_candidate_scoring(c: &mut Criterion) {
    let graph = RandomTreeGenerator::paper_default(5, 40).generate(5);
    let model = LoadModel::derive(&graph).unwrap();
    let n = 16;
    let cluster = Cluster::homogeneous(n, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let op = OperatorId(7);
    let mut group = c.benchmark_group("score_one_candidate");

    group.bench_function("incremental", |b| {
        let mut eval = IncrementalPlanEval::from_allocation(&model, &cluster, &alloc);
        let home = eval.allocation().node_of(op).unwrap();
        eval.unassign(op, home);
        b.iter(|| {
            (0..n)
                .map(|i| eval.score_candidate(op, NodeId(i)).plane_distance)
                .fold(f64::INFINITY, f64::min)
        });
        eval.assign(op, home);
    });

    group.bench_function("from_scratch", |b| {
        b.iter(|| {
            (0..n)
                .map(|i| {
                    let mut probe = alloc.clone();
                    probe.assign(op, NodeId(i));
                    WeightMatrix::new(
                        &probe.node_load_matrix(model.lo()),
                        model.total_coeffs(),
                        &cluster,
                    )
                    .plane_distance(NodeId(i))
                })
                .fold(f64::INFINITY, f64::min)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_single_move, bench_candidate_scoring);
criterion_main!(benches);
