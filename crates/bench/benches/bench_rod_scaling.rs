//! Criterion bench: ROD planning time vs problem size.
//!
//! ROD is meant as a deploy-time (or even design-time) algorithm, but it
//! must stay fast enough to re-run whenever the query network changes.
//! This bench tracks its wall-clock scaling in the number of operators
//! and nodes (the inner loop is O(m·n·d) plus the O(m log m) sort).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::rod::RodPlanner;
use rod_workloads::RandomTreeGenerator;

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("rod_vs_operators");
    for &m in &[50usize, 100, 200, 400] {
        let graph = RandomTreeGenerator::paper_default(5, m / 5).generate(1);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(8, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| RodPlanner::new().place(&model, &cluster).unwrap());
        });
    }
    group.finish();
}

fn bench_nodes(c: &mut Criterion) {
    let mut group = c.benchmark_group("rod_vs_nodes");
    let graph = RandomTreeGenerator::paper_default(5, 40).generate(2);
    let model = LoadModel::derive(&graph).unwrap();
    for &n in &[2usize, 8, 32, 128] {
        let cluster = Cluster::homogeneous(n, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| RodPlanner::new().place(&model, &cluster).unwrap());
        });
    }
    group.finish();
}

fn bench_model_derivation(c: &mut Criterion) {
    let graph = RandomTreeGenerator::paper_default(5, 40).generate(3);
    c.bench_function("load_model_derive_200ops", |b| {
        b.iter(|| LoadModel::derive(&graph).unwrap());
    });
}

criterion_group!(
    benches,
    bench_operators,
    bench_nodes,
    bench_model_derivation
);
criterion_main!(benches);
