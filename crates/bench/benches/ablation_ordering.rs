//! Ablation: Phase-1 operator ordering.
//!
//! The paper sorts operators by descending load-vector norm "to enable
//! the second phase to place high impact operators early". This bench
//! (a) prints the feasible-set quality achieved by descending vs
//! ascending vs no ordering, and (b) times the three variants (the sort
//! is cheap; the point of the timing is to show the quality difference
//! is free).

use criterion::{criterion_group, criterion_main, Criterion};

use rod_core::allocation::PlanEvaluator;
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::metrics::{feasible_ratio, make_estimator};
use rod_core::rod::{OperatorOrdering, RodOptions, RodPlanner};
use rod_workloads::RandomTreeGenerator;

fn quality_report() {
    println!("\n--- ordering ablation: mean feasible-set ratio over 5 graphs ---");
    let cluster = Cluster::homogeneous(5, 1.0);
    for ordering in [
        OperatorOrdering::NormDescending,
        OperatorOrdering::NormAscending,
        OperatorOrdering::ByIndex,
    ] {
        let mut sum = 0.0;
        let graphs = 5;
        for g in 0..graphs {
            let graph = RandomTreeGenerator::paper_default(5, 16).generate(g);
            let model = LoadModel::derive(&graph).unwrap();
            let ev = PlanEvaluator::new(&model, &cluster);
            let estimator = make_estimator(&model, &cluster, 20_000, g);
            let plan = RodPlanner::with_options(RodOptions {
                ordering,
                ..RodOptions::default()
            })
            .place(&model, &cluster)
            .unwrap();
            sum += feasible_ratio(&ev, &estimator, &plan.allocation);
        }
        println!("{ordering:?}: {:.4}", sum / graphs as f64);
    }
}

fn bench_orderings(c: &mut Criterion) {
    quality_report();
    let graph = RandomTreeGenerator::paper_default(5, 40).generate(9);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(5, 1.0);
    let mut group = c.benchmark_group("ablation_ordering");
    for ordering in [
        OperatorOrdering::NormDescending,
        OperatorOrdering::NormAscending,
        OperatorOrdering::ByIndex,
    ] {
        group.bench_function(format!("{ordering:?}"), |b| {
            let planner = RodPlanner::with_options(RodOptions {
                ordering,
                ..RodOptions::default()
            });
            b.iter(|| planner.place(&model, &cluster).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
