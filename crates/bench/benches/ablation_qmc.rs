//! Ablation: quasi-Monte-Carlo (Halton) vs plain Monte-Carlo volume
//! estimation.
//!
//! §7.1 uses QMC integration because plain MC needs O(2^d) points. This
//! ablation measures the actual accuracy gap against the *exact* d = 2
//! polygon area (the only dimension with closed-form truth), and times
//! the two estimators.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng as _;

use rod_core::allocation::PlanEvaluator;
use rod_core::cluster::Cluster;
use rod_core::examples_paper::{example2_plans, figure4_graph};
use rod_core::load_model::LoadModel;
use rod_geom::polygon::feasible_area;
use rod_geom::{seeded_rng, SimplexSampler, VolumeEstimator};

fn accuracy_report() {
    println!("\n--- QMC vs MC accuracy on Example 2 plan (a), exact area known ---");
    let model = LoadModel::derive(&figure4_graph()).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let [plan_a, _, _] = example2_plans();
    let region = ev.feasible_region(&plan_a);
    let exact = feasible_area(&region.hyperplanes()).unwrap();
    let totals = model.total_coeffs();
    let ct = cluster.total_capacity();

    for &samples in &[1_000usize, 10_000, 100_000] {
        // Halton and Sobol (shifted): average |error| over seeds.
        let mut qmc_err = 0.0;
        let mut sobol_err = 0.0;
        let runs = 10;
        for s in 0..runs {
            let est = VolumeEstimator::new(totals.as_slice(), ct, samples, s).estimate(&region);
            qmc_err += (est.absolute - exact).abs() / exact;
            let est =
                VolumeEstimator::with_sobol(totals.as_slice(), ct, samples, s).estimate(&region);
            sobol_err += (est.absolute - exact).abs() / exact;
        }
        // Plain MC with the same budget.
        let sampler = SimplexSampler::new(totals.as_slice(), ct);
        let ideal = rod_geom::simplex_volume(totals.as_slice(), ct);
        let mut mc_err = 0.0;
        for s in 0..runs {
            let mut rng = seeded_rng(1000 + s);
            let mut hits = 0usize;
            for _ in 0..samples {
                let u = rod_geom::Vector::new(vec![rng.gen::<f64>(), rng.gen::<f64>()]);
                let p = sampler.map_cube_point(&u);
                if region.contains(&p) {
                    hits += 1;
                }
            }
            let mc = hits as f64 / samples as f64 * ideal;
            mc_err += (mc - exact).abs() / exact;
        }
        println!(
            "n = {samples:>7}: Halton rel. err {:.5}, Sobol rel. err {:.5}, \
             plain MC rel. err {:.5}",
            qmc_err / runs as f64,
            sobol_err / runs as f64,
            mc_err / runs as f64
        );
    }
}

fn bench_estimators(c: &mut Criterion) {
    accuracy_report();
    let model = LoadModel::derive(&figure4_graph()).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let [plan_a, _, _] = example2_plans();
    let region = ev.feasible_region(&plan_a);
    let totals = model.total_coeffs();

    let mut group = c.benchmark_group("ablation_qmc");
    let estimator = VolumeEstimator::new(totals.as_slice(), 2.0, 20_000, 1);
    group.bench_function("halton_20k", |b| {
        b.iter(|| estimator.estimate(&region));
    });
    group.bench_function("plain_mc_20k", |b| {
        let sampler = SimplexSampler::new(totals.as_slice(), 2.0);
        b.iter(|| {
            let mut rng = seeded_rng(2);
            let mut hits = 0usize;
            for _ in 0..20_000 {
                let u = rod_geom::Vector::new(vec![rng.gen::<f64>(), rng.gen::<f64>()]);
                if region.contains(&sampler.map_cube_point(&u)) {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
