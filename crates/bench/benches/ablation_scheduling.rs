//! Ablation: node scheduling discipline.
//!
//! The load model is scheduling-agnostic (feasibility only depends on
//! total CPU demand), but *latency* under bursts is not. This ablation
//! compares FIFO, round-robin and longest-queue-first dispatching on the
//! same placement and arrivals — FIFO minimises mean sojourn for
//! deterministic service, LQF trades mean for backlog control — and
//! times the simulator under each (the pick-next scan is the only cost
//! difference).

use criterion::{criterion_group, criterion_main, Criterion};

use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::rod::RodPlanner;
use rod_sim::{SchedulingPolicy, Simulation, SimulationConfig, SourceSpec};
use rod_traces::selfsimilar::BModel;
use rod_workloads::RandomTreeGenerator;

fn quality_report() {
    println!("\n--- scheduling ablation: latency under a bursty trace ---");
    let inputs = 2;
    let graph = RandomTreeGenerator::paper_default(inputs, 10).generate(17);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let unit = model.total_load(&model.variable_point(&[1.0, 1.0]));
    let q = 0.6 * cluster.total_capacity() / unit;
    let traces: Vec<_> = (0..inputs)
        .map(|k| {
            rod_sim::SourceSpec::TraceDriven(
                BModel::new(0.7, 7, 1.0, 1.0)
                    .generate(40 + k as u64)
                    .normalised()
                    .with_cov(0.35)
                    .with_mean(q),
            )
        })
        .collect();
    for policy in [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::RoundRobin,
        SchedulingPolicy::LongestQueueFirst,
    ] {
        let report = Simulation::new(
            &graph,
            &alloc,
            &cluster,
            traces.clone(),
            SimulationConfig {
                horizon: 128.0,
                warmup: 10.0,
                seed: 3,
                scheduling: policy,
                ..SimulationConfig::default()
            },
        )
        .run();
        println!(
            "{policy:?}: mean {:.2} ms, p99 {:.2} ms, peak queue {}",
            report.mean_latency().unwrap_or(f64::NAN) * 1e3,
            report.latencies.quantile(0.99).unwrap_or(f64::NAN) * 1e3,
            report.peak_queue
        );
    }
}

fn bench_policies(c: &mut Criterion) {
    quality_report();
    let graph = RandomTreeGenerator::paper_default(2, 10).generate(17);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let mut group = c.benchmark_group("ablation_scheduling");
    group.sample_size(10);
    for policy in [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::RoundRobin,
        SchedulingPolicy::LongestQueueFirst,
    ] {
        group.bench_function(format!("{policy:?}"), |b| {
            b.iter(|| {
                Simulation::new(
                    &graph,
                    &alloc,
                    &cluster,
                    vec![SourceSpec::ConstantRate(80.0); 2],
                    SimulationConfig {
                        horizon: 10.0,
                        warmup: 1.0,
                        seed: 1,
                        scheduling: policy,
                        ..SimulationConfig::default()
                    },
                )
                .run()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
