//! Cost of the tracing hooks when tracing is **off**.
//!
//! The engine guards every trace emission with `if self.sink.enabled()`,
//! and [`NullSink::enabled`] is an `#[inline(always)] false` — after
//! monomorphisation the untraced engine should contain no record
//! construction at all. This bench pins that contract: a `NullSink` run
//! must be within noise (the acceptance bar is ≤ 5% overhead) of the
//! pre-tracing engine, measured against a collecting `VecSink` run of
//! the same scenario for scale.

use criterion::{criterion_group, criterion_main, Criterion};

use rod_core::allocation::Allocation;
use rod_core::cluster::Cluster;
use rod_core::graph::{GraphBuilder, QueryGraph};
use rod_core::ids::{NodeId, OperatorId};
use rod_core::operator::OperatorKind;
use rod_sim::{Simulation, SimulationConfig, SourceSpec, VecSink};

fn chain(k: usize) -> QueryGraph {
    let mut b = GraphBuilder::new();
    let mut up = b.add_input();
    for j in 0..k {
        let (_, s) = b
            .add_operator(format!("m{j}"), OperatorKind::map(2e-4), &[up])
            .unwrap();
        up = s;
    }
    b.build().unwrap()
}

fn spread(graph: &QueryGraph, n: usize) -> Allocation {
    let mut alloc = Allocation::new(graph.num_operators(), n);
    for j in 0..graph.num_operators() {
        alloc.assign(OperatorId(j), NodeId(j % n));
    }
    alloc
}

fn config() -> SimulationConfig {
    SimulationConfig {
        horizon: 10.0,
        warmup: 1.0,
        seed: 11,
        sample_interval: Some(0.5),
        ..SimulationConfig::default()
    }
}

fn bench_trace_overhead(c: &mut Criterion) {
    let graph = chain(4);
    let cluster = Cluster::homogeneous(2, 1.0);
    let alloc = spread(&graph, 2);
    let sources = || vec![SourceSpec::ConstantRate(400.0)];

    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(20);
    // The default run() path: NullSink, tracing compiled out.
    group.bench_function("null_sink", |b| {
        b.iter(|| {
            let sim = Simulation::new(&graph, &alloc, &cluster, sources(), config());
            std::hint::black_box(sim.run())
        })
    });
    // The fully-collecting path: every record built and cloned.
    group.bench_function("vec_sink", |b| {
        b.iter(|| {
            let sim = Simulation::new(&graph, &alloc, &cluster, sources(), config());
            let mut sink = VecSink::new();
            let report = sim.run_with_sink(&mut sink);
            std::hint::black_box((report, sink.records.len()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
