//! Golden-value pins for the planner and the volume estimator.
//!
//! These tests freeze exact outputs — ROD placements as op→node vectors
//! and QMC volume estimates down to the f64 bit pattern — for fixed
//! workload/QMC seeds. They exist to catch *unintentional* numeric or
//! behavioural drift: an optimisation that reorders float accumulation,
//! a planner tweak that silently changes placements, a sampler change
//! that shifts the point set.
//!
//! If a change fails these tests **on purpose** (e.g. a deliberate
//! planner improvement), re-pin the constants in the same commit and
//! call the change out in the commit message; a re-pin is an API-break
//! level event for downstream experiment reproducibility.

use rod_core::allocation::{Allocation, PlanEvaluator};
use rod_core::cluster::Cluster;
use rod_core::hierarchical::HierarchicalRod;
use rod_core::ids::OperatorId;
use rod_core::load_model::LoadModel;
use rod_core::rod::RodPlanner;
use rod_geom::VolumeEstimator;
use rod_workloads::random_graphs::RandomTreeGenerator;
use rod_workloads::sparse_graphs::SparseGraphGenerator;

/// One frozen scenario: the paper-default random tree workload on a
/// homogeneous cluster, mirroring the `perf_planner` grid cells.
struct GoldenCase {
    name: &'static str,
    inputs: usize,
    ops_per_tree: usize,
    nodes: usize,
    samples: usize,
    workload_seed: u64,
    qmc_seed: u64,
    /// Expected op→node assignment from `RodPlanner::place`.
    placement: &'static [usize],
    /// Expected `ratio_to_ideal` as raw f64 bits (bit-exact pin).
    ratio_bits: u64,
}

const CASES: &[GoldenCase] = &[
    GoldenCase {
        name: "d2_n4_s42",
        inputs: 2,
        ops_per_tree: 5,
        nodes: 4,
        samples: 50_000,
        workload_seed: 42,
        qmc_seed: 7,
        placement: &[0, 2, 3, 1, 3, 2, 3, 2, 1, 0],
        ratio_bits: 0x3fe3a9a8049667b6, // 0.61446
    },
    GoldenCase {
        name: "d4_n8_s42",
        inputs: 4,
        ops_per_tree: 5,
        nodes: 8,
        samples: 50_000,
        workload_seed: 42,
        qmc_seed: 7,
        placement: &[5, 6, 4, 3, 7, 2, 4, 5, 3, 7, 0, 6, 2, 7, 3, 3, 1, 2, 6, 7],
        ratio_bits: 0x3fc916872b020c4a, // 0.196
    },
];

fn run_case(case: &GoldenCase) -> (Vec<usize>, f64) {
    let graph = RandomTreeGenerator::paper_default(case.inputs, case.ops_per_tree)
        .generate(case.workload_seed);
    let model = LoadModel::derive(&graph).expect("model derives");
    let cluster = Cluster::homogeneous(case.nodes, 1.0);
    let alloc = RodPlanner::new()
        .place(&model, &cluster)
        .expect("ROD plans")
        .allocation;
    let placement: Vec<usize> = (0..alloc.num_operators())
        .map(|op| alloc.node_of(OperatorId(op)).expect("complete placement").0)
        .collect();

    let estimator = VolumeEstimator::new(
        model.total_coeffs().as_slice(),
        cluster.total_capacity(),
        case.samples,
        case.qmc_seed,
    );
    let region = PlanEvaluator::new(&model, &cluster).feasible_region(&alloc);
    let estimate = estimator.estimate(&region);
    (placement, estimate.ratio_to_ideal)
}

#[test]
fn golden_placements_and_volumes_are_stable() {
    for case in CASES {
        let (placement, ratio) = run_case(case);
        assert_eq!(
            placement, case.placement,
            "{}: ROD placement drifted — if intentional, re-pin and \
             document in the commit message",
            case.name
        );
        assert_eq!(
            ratio.to_bits(),
            case.ratio_bits,
            "{}: volume estimate drifted ({} vs pinned {}) — if \
             intentional, re-pin and document in the commit message",
            case.name,
            ratio,
            f64::from_bits(case.ratio_bits)
        );
    }
}

/// FNV-1a over the op→node vector: a 5000-element placement is too big
/// to inline as a literal, so the large-sparse pins freeze its hash.
fn placement_fingerprint(alloc: &Allocation) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for op in 0..alloc.num_operators() {
        let node = alloc.node_of(OperatorId(op)).expect("complete placement").0 as u64;
        for byte in node.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The large-sparse scaling scenario (the `perf_planner` v3 regime in
/// miniature): 64 inputs, 5000 operators with ≤ 4-nonzero load rows, 64
/// nodes. QMC volume is unavailable past 16 dimensions, so the pins are
/// the placement fingerprints of the flat (pruned) and hierarchical
/// planners, plus the pruned scan's exact probe count — any change to
/// the pruning logic, the sparse evaluation order, or the two-level
/// split shows up here as a bit-level diff.
#[test]
fn golden_large_sparse_placements_are_stable() {
    let graph = SparseGraphGenerator::sized(64, 5_000).generate(42);
    let model = LoadModel::derive(&graph).expect("model derives");
    assert_eq!(model.nnz(), 15_732, "workload generator drifted");
    let cluster = Cluster::homogeneous(64, 1.0);

    let flat = RodPlanner::new()
        .place(&model, &cluster)
        .expect("ROD plans");
    assert_eq!(
        placement_fingerprint(&flat.allocation),
        0xfaf3657c2dd7b498,
        "flat placement drifted (got {:#018x}) — if intentional, re-pin \
         and document in the commit message",
        placement_fingerprint(&flat.allocation)
    );
    assert_eq!(
        flat.candidates_scored, 228_772,
        "pruned-scan probe count drifted — if intentional, re-pin and \
         document in the commit message"
    );

    let hier = HierarchicalRod::new()
        .place(&model, &cluster)
        .expect("hierarchical ROD plans");
    assert_eq!(
        placement_fingerprint(&hier.allocation),
        0x6f484cb9b6a3c602,
        "hierarchical placement drifted (got {:#018x}) — if intentional, \
         re-pin and document in the commit message",
        placement_fingerprint(&hier.allocation)
    );
}

/// The batched kernel, the scalar reference walk, and the threaded path
/// must all agree bit-for-bit on the golden scenarios.
#[test]
fn golden_scenarios_are_bit_identical_across_estimate_paths() {
    for case in CASES {
        let graph = RandomTreeGenerator::paper_default(case.inputs, case.ops_per_tree)
            .generate(case.workload_seed);
        let model = LoadModel::derive(&graph).expect("model derives");
        let cluster = Cluster::homogeneous(case.nodes, 1.0);
        let alloc = RodPlanner::new()
            .place(&model, &cluster)
            .expect("ROD plans")
            .allocation;
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            case.samples,
            case.qmc_seed,
        );
        let region = PlanEvaluator::new(&model, &cluster).feasible_region(&alloc);
        // Every path is pinned directly against the golden bits — not
        // merely against each other — so a drift that hit all paths at
        // once (e.g. a sampler change) still fails here.
        let scalar = estimator.estimate_scalar(&region).ratio_to_ideal.to_bits();
        assert_eq!(
            scalar, case.ratio_bits,
            "{}: scalar estimate drifted from the golden pin",
            case.name
        );
        for threads in [1usize, 2, 4, 7] {
            let pooled = estimator
                .estimate_with_threads(&region, threads)
                .ratio_to_ideal
                .to_bits();
            assert_eq!(
                pooled, case.ratio_bits,
                "{}: pooled estimate (threads={threads}) drifted from the \
                 golden pin",
                case.name
            );
        }
    }
}
