//! The §7.3 comparison protocol.
//!
//! "We repeat each algorithm except ROD ten times. For the Random
//! algorithm, we use different random seeds for each run. For the load
//! balancing algorithms, we use random input stream rates, and for the
//! Correlation-based algorithm, we generate random stream-rate time
//! series. ROD does not need to be repeated."

use serde::{Deserialize, Serialize};

use rod_core::allocation::PlanEvaluator;
use rod_core::baselines::{build_planner, PlannerSpec};
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::metrics::{feasible_ratio, make_estimator};
use rod_geom::rng::derive_seed;
use rod_geom::{seeded_rng, OnlineStats, SimplexSampler};

/// How a comparison sweep is run.
#[derive(Clone, Debug)]
pub struct ComparisonConfig {
    /// Repetitions per randomised algorithm (paper: 10).
    pub reps: usize,
    /// QMC samples for volume estimation.
    pub volume_samples: usize,
    /// Base seed.
    pub seed: u64,
    /// Length of the rate time series fed to the Correlation planner.
    pub history_len: usize,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        ComparisonConfig {
            reps: 10,
            volume_samples: 20_000,
            seed: 42,
            history_len: 32,
        }
    }
}

/// Aggregated outcome of one algorithm over the repetitions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AlgorithmResult {
    /// Display name.
    pub name: String,
    /// Mean feasible-set ratio (plan volume / ideal volume).
    pub mean_ratio: f64,
    /// Standard deviation of the ratio across repetitions.
    pub std_ratio: f64,
    /// Mean min-plane-distance across repetitions.
    pub mean_plane_distance: f64,
    /// Repetitions run.
    pub reps: usize,
}

/// Maps `f` over `items` on `threads` worker threads (scoped, so `f` can
/// borrow), preserving order. The experiment sweeps are embarrassingly
/// parallel across independent random graphs; this keeps the heavier
/// figures (14, 15) fast without any shared mutable state.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads >= 1);
    let items: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let chunk = items.len().div_ceil(threads);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut rest = items;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let batch: Vec<(usize, T)> = rest.drain(..take).collect();
            let f = &f;
            handles.push(scope.spawn(move || {
                batch
                    .into_iter()
                    .map(|(i, item)| (i, f(item)))
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Runs the full §7.2 algorithm set on one model + cluster. Returns
/// results in a fixed order: ROD, Hierarchical, Correlation, LLF,
/// Random, Connected.
pub fn compare_algorithms(
    model: &LoadModel,
    cluster: &Cluster,
    config: &ComparisonConfig,
) -> Vec<AlgorithmResult> {
    let ev = PlanEvaluator::new(model, cluster);
    let estimator = make_estimator(model, cluster, config.volume_samples, config.seed);
    let d_in = model.num_inputs();

    // Random rate points for the single-point balancers are drawn, as in
    // the paper's probing, uniformly from the ideal simplex restricted to
    // the system-input axes.
    let coeffs: Vec<f64> = (0..d_in)
        .map(|k| model.total_coeffs()[k].max(1e-12))
        .collect();
    let rate_sampler = SimplexSampler::new(&coeffs, cluster.total_capacity());

    let mut results = Vec::new();

    // ROD: deterministic, run once.
    {
        let alloc = build_planner(&PlannerSpec::Rod)
            .plan(model, cluster)
            .expect("ROD placement");
        let ratio = feasible_ratio(&ev, &estimator, &alloc);
        let pd = ev.min_plane_distance(&alloc);
        results.push(AlgorithmResult {
            name: "ROD".into(),
            mean_ratio: ratio,
            std_ratio: 0.0,
            mean_plane_distance: pd,
            reps: 1,
        });
    }

    // Hierarchical ROD (auto √n racks): deterministic, run once.
    {
        let alloc = build_planner(&PlannerSpec::Hierarchical { racks: vec![] })
            .plan(model, cluster)
            .expect("hierarchical placement");
        let ratio = feasible_ratio(&ev, &estimator, &alloc);
        let pd = ev.min_plane_distance(&alloc);
        results.push(AlgorithmResult {
            name: "Hierarchical".into(),
            mean_ratio: ratio,
            std_ratio: 0.0,
            mean_plane_distance: pd,
            reps: 1,
        });
    }

    // The randomised baselines: each repetition builds a fresh spec from
    // the repetition's RNG and hands it to the shared registry.
    for name in ["Correlation", "LLF", "Random", "Connected"] {
        let mut ratio_stats = OnlineStats::new();
        let mut pd_stats = OnlineStats::new();
        for rep in 0..config.reps {
            let rep_seed = derive_seed(config.seed, rep as u64 * 31 + name.len() as u64);
            let mut rng = seeded_rng(rep_seed);
            let mut sample_rates = || rate_sampler.sample(&mut rng).as_slice().to_vec();
            let spec = match name {
                "Random" => PlannerSpec::Random { seed: rep_seed },
                "LLF" => PlannerSpec::Llf {
                    rates: sample_rates(),
                },
                "Connected" => PlannerSpec::Connected {
                    rates: sample_rates(),
                },
                _ => PlannerSpec::Correlation {
                    history: (0..config.history_len).map(|_| sample_rates()).collect(),
                },
            };
            let alloc = build_planner(&spec)
                .plan(model, cluster)
                .expect("baseline placement");
            ratio_stats.push(feasible_ratio(&ev, &estimator, &alloc));
            pd_stats.push(ev.min_plane_distance(&alloc));
        }
        results.push(AlgorithmResult {
            name: name.into(),
            mean_ratio: ratio_stats.mean(),
            std_ratio: ratio_stats.std_dev(),
            mean_plane_distance: pd_stats.mean(),
            reps: config.reps,
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use rod_workloads::RandomTreeGenerator;

    #[test]
    fn parallel_map_preserves_order_and_results() {
        let items: Vec<u64> = (0..37).collect();
        let sequential: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 3, 8] {
            let parallel = parallel_map(items.clone(), threads, |x| x * x);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn rod_wins_on_paper_workload() {
        let graph = RandomTreeGenerator::paper_default(3, 12).generate(5);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(3, 1.0);
        let results = compare_algorithms(
            &model,
            &cluster,
            &ComparisonConfig {
                reps: 3,
                volume_samples: 8_000,
                ..ComparisonConfig::default()
            },
        );
        assert_eq!(results.len(), 6);
        let rod = &results[0];
        assert_eq!(rod.name, "ROD");
        let hier = &results[1];
        assert_eq!(hier.name, "Hierarchical");
        assert!(hier.mean_ratio > 0.0);
        for other in &results[2..] {
            assert!(
                rod.mean_ratio >= other.mean_ratio * 0.98,
                "ROD {} should not lose to {} {}",
                rod.mean_ratio,
                other.name,
                other.mean_ratio
            );
        }
        // Connected is the canonical loser on tree workloads.
        let connected = results.iter().find(|r| r.name == "Connected").unwrap();
        assert!(rod.mean_ratio > connected.mean_ratio);
    }
}
