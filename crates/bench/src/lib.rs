//! # rod-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus
//! Criterion micro-benchmarks and ablations (`benches/`). This library
//! holds the shared machinery:
//!
//! * [`comparison`] — runs the §7.2 algorithm set (ROD, Correlation, LLF,
//!   Random, Connected) over a workload exactly as §7.3 prescribes:
//!   every randomised algorithm repeated with fresh random inputs, ROD
//!   run once (it "does not depend on the input stream rates and produces
//!   only one operator distribution plan");
//! * [`output`] — console tables and JSON result files under `results/`.

#![warn(missing_docs)]
pub mod comparison;
pub mod output;
pub mod plot;

pub use comparison::{compare_algorithms, parallel_map, AlgorithmResult, ComparisonConfig};
pub use output::{print_table, write_json};
pub use plot::{downsample, line_chart, scatter, sparkline};
