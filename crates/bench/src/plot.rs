//! Minimal ASCII charts for the figure binaries.
//!
//! The experiment binaries regenerate the paper's figures; beyond the
//! numeric tables (and the JSON files for external plotting), these
//! helpers render the *shape* directly in the terminal: sparklines for
//! rate traces (Figure 2), multi-series line charts for the resiliency
//! curves (Figures 14/15), and scatter plots (Figure 9).

/// Unicode sparkline of a series (one character per sample), scaled to
/// the series' own min..max.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// Downsamples a series to at most `width` points by block averaging.
pub fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    if values.len() <= width || width == 0 {
        return values.to_vec();
    }
    let chunk = values.len().div_ceil(width);
    values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// An ASCII line chart of one or more named series over a shared x grid.
/// Each series is drawn with its own glyph; overlapping cells show the
/// later series.
pub fn line_chart(
    title: &str,
    x_labels: &[String],
    series: &[(&str, Vec<f64>)],
    height: usize,
) -> String {
    assert!(height >= 2);
    let glyphs = ['o', 'x', '+', '*', '#', '@'];
    let width = x_labels.len();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, ys) in series {
        assert_eq!(ys.len(), width, "series length must match x grid");
        for &y in ys {
            lo = lo.min(y);
            hi = hi.max(y);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return format!("{title}: no data\n");
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);

    let col_width = 7usize;
    let mut grid = vec![vec![' '; width * col_width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for (xi, &y) in ys.iter().enumerate() {
            let row = ((y - lo) / span * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][xi * col_width + col_width / 2] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    for (r, row) in grid.iter().enumerate() {
        let y_val = hi - span * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_val:8.3} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:8} +", ""));
    out.push_str(&"-".repeat(width * col_width));
    out.push('\n');
    out.push_str(&format!("{:9}", ""));
    for label in x_labels {
        out.push_str(&format!("{label:^col_width$}"));
    }
    out.push('\n');
    out.push_str(&format!("{:9}legend: ", ""));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("{}={}  ", glyphs[si % glyphs.len()], name));
    }
    out.push('\n');
    out
}

/// An ASCII scatter plot of (x, y) points in a fixed frame.
pub fn scatter(title: &str, points: &[(f64, f64)], width: usize, height: usize) -> String {
    if points.is_empty() {
        return format!("{title}: no data\n");
    }
    let (mut xlo, mut xhi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ylo, mut yhi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        xlo = xlo.min(x);
        xhi = xhi.max(x);
        ylo = ylo.min(y);
        yhi = yhi.max(y);
    }
    let xspan = (xhi - xlo).max(f64::MIN_POSITIVE);
    let yspan = (yhi - ylo).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in points {
        let c = (((x - xlo) / xspan) * (width - 1) as f64).round() as usize;
        let r = (((y - ylo) / yspan) * (height - 1) as f64).round() as usize;
        let cell = &mut grid[height - 1 - r.min(height - 1)][c.min(width - 1)];
        *cell = match *cell {
            ' ' => '·',
            '·' => ':',
            ':' => '*',
            _ => '#',
        };
    }
    let mut out = format!("{title}  (x: {xlo:.2}..{xhi:.2}, y: {ylo:.3}..{yhi:.3})\n");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_constant_series() {
        let s = sparkline(&[2.0, 2.0, 2.0]);
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn downsample_averages() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&values, 10);
        assert_eq!(d.len(), 10);
        assert!((d[0] - 4.5).abs() < 1e-9);
        // Short series pass through untouched.
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
    }

    #[test]
    fn line_chart_renders_all_series() {
        let labels: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let chart = line_chart(
            "test",
            &labels,
            &[("up", vec![0.0, 0.5, 1.0]), ("down", vec![1.0, 0.5, 0.0])],
            6,
        );
        assert!(chart.contains("o=up"));
        assert!(chart.contains("x=down"));
        assert!(chart.contains('o'));
        assert!(chart.contains('x'));
    }

    #[test]
    fn scatter_marks_density() {
        let pts = vec![(0.0, 0.0), (0.0, 0.0), (1.0, 1.0)];
        let plot = scatter("t", &pts, 20, 5);
        assert!(plot.contains(':'), "repeated point should densify: {plot}");
        assert!(plot.contains('·'));
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn line_chart_rejects_ragged_series() {
        let labels: Vec<String> = vec!["a".into(), "b".into()];
        let _ = line_chart("t", &labels, &[("s", vec![1.0])], 4);
    }
}
