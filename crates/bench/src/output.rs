//! Console tables and JSON result files.

use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Prints a fixed-width table: a header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (cell, w) in cells.iter().zip(&widths) {
            out.push_str(&format!("{cell:>w$}  ", w = w));
        }
        println!("{}", out.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Directory where experiment binaries drop machine-readable results.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Serialises a result payload to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, payload: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(payload).expect("serialisable payload");
    fs::write(&path, json).expect("write results file");
    println!("[results written to {}]", path.display());
}

/// Value of a `--flag VALUE`-style argument on the command line.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

/// Honours the experiment binaries' shared `--metrics-out FILE` flag:
/// when present, freezes `metrics` and writes the snapshot as pretty
/// JSON to FILE. Without the flag this is a no-op, so every `exp_*` bin
/// can call it unconditionally at exit.
pub fn write_metrics(metrics: &rod_core::obs::MetricsRegistry) {
    if let Some(path) = arg_value("--metrics-out") {
        let json = serde_json::to_string_pretty(&metrics.snapshot()).expect("snapshot serialises");
        fs::write(&path, json).expect("write metrics file");
        println!("[metrics written to {path}]");
    }
}

/// Shared lifecycle of the `exp_*`/`fig*` binaries: owns the metrics
/// registry and the experiment wall-clock, and centralises the
/// `--metrics-out FILE` contract so the flag cannot drift per-bin.
///
/// ```no_run
/// let exp = rod_bench::output::Experiment::start();
/// // ... run the experiment, passing `exp.metrics()` around ...
/// exp.finish(); // records `exp.total_seconds`, honours --metrics-out
/// ```
pub struct Experiment {
    metrics: rod_core::obs::MetricsRegistry,
    start: std::time::Instant,
}

impl Experiment {
    /// Starts the experiment clock with a fresh registry.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Experiment {
            metrics: rod_core::obs::MetricsRegistry::new(),
            start: std::time::Instant::now(),
        }
    }

    /// The experiment's metrics registry.
    pub fn metrics(&self) -> &rod_core::obs::MetricsRegistry {
        &self.metrics
    }

    /// Records the total wall-clock as `exp.total_seconds` and writes the
    /// snapshot to the `--metrics-out` file when the flag is present.
    pub fn finish(self) {
        self.metrics
            .observe("exp.total_seconds", self.start.elapsed().as_secs_f64());
        write_metrics(&self.metrics);
    }
}

/// Formats a float with 4 significant decimals for tables.
pub fn fmt(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "test",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn fmt_handles_infinity() {
        assert_eq!(fmt(f64::INFINITY), "inf");
        assert_eq!(fmt(0.12344), "0.1234");
        assert_eq!(fmt(0.12346), "0.1235");
    }

    #[test]
    fn json_round_trip() {
        write_json("selftest", &vec![1, 2, 3]);
        let path = results_dir().join("selftest.json");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains('1'));
        std::fs::remove_file(path).unwrap();
    }
}
