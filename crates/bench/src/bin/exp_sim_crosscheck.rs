//! **Simulator/Borealis cross-check** — "We observed that the simulator
//! results tracked the results in Borealis very closely, thus allowing us
//! to trust the simulator."
//!
//! Our Borealis stand-in *is* the simulator, so the cross-check becomes:
//! the utilisation-probing measurement procedure (run the system at a
//! rate point, deem it feasible iff no node saturates — §7.1's Borealis
//! protocol) must agree with the analytic linear-model feasibility on the
//! same points, and the feasible-set ratios from both must match.

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_core::baselines::{build_planner, PlannerSpec};
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_sim::{FeasibilityProbe, ProbeConfig};
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct CrossRow {
    algorithm: String,
    simulated_ratio: f64,
    analytic_ratio: f64,
    agreement: f64,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let inputs = 3;
    let graph = RandomTreeGenerator::paper_default(inputs, 8).generate(31);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);

    let specs = [
        PlannerSpec::Rod,
        PlannerSpec::Llf {
            rates: vec![50.0; inputs],
        },
        PlannerSpec::Random { seed: 8 },
    ];
    let plans: Vec<_> = specs
        .iter()
        .map(|spec| {
            let alloc = build_planner(spec).plan(&model, &cluster).unwrap();
            (spec.name(), alloc)
        })
        .collect();

    let probe = FeasibilityProbe::new(ProbeConfig {
        points: 60,
        horizon: 25.0,
        warmup: 5.0,
        seed: 97,
        ..ProbeConfig::default()
    });

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for (name, alloc) in &plans {
        let outcome = probe.run(&model, &cluster, alloc);
        rows.push(vec![
            name.to_string(),
            fmt(outcome.simulated_ratio()),
            fmt(outcome.analytic_ratio()),
            fmt(outcome.agreement()),
        ]);
        payload.push(CrossRow {
            algorithm: name.to_string(),
            simulated_ratio: outcome.simulated_ratio(),
            analytic_ratio: outcome.analytic_ratio(),
            agreement: outcome.agreement(),
        });
    }

    print_table(
        "Simulated (utilisation-probed) vs analytic feasibility, 60 points",
        &[
            "algorithm",
            "sim ratio",
            "analytic ratio",
            "point agreement",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: agreement near 1.0 for every plan (boundary \
         points may flip),\nand the two ratio columns nearly equal — the \
         paper's \"simulator tracked Borealis\nvery closely\" property."
    );
    write_json("exp_sim_crosscheck", &payload);
    exp.finish();
}
