//! **§7.3.1 optimal-gap experiment** — ROD vs brute force.
//!
//! "In the simulator, we compared the feasible set size of ROD with the
//! optimal solution on small query graphs (no more than 12 operators and
//! 2 to 5 input streams) on two nodes. The average feasible set size
//! ratio of ROD to the optimal is 0.95 and the minimum ratio is 0.82."

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_core::allocation::PlanEvaluator;
use rod_core::baselines::optimal::OptimalPlanner;
use rod_core::baselines::{build_planner, PlannerSpec};
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::metrics::{feasible_ratio, make_estimator};
use rod_geom::rng::derive_seed;
use rod_geom::OnlineStats;
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct GapPoint {
    inputs: usize,
    operators: usize,
    rod_ratio: f64,
    optimal_ratio: f64,
    rod_over_optimal: f64,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let nodes = 2;
    let graphs_per_config = 8;
    // (d, ops per tree): m = d * ops_per_tree <= 12 as in the paper. The
    // final (2, 7) config pushes past the paper's sweep to 14 operators —
    // affordable within the default plan budget now that the search
    // prunes on the incremental feasible-point bound.
    let configs = [(2usize, 6usize), (2, 5), (3, 4), (4, 3), (5, 2), (2, 7)];

    let mut all = OnlineStats::new();
    let mut rows = Vec::new();
    let mut payload: Vec<GapPoint> = Vec::new();

    for (ci, &(d, t)) in configs.iter().enumerate() {
        let mut config_stats = OnlineStats::new();
        for g in 0..graphs_per_config {
            let graph = RandomTreeGenerator::paper_default(d, t)
                .generate(derive_seed(700, (ci * 100 + g) as u64));
            let model = LoadModel::derive(&graph).unwrap();
            let cluster = Cluster::homogeneous(nodes, 1.0);
            let seed = derive_seed(701, (ci * 100 + g) as u64);
            let estimator = make_estimator(&model, &cluster, 30_000, seed);
            let ev = PlanEvaluator::new(&model, &cluster);

            let rod = build_planner(&PlannerSpec::Rod)
                .plan(&model, &cluster)
                .unwrap();
            let rod_ratio = feasible_ratio(&ev, &estimator, &rod);

            // Built directly (not via the registry) because the gap needs
            // the search's volume ratio, which `Planner::plan` discards.
            let opt_planner = OptimalPlanner {
                samples: 30_000,
                seed,
                ..OptimalPlanner::new()
            };
            let (_, opt_ratio) = opt_planner.search(&model, &cluster).unwrap();

            let gap = if opt_ratio > 0.0 {
                (rod_ratio / opt_ratio).min(1.0)
            } else {
                1.0
            };
            config_stats.push(gap);
            all.push(gap);
            payload.push(GapPoint {
                inputs: d,
                operators: d * t,
                rod_ratio,
                optimal_ratio: opt_ratio,
                rod_over_optimal: gap,
            });
        }
        rows.push(vec![
            d.to_string(),
            (d * t).to_string(),
            fmt(config_stats.mean()),
            fmt(config_stats.min()),
        ]);
    }
    rows.push(vec![
        "all".into(),
        "-".into(),
        fmt(all.mean()),
        fmt(all.min()),
    ]);

    print_table(
        "ROD vs optimal (2 nodes, <= 14 operators)",
        &["d", "ops", "avg ROD/OPT", "min ROD/OPT"],
        &rows,
    );
    println!(
        "\nPaper: average ratio 0.95, minimum 0.82 — expect the same band \
         (avg >= ~0.9, min >= ~0.8)."
    );
    write_json("exp_optimal_gap", &payload);
    exp.finish();
}
