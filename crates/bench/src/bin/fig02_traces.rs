//! **Figure 2** — "Stream rates exhibit significant variation over time."
//!
//! The paper plots the normalised rates of the PKT / TCP / HTTP traces
//! and annotates their standard deviations, then notes that "similar
//! behaviour is observed at other time-scales due to the self-similar
//! nature of these workloads". This binary regenerates the figure's
//! content from the calibrated synthetic stand-ins: the normalised
//! series, their σ, the σ after 16× time aggregation (the "other time
//! scales" claim), and the estimated Hurst exponents.

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_bench::plot::{downsample, sparkline};
use rod_traces::stats::hurst_rs;
use rod_traces::{paper_traces, Trace};

#[derive(Serialize)]
struct TraceRow {
    name: String,
    mean: f64,
    std_dev: f64,
    std_dev_16x: f64,
    hurst: f64,
    series_head: Vec<f64>,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let traces = paper_traces(12, 2006); // 4096 bins each
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for (kind, trace) in &traces {
        let s = trace.summary();
        let coarse: Trace = trace.aggregate(16);
        let row = TraceRow {
            name: kind.name().to_string(),
            mean: s.mean(),
            std_dev: s.std_dev(),
            std_dev_16x: coarse.summary().std_dev(),
            hurst: hurst_rs(trace.rates()),
            series_head: trace.rates()[..256].to_vec(),
        };
        rows.push(vec![
            row.name.clone(),
            fmt(row.mean),
            fmt(row.std_dev),
            fmt(row.std_dev_16x),
            fmt(row.hurst),
        ]);
        payload.push(row);
    }
    print_table(
        "Figure 2: normalised stream rates (synthetic stand-ins)",
        &["trace", "mean", "std dev", "std dev @16x", "Hurst"],
        &rows,
    );
    println!();
    for (kind, trace) in &traces {
        println!(
            "{:>5} {}",
            kind.name(),
            sparkline(&downsample(trace.rates(), 100))
        );
    }
    println!(
        "\nPaper: normalised traces with significant spread at all time \
         scales (self-similar).\nCheck: std devs land near the reconstructed \
         targets (PKT 0.29, TCP 0.33, HTTP 0.23),\nremain well above zero \
         after 16x aggregation, and Hurst > 0.5 throughout."
    );
    write_json("fig02_traces", &payload);
    exp.finish();
}
