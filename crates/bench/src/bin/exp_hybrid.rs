//! **Hybrid static/dynamic placement \[reconstructed\]**.
//!
//! §1: "static, resilient operator distribution is not in conflict with
//! dynamic operator distribution. For a system that supports dynamic
//! operator migration, the techniques presented here can be used to
//! place operators with large state size. Lighter-weight operators can
//! be moved more frequently using a dynamic algorithm … Moreover,
//! resilient operator distribution can be used to provide a good
//! initial plan."
//!
//! Three regimes on the same drifting workload (slow diurnal swing plus
//! self-similar burstiness — the mix of §1's medium-term and short-term
//! variation):
//!
//! * **ROD static** — no moves at all;
//! * **ROD initial + hybrid dynamic** — ROD plan, heavy operators
//!   (the top half of the total load-norm mass, standing in for
//!   "large state") pinned, light operators free to migrate;
//! * **Connected initial + full dynamic** — a poor initial plan with
//!   unrestricted migration (the purely reactive regime).

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_core::allocation::Allocation;
use rod_core::baselines::{build_planner, PlannerSpec};
use rod_core::cluster::Cluster;
use rod_core::ids::OperatorId;
use rod_core::load_model::LoadModel;
use rod_core::rod::RodPlanner;
use rod_geom::rng::derive_seed;
use rod_sim::{MigrationConfig, Simulation, SimulationConfig, SourceSpec};
use rod_traces::modulate::diurnal;
use rod_traces::selfsimilar::BModel;
use rod_traces::Trace;
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct Row {
    regime: String,
    mean_latency_ms: Option<f64>,
    p99_latency_ms: Option<f64>,
    max_utilisation: f64,
    migrations: u64,
    downtime_s: f64,
}

/// Operators whose cumulative load-vector norm covers the top `share` of
/// the total — the "large state" set to pin.
fn heavy_operators(model: &LoadModel, share: f64) -> Vec<OperatorId> {
    let mut ops: Vec<(OperatorId, f64)> = (0..model.num_operators())
        .map(|j| (OperatorId(j), model.operator_norm(OperatorId(j))))
        .collect();
    ops.sort_by(|a, b| b.1.total_cmp(&a.1));
    let total: f64 = ops.iter().map(|(_, n)| n).sum();
    let mut acc = 0.0;
    let mut pinned = Vec::new();
    for (op, norm) in ops {
        if acc >= share * total {
            break;
        }
        acc += norm;
        pinned.push(op);
    }
    pinned
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let inputs = 3;
    let graph = RandomTreeGenerator::paper_default(inputs, 12).generate(99);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);

    let unit = model.total_load(&model.variable_point(&vec![1.0; inputs]));
    let q = 0.5 * cluster.total_capacity() / unit;

    // Drifting + bursty sources: diurnal envelope with staggered phases
    // (so the load mix shifts over the run) times a self-similar carrier.
    let bins_log2 = 7u32; // 128 bins
    let bins = 1usize << bins_log2;
    let traces: Vec<Trace> = (0..inputs)
        .map(|k| {
            let carrier = BModel::new(0.68, bins_log2, 1.0, 1.0)
                .generate(derive_seed(300, k as u64))
                .normalised()
                .with_cov(0.25);
            let phase = k as f64 * 2.0 * std::f64::consts::PI / inputs as f64;
            carrier
                .modulated(&diurnal(bins, bins as f64 / 1.5, 0.5, phase))
                .with_mean(q)
        })
        .collect();

    let rod = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let connected = build_planner(&PlannerSpec::Connected {
        rates: vec![q; inputs],
    })
    .plan(&model, &cluster)
    .unwrap();
    let pinned = heavy_operators(&model, 0.5);

    let run = |plan: &Allocation, migration: Option<MigrationConfig>| {
        Simulation::new(
            &graph,
            plan,
            &cluster,
            traces
                .iter()
                .cloned()
                .map(SourceSpec::TraceDriven)
                .collect(),
            SimulationConfig {
                horizon: bins as f64,
                warmup: 8.0,
                seed: 5,
                migration,
                max_queue: 500_000,
                ..SimulationConfig::default()
            },
        )
        .run()
    };
    let manager = MigrationConfig {
        check_interval: 2.0,
        utilisation_trigger: 0.75,
        imbalance_trigger: 0.2,
        base_downtime: 0.3,
        per_item_downtime: 1e-4,
        pinned: Vec::new(),
    };

    let regimes = [
        ("ROD static", run(&rod, None)),
        (
            "ROD + hybrid dynamic (heavy pinned)",
            run(
                &rod,
                Some(MigrationConfig {
                    pinned: pinned.clone(),
                    ..manager.clone()
                }),
            ),
        ),
        ("Connected + full dynamic", run(&connected, Some(manager))),
    ];

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for (name, report) in regimes {
        rows.push(vec![
            name.to_string(),
            report.mean_latency().map_or("-".into(), |l| fmt(l * 1e3)),
            report
                .latencies
                .quantile(0.99)
                .map_or("-".into(), |l| fmt(l * 1e3)),
            fmt(report.max_utilisation()),
            report.migrations.to_string(),
            fmt(report.migration_downtime),
        ]);
        payload.push(Row {
            regime: name.to_string(),
            mean_latency_ms: report.mean_latency().map(|l| l * 1e3),
            p99_latency_ms: report.latencies.quantile(0.99).map(|l| l * 1e3),
            max_utilisation: report.max_utilisation(),
            migrations: report.migrations,
            downtime_s: report.migration_downtime,
        });
    }

    println!(
        "pinned {} of {} operators ({}% of load-norm mass)",
        pinned.len(),
        model.num_operators(),
        50
    );
    print_table(
        "Hybrid placement regimes under drifting bursty load",
        &[
            "regime",
            "mean lat (ms)",
            "p99 (ms)",
            "max util",
            "migrations",
            "downtime (s)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the ROD initial plan already needs few or no \
         moves (the paper's\n\"good initial plan\" claim); hybrid dynamic \
         may shave the drift tail while moving\nonly light operators; the \
         reactive regime on a poor initial plan migrates far\nmore and \
         still trails."
    );
    write_json("exp_hybrid", &payload);
    exp.finish();
}
