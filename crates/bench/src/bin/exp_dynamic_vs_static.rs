//! **Dynamic vs static — the paper's motivating premise \[reconstructed\]**.
//!
//! §1: dynamic load distribution "is suitable for medium-to-long term
//! variations … Neither of these properties holds in the presence of
//! short-term load variations. … reactive load distribution requires
//! costly operator state migration … the base overhead of run-time
//! operator migration is on the order of a few hundred milliseconds. …
//! dealing with short-term load fluctuations by frequent operator
//! re-distribution is typically prohibitive."
//!
//! This binary demonstrates the premise with the migration-capable
//! simulator. Two scenarios over the same two-input workload:
//!
//! 1. **Short bursts** — alternating 2-second 3× spikes on either input.
//!    The reactive balancer (dynamic migration on top of an LLF plan)
//!    detects each burst only after its control period, pays a ~300 ms
//!    migration freeze, and often lands the operator after the burst has
//!    passed; static ROD simply absorbs the spikes.
//! 2. **Sustained shift** — the rate mix changes permanently mid-run.
//!    Here migration earns its keep against the stale static Connected plan,
//!    while ROD again needs no reaction at all.

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_core::allocation::Allocation;
use rod_core::baselines::{build_planner, PlannerSpec};
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::rod::RodPlanner;
use rod_sim::{MigrationConfig, Simulation, SimulationConfig, SourceSpec};
use rod_traces::Trace;
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct Row {
    scenario: String,
    plan: String,
    mean_latency_ms: Option<f64>,
    p99_latency_ms: Option<f64>,
    max_utilisation: f64,
    migrations: u64,
    migration_downtime_s: f64,
    saturated: bool,
}

/// Alternating short bursts: every `period` seconds the spike flips
/// between the two inputs; each burst lasts `burst_len` seconds.
fn bursty_pair(q: f64, bins: usize, period: usize, burst_len: usize, amp: f64) -> [Trace; 2] {
    let mut a = vec![q; bins];
    let mut b = vec![q; bins];
    let mut on_a = true;
    let mut t = period;
    while t + burst_len <= bins {
        let target = if on_a { &mut a } else { &mut b };
        for x in target[t..t + burst_len].iter_mut() {
            *x *= amp;
        }
        on_a = !on_a;
        t += period;
    }
    [Trace::new(a, 1.0), Trace::new(b, 1.0)]
}

/// Sustained shift: input 0 steps up and input 1 steps down at mid-run.
fn shifted_pair(q: f64, bins: usize) -> [Trace; 2] {
    let half = bins / 2;
    let mut a = vec![q; bins];
    let mut b = vec![q; bins];
    for x in a[half..].iter_mut() {
        *x *= 2.4;
    }
    for x in b[half..].iter_mut() {
        *x *= 0.2;
    }
    [Trace::new(a, 1.0), Trace::new(b, 1.0)]
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let graph = RandomTreeGenerator::paper_default(2, 14).generate(55);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);

    // Mean rates such that the steady total load is 38% of capacity: a
    // 3x burst on one input (that stream then carrying ~0.57 CPU) fits
    // easily when the stream is spread over both nodes (ROD) but
    // overloads the node hosting the whole stream under the Connected
    // plan — the paper's "a spike in an input rate cannot be shared"
    // failure, which the reactive balancer must then fix mid-burst.
    let unit = model.total_load(&model.variable_point(&[1.0, 1.0]));
    let q = 0.38 * cluster.total_capacity() / unit;

    let rod = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let connected = build_planner(&PlannerSpec::Connected { rates: vec![q, q] })
        .plan(&model, &cluster)
        .unwrap();

    let bins = 120usize;
    let scenarios: Vec<(&str, [Trace; 2])> = vec![
        ("short bursts", bursty_pair(q, bins, 10, 3, 3.0)),
        ("sustained shift", shifted_pair(q, bins)),
    ];

    let mut rows = Vec::new();
    let mut payload: Vec<Row> = Vec::new();
    for (scenario, traces) in &scenarios {
        let run = |plan: &Allocation, migration: Option<MigrationConfig>, seed: u64| {
            Simulation::new(
                &graph,
                plan,
                &cluster,
                traces
                    .iter()
                    .cloned()
                    .map(SourceSpec::TraceDriven)
                    .collect(),
                SimulationConfig {
                    horizon: bins as f64,
                    warmup: 5.0,
                    seed,
                    migration,
                    max_queue: 500_000,
                    ..SimulationConfig::default()
                },
            )
            .run()
        };
        let runs = [
            ("ROD (static)", run(&rod, None, 1)),
            ("Connected (static)", run(&connected, None, 1)),
            (
                "Connected + dynamic migration",
                run(
                    &connected,
                    Some(MigrationConfig {
                        check_interval: 1.0,
                        utilisation_trigger: 0.8,
                        imbalance_trigger: 0.15,
                        base_downtime: 0.3,
                        per_item_downtime: 1e-4,
                        pinned: Vec::new(),
                    }),
                    1,
                ),
            ),
        ];
        for (name, report) in runs {
            rows.push(vec![
                scenario.to_string(),
                name.to_string(),
                report.mean_latency().map_or("-".into(), |l| fmt(l * 1e3)),
                report
                    .latencies
                    .quantile(0.99)
                    .map_or("-".into(), |l| fmt(l * 1e3)),
                fmt(report.max_utilisation()),
                report.migrations.to_string(),
                fmt(report.migration_downtime),
                report.saturated.to_string(),
            ]);
            payload.push(Row {
                scenario: scenario.to_string(),
                plan: name.to_string(),
                mean_latency_ms: report.mean_latency().map(|l| l * 1e3),
                p99_latency_ms: report.latencies.quantile(0.99).map(|l| l * 1e3),
                max_utilisation: report.max_utilisation(),
                migrations: report.migrations,
                migration_downtime_s: report.migration_downtime,
                saturated: report.saturated,
            });
        }
    }

    print_table(
        "Static ROD vs static Connected vs reactive migration",
        &[
            "scenario",
            "plan",
            "mean lat (ms)",
            "p99 (ms)",
            "max util",
            "migrations",
            "downtime (s)",
            "saturated",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: under short bursts, migration reacts too late and \
         pays freeze\ntime — static ROD has the best latency with zero moves. \
         Under a sustained shift,\nmigration recovers most of the gap for the \
         stale Connected plan; ROD still needs no moves."
    );
    write_json("exp_dynamic_vs_static", &payload);
    exp.finish();
}
