//! **Closed-loop online replanning \[reconstructed\]** — what the `rodd`
//! control loop buys over a static placement when load actually drifts.
//!
//! Three arms replay the same bursty two-stream ON/OFF trace:
//!
//! * **static connected** — a calm-rate-aware baseline placement, frozen;
//! * **static ROD** — the paper's resilient placement, frozen;
//! * **rodd loop** — starts from the *connected* plan (the realistic
//!   deployment mistake) and lets the control loop detect drift, replan
//!   under guard, and migrate.
//!
//! Per arm we count the steps whose true rates overload the plan in
//! force at that step, plus the loop's own decision counters. Expected
//! shape: the connected plan drowns during bursts, static ROD mostly
//! rides them out, and the closed loop rescues itself from the bad
//! start — converging towards static-ROD robustness while making every
//! intervention visible.
//!
//! A second, **production-volume** section (§7.3 \[reconstructed\])
//! replays the same three plans through the batched discrete-event
//! engine on a two-stream ON/OFF trace at 1M tuples/s aggregate: the
//! planner-level overload counts above become measured sheds and
//! end-to-end latency quantiles. The rodd arm simulates the plan the
//! control loop converged to after watching the trace. Results go to
//! `results/exp_online_sim.json` (the planner-level rows keep their
//! original shape in `results/exp_online.json`).

use serde::Serialize;

use rod_bench::output::{print_table, write_json};
use rod_core::allocation::Allocation;
use rod_core::baselines::{build_planner, PlannerSpec};
use rod_core::cluster::Cluster;
use rod_core::graph::{GraphBuilder, QueryGraph};
use rod_core::load_model::LoadModel;
use rod_core::operator::OperatorKind;
use rod_core::rod::RodPlanner;
use rod_core::PlanEvaluator;
use rod_ctrl::{ControlConfig, ControlLoop, Decision};
use rod_sim::{BatchConfig, SimReport, Simulation, SimulationConfig, SourceSpec};
use rod_traces::{OnOffAggregate, Trace};
use rod_workloads::RandomTreeGenerator;

const NODES: usize = 3;
const STEPS: usize = 400;

/// Production-volume cell: mean rate per stream (two streams, so the
/// aggregate meets the 1M-tuples/s bar of §7.3 \[reconstructed\]).
const SIM_MEAN_RATE: f64 = 5e5;
/// Simulated horizon in seconds (~10M source tuples across the run).
const SIM_HORIZON: f64 = 10.0;
/// Ops per pipeline. Six per chain keeps each op's load well under the
/// Connected planner's per-node fair share, so its connected-growth
/// step actually fires and stacks chain segments — the paper's §7.2
/// failure mode. (With chunkier ops every planner degenerates to the
/// same round-robin spread and the arms can't differ.)
const SIM_CHAIN_OPS: usize = 6;
/// Per-tuple cost of each pipeline operator: a 6-map chain costs
/// `1.38e-6 s` of CPU per stream tuple, so the cluster idles at 0.46
/// mean utilisation — calm for a balanced plan, past capacity when a
/// 2.5× burst lands on a node carrying most of one stream's chain.
const SIM_OP_COST: f64 = 2.3e-7;

#[derive(Serialize)]
struct Row {
    arm: String,
    steps: usize,
    infeasible_steps: usize,
    worst_peak_utilisation: f64,
    mean_peak_utilisation: f64,
    replans_triggered: u64,
    plans_committed: u64,
    migrations_retried: u64,
    sheds_advised: usize,
    final_degradation_level: String,
}

fn peak(ev: &PlanEvaluator, alloc: &Allocation, rates: &[f64]) -> f64 {
    ev.utilisations_at(alloc, rates)
        .as_slice()
        .iter()
        .fold(0.0f64, |a, &b| a.max(b))
}

/// Scale `s` such that `peak(alloc, s * dir) == target`.
fn scale_to(ev: &PlanEvaluator, alloc: &Allocation, dir: &[f64], target: f64) -> f64 {
    let at_one = peak(ev, alloc, dir);
    assert!(at_one > 0.0, "direction produces no load");
    // Utilisation is linear in the rate vector, so one probe suffices.
    target / at_one
}

#[derive(Serialize)]
struct SimRow {
    arm: String,
    tuples_in: u64,
    tuples_out: u64,
    tuples_shed: u64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    max_utilisation: f64,
}

/// Two 6-map pipelines (one per input stream) — the smallest graph on
/// which Connected (chain segments stacked per node) and ROD (each
/// stream spread over all nodes) genuinely disagree, with costs sized
/// for 1M tuples/s.
fn sim_graph() -> QueryGraph {
    let mut b = GraphBuilder::new();
    for input in 0..2 {
        let mut up = b.add_input();
        for j in 0..SIM_CHAIN_OPS {
            let (_, s) = b
                .add_operator(
                    format!("p{input}m{j}"),
                    OperatorKind::map(SIM_OP_COST),
                    &[up],
                )
                .unwrap();
            up = s;
        }
    }
    b.build().unwrap()
}

/// Replays `alloc` through the batched engine on the trace pair at
/// production volume and reduces the report to the row the experiment
/// compares. Queues are bounded by load shedding, so an overloaded arm
/// shows up as sheds and fat latency tails rather than a dead run.
fn sim_row(name: &str, graph: &QueryGraph, alloc: &Allocation, traces: &[Trace; 2]) -> SimRow {
    let cluster = Cluster::homogeneous(NODES, 1.0);
    let report: SimReport = Simulation::new(
        graph,
        alloc,
        &cluster,
        traces
            .iter()
            .map(|t| SourceSpec::TraceDriven(t.clone()))
            .collect(),
        SimulationConfig {
            horizon: SIM_HORIZON,
            warmup: 1.0,
            seed: 2006,
            max_queue: 100_000_000,
            shed_above: Some(50_000),
            batch: Some(BatchConfig::default()),
            ..SimulationConfig::default()
        },
    )
    .run();
    assert!(!report.saturated, "{name}: shedding failed to bound queues");
    SimRow {
        arm: name.to_string(),
        tuples_in: report.tuples_in,
        tuples_out: report.tuples_out,
        tuples_shed: report.tuples_shed,
        p50_latency_ms: report.latency_quantile(0.5).unwrap_or(0.0) * 1e3,
        p99_latency_ms: report.latency_quantile(0.99).unwrap_or(0.0) * 1e3,
        max_utilisation: report.utilisations.iter().fold(0.0f64, |a, &b| a.max(b)),
    }
}

fn static_row(name: &str, ev: &PlanEvaluator, alloc: &Allocation, rates: &[Vec<f64>]) -> Row {
    let peaks: Vec<f64> = rates.iter().map(|r| peak(ev, alloc, r)).collect();
    Row {
        arm: name.to_string(),
        steps: peaks.len(),
        infeasible_steps: peaks.iter().filter(|&&p| p > 1.0).count(),
        worst_peak_utilisation: peaks.iter().fold(0.0f64, |a, &b| a.max(b)),
        mean_peak_utilisation: peaks.iter().sum::<f64>() / peaks.len() as f64,
        replans_triggered: 0,
        plans_committed: 0,
        migrations_retried: 0,
        sheds_advised: 0,
        final_degradation_level: "-".to_string(),
    }
}

fn main() {
    let _exp = rod_bench::output::Experiment::start();
    let graph = RandomTreeGenerator::paper_default(2, 12).generate(42);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(NODES, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);

    // Bursty inputs: two independent heavy-tailed ON/OFF aggregates.
    // Few sources + heavy tail = genuinely bursty aggregate (peak
    // several times the mean); many sources would smooth it back out.
    let onoff = OnOffAggregate {
        sources: 6,
        alpha: 1.2,
        min_period: 4.0,
        on_rate: 1.0,
        bins: STEPS,
        dt: 1.0,
    };
    let traces = [onoff.generate(11), onoff.generate(13)];
    let means: Vec<f64> = traces
        .iter()
        .map(|t| t.rates().iter().sum::<f64>() / t.rates().len() as f64)
        .collect();

    // Baseline: the connected-load planner tuned to the calm mean point.
    let rod_alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let connected_alloc = build_planner(&PlannerSpec::Connected {
        rates: means.clone(),
    })
    .plan(&model, &cluster)
    .unwrap();

    // Scale the trace so the connected plan runs at 70% peak utilisation
    // at the mean point — bursts (2-3x the mean) then push past 100%.
    let s = scale_to(&ev, &connected_alloc, &means, 0.70);
    let rates: Vec<Vec<f64>> = (0..STEPS)
        .map(|t| traces.iter().map(|tr| tr.rates()[t] * s).collect())
        .collect();

    let mut rows = vec![
        static_row("static-connected", &ev, &connected_alloc, &rates),
        static_row("static-rod", &ev, &rod_alloc, &rates),
    ];

    // Closed loop, seeded with the connected plan.
    let mut loop_ = ControlLoop::new(
        LoadModel::derive(&graph).unwrap(),
        cluster.clone(),
        connected_alloc.clone(),
        ControlConfig::default(),
    )
    .unwrap();
    let mut peaks = Vec::with_capacity(STEPS);
    for (t, r) in rates.iter().enumerate() {
        // Report the utilisations the plan currently in force would see —
        // the loop replans off its own EWMA estimate, not this snapshot.
        let utils: Vec<f64> = ev.utilisations_at(loop_.current(), r).as_slice().to_vec();
        loop_.observe_sample(t as f64 + 1.0, &utils, r);
        peaks.push(peak(&ev, loop_.current(), r));
    }
    let summary = loop_.summary();
    let sheds = loop_
        .decisions()
        .iter()
        .filter(|d| matches!(d, Decision::ShedAdvised { .. }))
        .count();
    rows.push(Row {
        arm: "rodd-loop".to_string(),
        steps: peaks.len(),
        infeasible_steps: peaks.iter().filter(|&&p| p > 1.0).count(),
        worst_peak_utilisation: peaks.iter().fold(0.0f64, |a, &b| a.max(b)),
        mean_peak_utilisation: peaks.iter().sum::<f64>() / peaks.len() as f64,
        replans_triggered: summary.replans_triggered,
        plans_committed: summary.plans_committed,
        migrations_retried: summary.migrations_retried,
        sheds_advised: sheds,
        final_degradation_level: format!("{}", summary.degradation_level),
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.arm.clone(),
                format!("{}/{}", r.infeasible_steps, r.steps),
                format!("{:.3}", r.worst_peak_utilisation),
                format!("{:.3}", r.mean_peak_utilisation),
                r.replans_triggered.to_string(),
                r.plans_committed.to_string(),
                r.sheds_advised.to_string(),
            ]
        })
        .collect();
    print_table(
        "Online replanning on a bursty ON/OFF trace (24 ops, 2 streams, 3 nodes)",
        &[
            "arm",
            "overloaded",
            "worst peak",
            "mean peak",
            "replans",
            "commits",
            "sheds",
        ],
        &table,
    );
    println!(
        "\nExpected shape: static-connected overloads during bursts; static \
         ROD rides most of them out;\nthe rodd loop starts from the connected \
         plan, rescues itself after the first drift, and ends\nnear static-ROD \
         robustness with every replan, commit, and shed accounted for."
    );
    write_json("exp_online", &rows);

    // ---- Production-volume cell (§7.3 [reconstructed]) ----
    //
    // Same three arms, but now the plans are *executed*: the batched
    // engine replays a bursty two-stream ON/OFF trace at 1M tuples/s
    // aggregate through each placement and measures what the planner
    // rows above only predict.
    let sim_graph = sim_graph();
    let sim_model = LoadModel::derive(&sim_graph).unwrap();
    let sim_ev = PlanEvaluator::new(&sim_model, &cluster);
    // Three heavy-tailed sources per stream: few enough that a burst
    // reaches ~2.4× the mean inside the short simulated window. Seeds
    // picked for the experiment's shape — stream A stays calm (peak
    // 1.4×) while stream B bursts to 2.4× for a few seconds, which
    // overloads the stacked Connected plan (hot node ≈ 1.1) yet stays
    // inside the ideal feasible region (total ≈ 2.3 of 3.0), so a
    // balanced plan rides it out.
    let sim_onoff = OnOffAggregate {
        sources: 3,
        alpha: 1.2,
        min_period: 4.0,
        on_rate: 1.0,
        bins: SIM_HORIZON.ceil() as usize + 1,
        dt: 1.0,
    };
    let sim_traces = [
        sim_onoff.generate(13).with_mean(SIM_MEAN_RATE),
        sim_onoff.generate(21).with_mean(SIM_MEAN_RATE),
    ];
    // Plan against the *nominal* provisioned rate, not the measured
    // trace means: `with_mean` leaves ~1e-10 of floating-point residue,
    // and feeding that into the planner flips its equal-load tie-breaks
    // — the plan would then depend on rounding noise rather than on
    // anything the baseline planner actually knows.
    let sim_connected = build_planner(&PlannerSpec::Connected {
        rates: vec![SIM_MEAN_RATE; 2],
    })
    .plan(&sim_model, &cluster)
    .unwrap();
    let sim_rod = RodPlanner::new()
        .place(&sim_model, &cluster)
        .unwrap()
        .allocation;

    // The rodd arm: seed the loop with the connected plan, let it watch
    // the trace (cycled so the EWMA estimator has time to converge, as
    // it would over repeated diurnal traffic), and simulate the plan it
    // settles on.
    let mut sim_loop = ControlLoop::new(
        LoadModel::derive(&sim_graph).unwrap(),
        cluster.clone(),
        sim_connected.clone(),
        ControlConfig::default(),
    )
    .unwrap();
    let sim_bins = sim_traces[0].rates().len();
    for t in 0..sim_bins * 10 {
        let r: Vec<f64> = sim_traces
            .iter()
            .map(|tr| tr.rates()[t % sim_bins])
            .collect();
        let utils: Vec<f64> = sim_ev
            .utilisations_at(sim_loop.current(), &r)
            .as_slice()
            .to_vec();
        sim_loop.observe_sample(t as f64 + 1.0, &utils, &r);
    }
    let sim_rodd = sim_loop.current().clone();

    let sim_rows = vec![
        sim_row("static-connected", &sim_graph, &sim_connected, &sim_traces),
        sim_row("static-rod", &sim_graph, &sim_rod, &sim_traces),
        sim_row("rodd-final-plan", &sim_graph, &sim_rodd, &sim_traces),
    ];
    let sim_table: Vec<Vec<String>> = sim_rows
        .iter()
        .map(|r| {
            vec![
                r.arm.clone(),
                r.tuples_in.to_string(),
                r.tuples_out.to_string(),
                r.tuples_shed.to_string(),
                format!("{:.2}", r.p50_latency_ms),
                format!("{:.2}", r.p99_latency_ms),
                format!("{:.3}", r.max_utilisation),
            ]
        })
        .collect();
    print_table(
        "Production volume: batched engine, 2 streams @ 500k tuples/s mean each",
        &[
            "arm",
            "tuples in",
            "tuples out",
            "shed",
            "p50 ms",
            "p99 ms",
            "max util",
        ],
        &sim_table,
    );
    println!(
        "\nThe simulated cell executes the plans the first table only scores: \
         overload becomes\nmeasured sheds and p99 latency. The rodd arm runs \
         the plan the loop converged to after\nwatching the trace from the \
         connected start."
    );
    write_json("exp_online_sim", &sim_rows);
}
