//! **Closed-loop online replanning \[reconstructed\]** — what the `rodd`
//! control loop buys over a static placement when load actually drifts.
//!
//! Three arms replay the same bursty two-stream ON/OFF trace:
//!
//! * **static connected** — a calm-rate-aware baseline placement, frozen;
//! * **static ROD** — the paper's resilient placement, frozen;
//! * **rodd loop** — starts from the *connected* plan (the realistic
//!   deployment mistake) and lets the control loop detect drift, replan
//!   under guard, and migrate.
//!
//! Per arm we count the steps whose true rates overload the plan in
//! force at that step, plus the loop's own decision counters. Expected
//! shape: the connected plan drowns during bursts, static ROD mostly
//! rides them out, and the closed loop rescues itself from the bad
//! start — converging towards static-ROD robustness while making every
//! intervention visible.

use serde::Serialize;

use rod_bench::output::{print_table, write_json};
use rod_core::allocation::Allocation;
use rod_core::baselines::{build_planner, PlannerSpec};
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::rod::RodPlanner;
use rod_core::PlanEvaluator;
use rod_ctrl::{ControlConfig, ControlLoop, Decision};
use rod_traces::OnOffAggregate;
use rod_workloads::RandomTreeGenerator;

const NODES: usize = 3;
const STEPS: usize = 400;

#[derive(Serialize)]
struct Row {
    arm: String,
    steps: usize,
    infeasible_steps: usize,
    worst_peak_utilisation: f64,
    mean_peak_utilisation: f64,
    replans_triggered: u64,
    plans_committed: u64,
    migrations_retried: u64,
    sheds_advised: usize,
    final_degradation_level: String,
}

fn peak(ev: &PlanEvaluator, alloc: &Allocation, rates: &[f64]) -> f64 {
    ev.utilisations_at(alloc, rates)
        .as_slice()
        .iter()
        .fold(0.0f64, |a, &b| a.max(b))
}

/// Scale `s` such that `peak(alloc, s * dir) == target`.
fn scale_to(ev: &PlanEvaluator, alloc: &Allocation, dir: &[f64], target: f64) -> f64 {
    let at_one = peak(ev, alloc, dir);
    assert!(at_one > 0.0, "direction produces no load");
    // Utilisation is linear in the rate vector, so one probe suffices.
    target / at_one
}

fn static_row(name: &str, ev: &PlanEvaluator, alloc: &Allocation, rates: &[Vec<f64>]) -> Row {
    let peaks: Vec<f64> = rates.iter().map(|r| peak(ev, alloc, r)).collect();
    Row {
        arm: name.to_string(),
        steps: peaks.len(),
        infeasible_steps: peaks.iter().filter(|&&p| p > 1.0).count(),
        worst_peak_utilisation: peaks.iter().fold(0.0f64, |a, &b| a.max(b)),
        mean_peak_utilisation: peaks.iter().sum::<f64>() / peaks.len() as f64,
        replans_triggered: 0,
        plans_committed: 0,
        migrations_retried: 0,
        sheds_advised: 0,
        final_degradation_level: "-".to_string(),
    }
}

fn main() {
    let _exp = rod_bench::output::Experiment::start();
    let graph = RandomTreeGenerator::paper_default(2, 12).generate(42);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(NODES, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);

    // Bursty inputs: two independent heavy-tailed ON/OFF aggregates.
    // Few sources + heavy tail = genuinely bursty aggregate (peak
    // several times the mean); many sources would smooth it back out.
    let onoff = OnOffAggregate {
        sources: 6,
        alpha: 1.2,
        min_period: 4.0,
        on_rate: 1.0,
        bins: STEPS,
        dt: 1.0,
    };
    let traces = [onoff.generate(11), onoff.generate(13)];
    let means: Vec<f64> = traces
        .iter()
        .map(|t| t.rates().iter().sum::<f64>() / t.rates().len() as f64)
        .collect();

    // Baseline: the connected-load planner tuned to the calm mean point.
    let rod_alloc = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let connected_alloc = build_planner(&PlannerSpec::Connected {
        rates: means.clone(),
    })
    .plan(&model, &cluster)
    .unwrap();

    // Scale the trace so the connected plan runs at 70% peak utilisation
    // at the mean point — bursts (2-3x the mean) then push past 100%.
    let s = scale_to(&ev, &connected_alloc, &means, 0.70);
    let rates: Vec<Vec<f64>> = (0..STEPS)
        .map(|t| traces.iter().map(|tr| tr.rates()[t] * s).collect())
        .collect();

    let mut rows = vec![
        static_row("static-connected", &ev, &connected_alloc, &rates),
        static_row("static-rod", &ev, &rod_alloc, &rates),
    ];

    // Closed loop, seeded with the connected plan.
    let mut loop_ = ControlLoop::new(
        LoadModel::derive(&graph).unwrap(),
        cluster.clone(),
        connected_alloc.clone(),
        ControlConfig::default(),
    )
    .unwrap();
    let mut peaks = Vec::with_capacity(STEPS);
    for (t, r) in rates.iter().enumerate() {
        // Report the utilisations the plan currently in force would see —
        // the loop replans off its own EWMA estimate, not this snapshot.
        let utils: Vec<f64> = ev.utilisations_at(loop_.current(), r).as_slice().to_vec();
        loop_.observe_sample(t as f64 + 1.0, &utils, r);
        peaks.push(peak(&ev, loop_.current(), r));
    }
    let summary = loop_.summary();
    let sheds = loop_
        .decisions()
        .iter()
        .filter(|d| matches!(d, Decision::ShedAdvised { .. }))
        .count();
    rows.push(Row {
        arm: "rodd-loop".to_string(),
        steps: peaks.len(),
        infeasible_steps: peaks.iter().filter(|&&p| p > 1.0).count(),
        worst_peak_utilisation: peaks.iter().fold(0.0f64, |a, &b| a.max(b)),
        mean_peak_utilisation: peaks.iter().sum::<f64>() / peaks.len() as f64,
        replans_triggered: summary.replans_triggered,
        plans_committed: summary.plans_committed,
        migrations_retried: summary.migrations_retried,
        sheds_advised: sheds,
        final_degradation_level: format!("{}", summary.degradation_level),
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.arm.clone(),
                format!("{}/{}", r.infeasible_steps, r.steps),
                format!("{:.3}", r.worst_peak_utilisation),
                format!("{:.3}", r.mean_peak_utilisation),
                r.replans_triggered.to_string(),
                r.plans_committed.to_string(),
                r.sheds_advised.to_string(),
            ]
        })
        .collect();
    print_table(
        "Online replanning on a bursty ON/OFF trace (24 ops, 2 streams, 3 nodes)",
        &[
            "arm",
            "overloaded",
            "worst peak",
            "mean peak",
            "replans",
            "commits",
            "sheds",
        ],
        &table,
    );
    println!(
        "\nExpected shape: static-connected overloads during bursts; static \
         ROD rides most of them out;\nthe rodd loop starts from the connected \
         plan, rescues itself after the first drift, and ends\nnear static-ROD \
         robustness with every replan, commit, and shed accounted for."
    );
    write_json("exp_online", &rows);
}
