//! **§6.3 operator-clustering experiment \[reconstructed\]**.
//!
//! When per-tuple communication CPU cost is not negligible, §6.3
//! prescribes a clustering preprocessing step: sweep clustering-ratio
//! thresholds under the two greedy policies (largest-ratio and
//! min-weight), run ROD on each clustering, and "pick the one with the
//! maximum plane distance". This binary reports the full sweep — the
//! resiliency / communication trade-off — and then validates the winner
//! in the simulator with nonzero send/receive CPU costs.

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_core::allocation::PlanEvaluator;
use rod_core::cluster::Cluster;
use rod_core::clustering::{ArcCosts, ClusteringSearch};
use rod_core::load_model::LoadModel;
use rod_core::metrics::{feasible_ratio, make_estimator};
use rod_core::rod::RodPlanner;
use rod_sim::{NetworkConfig, Simulation, SimulationConfig, SourceSpec};
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct ClusterRow {
    policy: String,
    threshold: f64,
    clusters: usize,
    internode_arcs: usize,
    min_plane_distance: f64,
    feasible_ratio: f64,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let inputs = 3;
    let graph = RandomTreeGenerator::paper_default(inputs, 12).generate(63);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let estimator = make_estimator(&model, &cluster, 30_000, 63);

    // Communication CPU cost comparable to the median processing cost —
    // the regime where clustering matters.
    let arc_costs = ArcCosts::uniform(3e-4);

    let search = ClusteringSearch::default();
    let candidates = search.run(&model, &cluster, &arc_costs).unwrap();

    let unclustered = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let mut rows = vec![vec![
        "none (plain ROD)".to_string(),
        "-".to_string(),
        model.num_operators().to_string(),
        ev.internode_arcs(&unclustered).to_string(),
        fmt(ev.min_plane_distance(&unclustered)),
        fmt(feasible_ratio(&ev, &estimator, &unclustered)),
    ]];
    let mut payload = Vec::new();
    for c in &candidates {
        rows.push(vec![
            format!("{:?}", c.policy),
            fmt(c.threshold),
            c.clustering.num_clusters().to_string(),
            c.internode_arcs.to_string(),
            fmt(c.min_plane_distance),
            fmt(feasible_ratio(&ev, &estimator, &c.allocation)),
        ]);
        payload.push(ClusterRow {
            policy: format!("{:?}", c.policy),
            threshold: c.threshold,
            clusters: c.clustering.num_clusters(),
            internode_arcs: c.internode_arcs,
            min_plane_distance: c.min_plane_distance,
            feasible_ratio: feasible_ratio(&ev, &estimator, &c.allocation),
        });
    }
    print_table(
        "Clustering sweep (per-tuple transfer cost 0.3 ms)",
        &[
            "policy",
            "threshold",
            "clusters",
            "x-node arcs",
            "min plane dist",
            "feasible ratio",
        ],
        &rows,
    );

    // Simulator validation: with real network CPU costs, a clustered
    // plan should hit lower peak utilisation than plain ROD at the same
    // rates (it pays for fewer network hops). The sweep's plane-distance
    // winner may coincide with plain ROD at high thresholds, so compare
    // against the candidate that actually cuts arcs: fewest inter-node
    // arcs, plane distance breaking ties.
    let best = candidates
        .iter()
        .min_by(|a, b| {
            a.internode_arcs
                .cmp(&b.internode_arcs)
                .then(b.min_plane_distance.total_cmp(&a.min_plane_distance))
        })
        .expect("non-empty sweep");
    let unit_load = model.total_load(&model.variable_point(&vec![1.0; inputs]));
    let q = 0.55 * cluster.total_capacity() / unit_load;
    let run = |alloc: &rod_core::Allocation| {
        Simulation::new(
            &graph,
            alloc,
            &cluster,
            vec![SourceSpec::ConstantRate(q); inputs],
            SimulationConfig {
                horizon: 40.0,
                warmup: 8.0,
                seed: 17,
                network: NetworkConfig {
                    latency: 1e-3,
                    send_cpu_cost: 3e-4,
                    recv_cpu_cost: 3e-4,
                },
                ..SimulationConfig::default()
            },
        )
        .run()
    };
    let plain_report = run(&unclustered);
    let clustered_report = run(&best.allocation);
    print_table(
        "Simulator check with network CPU costs (send+recv 0.3 ms/tuple)",
        &["plan", "max utilisation", "mean latency (ms)"],
        &[
            vec![
                "plain ROD".into(),
                fmt(plain_report.max_utilisation()),
                plain_report
                    .mean_latency()
                    .map_or("-".into(), |l| fmt(l * 1e3)),
            ],
            vec![
                "best clustered".into(),
                fmt(clustered_report.max_utilisation()),
                clustered_report
                    .mean_latency()
                    .map_or("-".into(), |l| fmt(l * 1e3)),
            ],
        ],
    );
    println!(
        "\nExpected shape: aggressive clustering cuts inter-node arcs at \
         some cost in plane\ndistance; the sweep's winner balances the two; \
         with real transfer CPU costs the\nclustered plan's peak utilisation \
         beats plain ROD's."
    );
    write_json("exp_clustering", &payload);
    exp.finish();
}
