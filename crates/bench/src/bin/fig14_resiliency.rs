//! **Figure 14** — the base resiliency results.
//!
//! "Figure 14 shows the average feasible set size achieved by each
//! algorithm divided by the ideal feasible set size on query graphs with
//! different numbers of operators" (left panel), and the same ratios
//! normalised by ROD's (right panel). Setup per §7.1/§7.3.1: random
//! operator trees over five input streams, homogeneous nodes, ten runs
//! per randomised algorithm.
//!
//! Expected shape: ROD ≫ Correlation > {LLF, Random} > Connected; all
//! algorithms improve with more operators; ROD approaches the ideal.

use serde::Serialize;

use rod_bench::comparison::{compare_algorithms, ComparisonConfig};
use rod_bench::output::{fmt, print_table, write_json};
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_geom::rng::derive_seed;
use rod_geom::OnlineStats;
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct FigurePoint {
    operators: usize,
    algorithm: String,
    ratio_to_ideal: f64,
    ratio_to_rod: f64,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let inputs = 5;
    let nodes = 5;
    let graphs_per_size = 3; // independent random graphs averaged per size
    let operator_counts = [40usize, 80, 120, 160, 200];

    let mut rows_ideal = Vec::new();
    let mut rows_rod = Vec::new();
    let mut payload: Vec<FigurePoint> = Vec::new();

    // One task per (size, graph) pair, fanned out over worker threads.
    let tasks: Vec<(usize, usize)> = operator_counts
        .iter()
        .flat_map(|&m| (0..graphs_per_size).map(move |g| (m, g)))
        .collect();
    let task_results = rod_bench::parallel_map(tasks, 8, |(m, g)| {
        let graph = RandomTreeGenerator::paper_default(inputs, m / inputs)
            .generate(derive_seed(14, (m * 10 + g) as u64));
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let results = compare_algorithms(
            &model,
            &cluster,
            &ComparisonConfig {
                reps: 10,
                volume_samples: 20_000,
                seed: derive_seed(15, (m * 10 + g) as u64),
                ..ComparisonConfig::default()
            },
        );
        (m, results)
    });

    for &m in &operator_counts {
        // Accumulate per-algorithm stats over this size's random graphs.
        let mut acc: Vec<(String, OnlineStats)> = Vec::new();
        for (_, results) in task_results.iter().filter(|(tm, _)| *tm == m) {
            for r in results {
                match acc.iter_mut().find(|(n, _)| *n == r.name) {
                    Some((_, s)) => s.push(r.mean_ratio),
                    None => {
                        let mut s = OnlineStats::new();
                        s.push(r.mean_ratio);
                        acc.push((r.name.clone(), s));
                    }
                }
            }
        }
        let rod_ratio = acc
            .iter()
            .find(|(n, _)| n == "ROD")
            .expect("ROD ran")
            .1
            .mean();
        let mut row_i = vec![m.to_string()];
        let mut row_r = vec![m.to_string()];
        for (name, stats) in &acc {
            row_i.push(fmt(stats.mean()));
            if name != "ROD" {
                row_r.push(fmt(stats.mean() / rod_ratio));
            }
            payload.push(FigurePoint {
                operators: m,
                algorithm: name.clone(),
                ratio_to_ideal: stats.mean(),
                ratio_to_rod: stats.mean() / rod_ratio,
            });
        }
        rows_ideal.push(row_i);
        rows_rod.push(row_r);
    }

    print_table(
        "Figure 14 (left): avg feasible-set ratio A/Ideal vs #operators (d=5, n=5)",
        &["ops", "ROD", "Correlation", "LLF", "Random", "Connected"],
        &rows_ideal,
    );
    // Figure-style rendering of the left panel.
    let x_labels: Vec<String> = operator_counts.iter().map(|m| m.to_string()).collect();
    let algos = ["ROD", "Correlation", "LLF", "Random", "Connected"];
    let series: Vec<(&str, Vec<f64>)> = algos
        .iter()
        .map(|&name| {
            let ys = operator_counts
                .iter()
                .map(|&m| {
                    payload
                        .iter()
                        .find(|p| p.operators == m && p.algorithm == name)
                        .map_or(0.0, |p| p.ratio_to_ideal)
                })
                .collect();
            (name, ys)
        })
        .collect();
    println!(
        "\n{}",
        rod_bench::plot::line_chart("Figure 14 (left), rendered:", &x_labels, &series, 14)
    );
    print_table(
        "Figure 14 (right): avg feasible-set ratio A/ROD vs #operators",
        &["ops", "Correlation", "LLF", "Random", "Connected"],
        &rows_rod,
    );
    println!(
        "\nPaper shape: ROD significantly above all baselines at every size; \
         Connected worst\n(\"a spike in an input rate cannot be shared\"); \
         Correlation the best baseline;\neveryone improves with more \
         operators; ROD approaches the ideal."
    );
    write_json("fig14_resiliency", &payload);
    exp.finish();
}
