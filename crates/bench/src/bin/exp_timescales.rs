//! **Variation time-scale sweep \[reconstructed\]**.
//!
//! Figure 2's caption notes that "similar behaviour is observed at other
//! time-scales due to the self-similar nature of these workloads", and
//! §1 argues dynamic redistribution only pays off when variations are
//! "medium-to-long term". This experiment sweeps the *time scale* of the
//! same self-similar rate variation (by dyadic aggregation, which
//! preserves the amplitude of a self-similar series while stretching its
//! bursts) and measures, at each scale:
//!
//! * static ROD — expected flat: a static feasible set only cares about
//!   *which* rate points occur, not how fast they alternate;
//! * Connected + dynamic migration — expected to improve as bursts
//!   lengthen past the control period + migration downtime, exactly the
//!   §1 claim about medium/long-term variation.

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_core::allocation::Allocation;
use rod_core::baselines::{build_planner, PlannerSpec};
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::rod::RodPlanner;
use rod_sim::{MigrationConfig, Simulation, SimulationConfig, SourceSpec};
use rod_traces::selfsimilar::BModel;
use rod_traces::Trace;
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct Row {
    burst_scale_s: f64,
    plan: String,
    mean_latency_ms: Option<f64>,
    p99_latency_ms: Option<f64>,
    migrations: u64,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let inputs = 2;
    let graph = RandomTreeGenerator::paper_default(inputs, 14).generate(123);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let unit = model.total_load(&model.variable_point(&[1.0, 1.0]));
    let q = 0.40 * cluster.total_capacity() / unit;

    // Fine-grained self-similar carriers: 1024 bins of 0.25 s = 256 s.
    let base: Vec<Trace> = (0..inputs)
        .map(|k| {
            BModel::new(0.72, 10, 1.0, 0.25)
                .generate(1000 + k as u64)
                .normalised()
                .with_cov(0.45)
                .with_mean(q)
        })
        .collect();

    let rod = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    let connected = build_planner(&PlannerSpec::Connected { rates: vec![q, q] })
        .plan(&model, &cluster)
        .unwrap();

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for aggregate in [1usize, 4, 16, 64] {
        // Aggregating and re-spreading over the same wall-clock duration
        // stretches each burst by the factor while (self-similarity)
        // keeping the amplitude comparable.
        let traces: Vec<Trace> = base.iter().map(|t| t.aggregate(aggregate)).collect();
        let horizon = traces[0].duration();
        let burst_scale = 0.25 * aggregate as f64;

        let run = |plan: &Allocation, migration: Option<MigrationConfig>| {
            Simulation::new(
                &graph,
                plan,
                &cluster,
                traces
                    .iter()
                    .cloned()
                    .map(SourceSpec::TraceDriven)
                    .collect(),
                SimulationConfig {
                    horizon,
                    warmup: horizon * 0.05,
                    seed: 9,
                    migration,
                    max_queue: 500_000,
                    ..SimulationConfig::default()
                },
            )
            .run()
        };
        let runs = [
            ("ROD static", run(&rod, None)),
            (
                "Connected + dynamic",
                run(
                    &connected,
                    Some(MigrationConfig {
                        check_interval: 1.0,
                        utilisation_trigger: 0.8,
                        imbalance_trigger: 0.15,
                        base_downtime: 0.3,
                        per_item_downtime: 1e-4,
                        pinned: Vec::new(),
                    }),
                ),
            ),
        ];
        for (name, report) in runs {
            rows.push(vec![
                fmt(burst_scale),
                name.to_string(),
                report.mean_latency().map_or("-".into(), |l| fmt(l * 1e3)),
                report
                    .latencies
                    .quantile(0.99)
                    .map_or("-".into(), |l| fmt(l * 1e3)),
                report.migrations.to_string(),
            ]);
            payload.push(Row {
                burst_scale_s: burst_scale,
                plan: name.to_string(),
                mean_latency_ms: report.mean_latency().map(|l| l * 1e3),
                p99_latency_ms: report.latencies.quantile(0.99).map(|l| l * 1e3),
                migrations: report.migrations,
            });
        }
    }

    print_table(
        "Latency vs variation time-scale (same self-similar variation, stretched)",
        &[
            "burst scale (s)",
            "plan",
            "mean lat (ms)",
            "p99 (ms)",
            "migrations",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: ROD's latency is roughly flat across scales \
         (static resilience is\ntime-scale free). The reactive plan is \
         worst at sub-second bursts (reacts too\nlate, §1's claim) and \
         closes the gap as bursts stretch into the medium term."
    );
    write_json("exp_timescales", &payload);
    exp.finish();
}
