//! **Simulator performance trajectory** — times the per-tuple reference
//! engine against the batched engine (`rod_sim::batched`) at
//! production-volume rates and records the repo's persistent simulator
//! perf baseline.
//!
//! Each grid cell fixes a workload (a map chain at a constant Poisson
//! rate, or a bursty self-similar ON/OFF trace) and runs it on both
//! engines over `repeats` repetitions, keeping median wall times. The
//! headline column is `batch_speedup` — batched tuples/sec over
//! reference tuples/sec on the same machine, so the number is a
//! machine-relative ratio like `perf_planner`'s speedups and stays
//! comparable across runner hardware.
//!
//! Every repetition cross-checks the engines: the batched run must see
//! exactly the reference's arrival count (identical source RNG draws)
//! and deliver the same tuples within a small horizon-edge tolerance —
//! the perf numbers can never come from an engine that dropped work.
//!
//! Results go to `BENCH_sim.json` at the repo root (schema in
//! `docs/benchmarks.md`). Flags, mirroring `perf_planner`:
//!
//! * `--quick` — subset of the grid, fewer repeats (CI smoke mode);
//! * `--out FILE` — write somewhere else (CI writes a scratch copy);
//! * `--check FILE` — compare against a committed baseline and exit
//!   non-zero when any cell's `batch_speedup` regressed by more than 2×,
//!   or fell below the cell's hard floor (the ≥10× acceptance bar on
//!   the 1M-tuples/s cell).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use rod_bench::output::{arg_value, print_table};
use rod_core::allocation::Allocation;
use rod_core::cluster::Cluster;
use rod_core::graph::{GraphBuilder, QueryGraph};
use rod_core::ids::{NodeId, OperatorId};
use rod_core::operator::OperatorKind;
use rod_sim::{BatchConfig, SimReport, Simulation, SimulationConfig, SourceSpec};
use rod_traces::OnOffAggregate;

/// Schema version of `BENCH_sim.json`; bump on breaking layout changes
/// and teach `--check` the migration.
const SCHEMA_VERSION: u32 = 1;

/// Run seed — fixed so the trajectory tracks code, not instances.
const SEED: u64 = 42;

#[derive(Clone, Copy)]
enum Load {
    /// Constant-rate Poisson arrivals at `rate` tuples/s.
    Constant { rate: f64 },
    /// A self-similar ON/OFF aggregate scaled to `mean` tuples/s.
    OnOff { mean: f64 },
}

#[derive(Clone, Copy)]
struct Cell {
    name: &'static str,
    load: Load,
    horizon: f64,
    /// Per-tuple cost of each chain operator (three operators over two
    /// nodes; sized so the busiest node stays clearly under capacity).
    op_cost: f64,
    /// Included in `--quick` runs (must stay a subset of the full grid
    /// with identical parameters so `--check` can match cells by name).
    quick: bool,
    /// Hard floor on `batch_speedup` under `--check`; zero = ratio-only.
    min_speedup: f64,
}

const GRID: &[Cell] = &[
    Cell {
        name: "chain_100k",
        load: Load::Constant { rate: 1e5 },
        horizon: 5.0,
        op_cost: 2e-6,
        quick: true,
        min_speedup: 0.0,
    },
    // The acceptance cell: ≥ 1M tuples/s with a ≥10× floor on the
    // batched engine's advantage.
    Cell {
        name: "chain_1m",
        load: Load::Constant { rate: 1e6 },
        horizon: 4.0,
        op_cost: 2e-7,
        quick: true,
        min_speedup: 10.0,
    },
    // Bursty self-similar ON/OFF aggregate at 500k mean tuples/s: the
    // §7.3 trace-driven regime, where batches form unevenly.
    Cell {
        name: "onoff_500k",
        load: Load::OnOff { mean: 5e5 },
        horizon: 10.0,
        op_cost: 4e-7,
        quick: false,
        min_speedup: 0.0,
    },
];

#[derive(Serialize, Deserialize)]
struct CellResult {
    name: String,
    /// Mean source rate (tuples/s) of the cell's workload.
    rate: f64,
    horizon_seconds: f64,
    /// Source tuples generated within the horizon (identical on both
    /// engines by construction).
    tuples: u64,
    reference_seconds: f64,
    batched_seconds: f64,
    reference_tuples_per_sec: f64,
    batched_tuples_per_sec: f64,
    /// The headline machine-relative ratio: batched over reference.
    batch_speedup: f64,
    max_batch: usize,
    bucket_seconds: f64,
}

#[derive(Serialize, Deserialize)]
struct BenchFile {
    schema_version: u32,
    created_unix: u64,
    rustc: String,
    commit: String,
    /// Logical cores of the recording machine (provenance; both engines
    /// are single-threaded, so the ratios do not depend on it).
    cores: usize,
    quick: bool,
    repeats: usize,
    seed: u64,
    grid: Vec<CellResult>,
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn tool_line(cmd: &str, args: &[&str]) -> String {
    Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Three-map chain spread over two nodes — the hot path is the event
/// engine, not operator logic, which is exactly what this bench times.
fn chain(op_cost: f64) -> (QueryGraph, Cluster, Allocation) {
    let mut b = GraphBuilder::new();
    let mut up = b.add_input();
    for j in 0..3 {
        let (_, s) = b
            .add_operator(format!("m{j}"), OperatorKind::map(op_cost), &[up])
            .unwrap();
        up = s;
    }
    let graph = b.build().unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let mut alloc = Allocation::new(3, 2);
    for j in 0..3 {
        alloc.assign(OperatorId(j), NodeId(j % 2));
    }
    (graph, cluster, alloc)
}

fn source(load: Load, horizon: f64) -> SourceSpec {
    match load {
        Load::Constant { rate } => SourceSpec::ConstantRate(rate),
        Load::OnOff { mean } => {
            let bins = horizon.ceil() as usize + 1;
            let trace = OnOffAggregate {
                sources: 6,
                alpha: 1.2,
                min_period: 4.0,
                on_rate: 1.0,
                bins,
                dt: 1.0,
            }
            .generate(11)
            .with_mean(mean);
            SourceSpec::TraceDriven(trace)
        }
    }
}

fn run_once(cell: &Cell, batch: Option<BatchConfig>) -> (SimReport, f64) {
    let (graph, cluster, alloc) = chain(cell.op_cost);
    let sim = Simulation::new(
        &graph,
        &alloc,
        &cluster,
        vec![source(cell.load, cell.horizon)],
        SimulationConfig {
            horizon: cell.horizon,
            warmup: 0.5,
            seed: SEED,
            max_queue: 100_000_000,
            batch,
            ..SimulationConfig::default()
        },
    );
    let t = Instant::now();
    let report = sim.run();
    (report, t.elapsed().as_secs_f64())
}

fn run_cell(cell: &Cell, repeats: usize) -> CellResult {
    let batch = BatchConfig::default();
    let mut ref_times = Vec::with_capacity(repeats);
    let mut bat_times = Vec::with_capacity(repeats);
    let mut tuples = 0u64;
    for _ in 0..repeats {
        let (ref_report, ref_s) = run_once(cell, None);
        let (bat_report, bat_s) = run_once(cell, Some(batch));
        // The perf numbers must come from engines doing the same work.
        assert_eq!(
            ref_report.tuples_in, bat_report.tuples_in,
            "{}: engines disagree on the arrival count",
            cell.name
        );
        assert!(!ref_report.saturated && !bat_report.saturated);
        let diff = ref_report.tuples_out.abs_diff(bat_report.tuples_out);
        assert!(
            (diff as f64) < 0.02 * ref_report.tuples_out as f64 + 2.0 * batch.max_batch as f64,
            "{}: tuples_out diverged ({} vs {})",
            cell.name,
            ref_report.tuples_out,
            bat_report.tuples_out
        );
        tuples = ref_report.tuples_in;
        ref_times.push(ref_s);
        bat_times.push(bat_s);
    }
    let ref_s = median(&mut ref_times);
    let bat_s = median(&mut bat_times);
    let rate = match cell.load {
        Load::Constant { rate } => rate,
        Load::OnOff { mean } => mean,
    };
    CellResult {
        name: cell.name.to_string(),
        rate,
        horizon_seconds: cell.horizon,
        tuples,
        reference_seconds: ref_s,
        batched_seconds: bat_s,
        reference_tuples_per_sec: tuples as f64 / ref_s,
        batched_tuples_per_sec: tuples as f64 / bat_s,
        batch_speedup: ref_s / bat_s,
        max_batch: batch.max_batch,
        bucket_seconds: batch.bucket,
    }
}

/// Trimmed view of a baseline cell — only what the checker compares
/// (the vendored serde shim ignores unknown fields, keeping `--check`
/// forward-compatible with later schema additions).
#[derive(Deserialize)]
struct BaselineCell {
    name: String,
    batch_speedup: f64,
}

#[derive(Deserialize)]
struct BaselineFile {
    schema_version: u32,
    grid: Vec<BaselineCell>,
}

/// Compares against a baseline; returns the regressed cell names. A
/// cell regresses when `baseline_speedup / current_speedup > 2.0`, or
/// when the current speedup falls under the cell's hard floor.
fn regressions(current: &BenchFile, baseline_path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline_path.display()));
    let baseline: BaselineFile = serde_json::from_str(&text).expect("baseline parses");
    assert!(
        baseline.schema_version >= 1 && baseline.schema_version <= SCHEMA_VERSION,
        "baseline schema version {} is not supported (expected 1..={SCHEMA_VERSION})",
        baseline.schema_version
    );
    let mut bad = Vec::new();
    for cur in &current.grid {
        if let Some(floor) = GRID
            .iter()
            .find(|c| c.name == cur.name)
            .map(|c| c.min_speedup)
        {
            if floor > 0.0 && cur.batch_speedup < floor {
                bad.push(format!(
                    "{}: batch speedup {:.2}x under the {floor:.0}x floor",
                    cur.name, cur.batch_speedup
                ));
                continue;
            }
        }
        let Some(base) = baseline.grid.iter().find(|b| b.name == cur.name) else {
            continue;
        };
        if base.batch_speedup <= 0.0 || cur.batch_speedup <= 0.0 {
            continue;
        }
        if base.batch_speedup / cur.batch_speedup > 2.0 {
            bad.push(format!(
                "{}: batch speedup {:.2}x vs baseline {:.2}x",
                cur.name, cur.batch_speedup, base.batch_speedup
            ));
        }
    }
    bad
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let repeats = if quick { 3 } else { 5 };
    let out = arg_value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("BENCH_sim.json"));

    let cells: Vec<&Cell> = GRID.iter().filter(|c| !quick || c.quick).collect();
    let mut grid = Vec::with_capacity(cells.len());
    for cell in cells {
        eprintln!("[perf_sim] {} ...", cell.name);
        grid.push(run_cell(cell, repeats));
    }

    let file = BenchFile {
        schema_version: SCHEMA_VERSION,
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        rustc: tool_line("rustc", &["--version"]),
        commit: tool_line(
            "git",
            &["-C", repo_root().to_str().unwrap(), "rev-parse", "HEAD"],
        ),
        cores: std::thread::available_parallelism().map_or(1, |p| p.get()),
        quick,
        repeats,
        seed: SEED,
        grid,
    };

    let rows: Vec<Vec<String>> = file
        .grid
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.0}k", c.rate / 1e3),
                c.tuples.to_string(),
                format!("{:.3}", c.reference_seconds),
                format!("{:.3}", c.batched_seconds),
                format!("{:.2}M", c.reference_tuples_per_sec / 1e6),
                format!("{:.2}M", c.batched_tuples_per_sec / 1e6),
                format!("{:.1}x", c.batch_speedup),
            ]
        })
        .collect();
    print_table(
        "simulator perf trajectory (medians)",
        &[
            "cell",
            "rate",
            "tuples",
            "ref s",
            "batch s",
            "ref tps",
            "batch tps",
            "speedup",
        ],
        &rows,
    );

    let json = serde_json::to_string_pretty(&file).expect("results serialise");
    std::fs::write(&out, json).expect("write bench file");
    println!("[bench written to {}]", out.display());

    if let Some(baseline) = arg_value("--check") {
        let bad = regressions(&file, Path::new(&baseline));
        if bad.is_empty() {
            println!("[check] no >2x speedup regressions vs {baseline}");
        } else {
            eprintln!("[check] PERF REGRESSION vs {baseline}:");
            for line in &bad {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
    }
}
