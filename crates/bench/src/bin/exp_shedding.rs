//! **Load shedding vs resilient placement \[reconstructed\]**.
//!
//! Aurora/Borealis systems shed load when queues overflow — trading
//! *result completeness* for bounded latency. Resilient placement
//! attacks the same overload problem from the other side: a larger
//! feasible set means the burst never overflows the queues in the first
//! place. This experiment runs identical bursty arrivals through ROD and
//! Connected placements with Borealis-style shedding enabled and counts
//! what each placement had to throw away.

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_core::allocation::Allocation;
use rod_core::cluster::Cluster;
use rod_core::graph::StreamSource;
use rod_core::ids::NodeId;
use rod_core::load_model::LoadModel;
use rod_core::rod::RodPlanner;
use rod_sim::{Simulation, SimulationConfig, SourceSpec};
use rod_traces::modulate::flash_crowd;
use rod_traces::Trace;
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct Row {
    plan: String,
    burst_amp: f64,
    tuples_in: u64,
    tuples_shed: u64,
    shed_fraction: f64,
    p99_latency_ms: Option<f64>,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    // Four small trees on two nodes: each chain fits under Connected's
    // fair-share cap, so Connected keeps chains whole (two streams
    // concentrated per node) while ROD spreads every stream.
    let inputs = 4;
    let graph = RandomTreeGenerator::paper_default(inputs, 8).generate(321);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let unit = model.total_load(&model.variable_point(&vec![1.0; inputs]));
    let q = 0.4 * cluster.total_capacity() / unit;

    let rod = RodPlanner::new()
        .place(&model, &cluster)
        .unwrap()
        .allocation;
    // The stream-concentrated plan — Example 2's plan (c) generalised:
    // whole trees per node (trees of inputs 0-1 on node 0, 2-3 on node
    // 1). This is what communication-minimising deployments produce and
    // what Fig. 14's Connected baseline tends toward.
    let mut concentrated = Allocation::new(model.num_operators(), 2);
    for op in graph.operators() {
        // Walk to the operator's root input.
        let mut stream = op.inputs[0];
        let input = loop {
            match graph.source_of(stream) {
                StreamSource::Input(k) => break k.index(),
                StreamSource::Operator(p) => stream = graph.operator(p).inputs[0],
            }
        };
        concentrated.assign(op.id, NodeId(input / 2));
    }

    let bins = 100usize;
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for amp in [3.0f64, 5.0, 9.0] {
        // A sustained flash crowd on input 0.
        let burst = Trace::constant(q, bins, 1.0).modulated(&flash_crowd(bins, 30, amp, 0.97));
        let steady = Trace::constant(q, bins, 1.0);
        for (name, alloc) in [("ROD", &rod), ("Chain-per-node", &concentrated)] {
            let report = Simulation::new(
                &graph,
                alloc,
                &cluster,
                {
                    let mut sources = vec![SourceSpec::TraceDriven(burst.clone())];
                    sources.extend((1..inputs).map(|_| SourceSpec::TraceDriven(steady.clone())));
                    sources
                },
                SimulationConfig {
                    horizon: bins as f64,
                    warmup: 5.0,
                    seed: 2,
                    shed_above: Some(800),
                    max_queue: 500_000,
                    ..SimulationConfig::default()
                },
            )
            .run();
            let shed_fraction =
                report.tuples_shed as f64 / (report.tuples_in + report.tuples_shed).max(1) as f64;
            rows.push(vec![
                name.to_string(),
                fmt(amp),
                report.tuples_in.to_string(),
                report.tuples_shed.to_string(),
                fmt(shed_fraction),
                report
                    .latencies
                    .quantile(0.99)
                    .map_or("-".into(), |l| fmt(l * 1e3)),
            ]);
            payload.push(Row {
                plan: name.to_string(),
                burst_amp: amp,
                tuples_in: report.tuples_in,
                tuples_shed: report.tuples_shed,
                shed_fraction,
                p99_latency_ms: report.latencies.quantile(0.99).map(|l| l * 1e3),
            });
        }
    }

    print_table(
        "Tuples shed under a sustained flash crowd (queue cap 800/node)",
        &[
            "plan",
            "burst x",
            "tuples in",
            "shed",
            "shed frac",
            "p99 (ms)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: at burst amplitudes inside ROD's feasible set \
         but outside the\nconcentrated plan's, ROD sheds nothing while the \
         chain-per-node plan drops\nresults; once the burst exceeds even the \
         ideal set both must shed, ROD less."
    );
    write_json("exp_shedding", &payload);
    exp.finish();
}
