//! **Heterogeneous clusters \[reconstructed\]**.
//!
//! §7.1: "Unless otherwise stated, we assume the system has homogeneous
//! nodes" — implying the machinery (and Theorem 1, which balances load
//! "in proportion to the nodes' CPU capacity") covers heterogeneous
//! clusters too. This experiment verifies that:
//!
//! 1. ROD's advantage over the baselines survives capacity skew;
//! 2. the weight matrix keeps per-node load shares proportional to
//!    `C_i / C_T` (utilisations stay balanced at a common rate point);
//! 3. resiliency degrades gracefully as skew grows at fixed total
//!    capacity (a skewed cluster has an inherently harder integral
//!    packing problem — fewer ways to split streams evenly).

use serde::Serialize;

use rod_bench::comparison::{compare_algorithms, ComparisonConfig};
use rod_bench::output::{fmt, print_table, write_json};
use rod_core::allocation::PlanEvaluator;
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::rod::RodPlanner;
use rod_geom::rng::derive_seed;
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct HeteroRow {
    skew: String,
    algorithm: String,
    mean_ratio: f64,
    utilisation_spread: f64,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let inputs = 4;
    // Four cluster shapes with equal total capacity 4.0.
    let shapes: Vec<(&str, Vec<f64>)> = vec![
        ("1:1:1:1", vec![1.0, 1.0, 1.0, 1.0]),
        ("2:1:0.5:0.5", vec![2.0, 1.0, 0.5, 0.5]),
        ("2.5:1:0.25:0.25", vec![2.5, 1.0, 0.25, 0.25]),
        ("3:0.4:0.3:0.3", vec![3.0, 0.4, 0.3, 0.3]),
    ];

    let graph = RandomTreeGenerator::paper_default(inputs, 20).generate(88);
    let model = LoadModel::derive(&graph).unwrap();

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for (label, caps) in &shapes {
        let cluster = Cluster::heterogeneous(caps.clone());
        let results = compare_algorithms(
            &model,
            &cluster,
            &ComparisonConfig {
                reps: 8,
                volume_samples: 25_000,
                seed: derive_seed(900, label.len() as u64),
                ..ComparisonConfig::default()
            },
        );
        // Utilisation spread of the ROD plan at the simplex centroid.
        let ev = PlanEvaluator::new(&model, &cluster);
        let rod = RodPlanner::new()
            .place(&model, &cluster)
            .unwrap()
            .allocation;
        let d = model.num_vars();
        let centroid: Vec<f64> = (0..inputs)
            .map(|k| cluster.total_capacity() / (model.total_coeffs()[k] * (d as f64 + 1.0)))
            .collect();
        let u = ev.utilisations_at(&rod, &centroid);
        let spread = u.max() - u.min();

        let mut row = vec![label.to_string()];
        for r in &results {
            row.push(fmt(r.mean_ratio));
            payload.push(HeteroRow {
                skew: label.to_string(),
                algorithm: r.name.clone(),
                mean_ratio: r.mean_ratio,
                utilisation_spread: spread,
            });
        }
        row.push(fmt(spread));
        rows.push(row);
    }

    print_table(
        "Heterogeneous clusters (total capacity fixed at 4.0), d=4, 80 ops",
        &[
            "capacities",
            "ROD",
            "Correlation",
            "LLF",
            "Random",
            "Connected",
            "ROD util spread",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: ROD leads every row; everyone degrades as skew \
         grows (harder\ninteger packing at fixed total capacity); ROD's \
         utilisations at the centroid stay\nroughly proportional to \
         capacity (small spread)."
    );
    write_json("exp_heterogeneous", &payload);
    exp.finish();
}
