//! **Planner performance trajectory** — times plan construction and
//! QMC volume estimation across instance sizes and records the repo's
//! persistent perf baseline.
//!
//! For each grid cell (d input streams × `ops_per_tree` operators each,
//! n nodes, P sample points) the harness generates the paper's random
//! tree workload, plans it with ROD, and times three things over
//! `repeats` runs, keeping medians:
//!
//! * `plan_seconds` — a full `RodPlanner::place` run,
//! * `scalar_estimate_seconds` — the reference per-point volume walk
//!   ([`VolumeEstimator::estimate_scalar`]),
//! * `kernel_estimate_seconds` — the batched
//!   [`FeasibilityKernel`](rod_geom::FeasibilityKernel) path on one
//!   thread.
//!
//! Every repetition asserts the two estimates are **bit-identical**; the
//! run aborts otherwise, so the perf numbers can never silently come
//! from a kernel that changed the numerics.
//!
//! Since schema v2 each cell also times the ResilientRod hill climb
//! twice — neighborhood scan serial (`threads: 1`) and pooled
//! (`threads: 4`) — and records `resilient_speedup` as their ratio.
//! The two placements are asserted bit-identical every repetition (the
//! pool's ordered-reduction contract), so the speedup column can never
//! come from a scan that changed the plan.
//!
//! Results go to `BENCH_planner.json` at the repo root (see
//! `docs/benchmarks.md` for the schema). Flags:
//!
//! * `--quick` — subset of the grid, fewer repeats (CI smoke mode);
//! * `--out FILE` — write somewhere else (CI writes a scratch copy);
//! * `--check FILE` — compare against a committed baseline and exit
//!   non-zero when any cell's kernel speedup — or, against a v2
//!   baseline, resilient speedup — regressed by more than 2×
//!   (speedups are machine-relative ratios, so the check is stable
//!   across runner hardware, unlike absolute times). v1 baselines are
//!   still accepted: the checker reads them through a trimmed legacy
//!   view and skips the columns they predate.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use rod_bench::output::{arg_value, fmt, print_table};
use rod_core::allocation::PlanEvaluator;
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::resilience::{ResilientRodOptions, ResilientRodPlanner};
use rod_core::rod::RodPlanner;
use rod_geom::VolumeEstimator;
use rod_workloads::random_graphs::RandomTreeGenerator;

/// Schema version of `BENCH_planner.json`; bump on breaking layout
/// changes and teach `--check` the migration.
///
/// v2 (this version) added per-cell ResilientRod hill-climb timings:
/// `threads`, `resilient_serial_seconds`, `resilient_pooled_seconds`,
/// `resilient_speedup`.
const SCHEMA_VERSION: u32 = 2;

/// Chunk count for the pooled ResilientRod timing leg.
const RESILIENT_THREADS: usize = 4;

/// Workload seed — fixed so the trajectory tracks code, not instances.
const WORKLOAD_SEED: u64 = 42;

/// QMC seed for the estimators.
const QMC_SEED: u64 = 7;

#[derive(Clone, Copy)]
struct Cell {
    name: &'static str,
    inputs: usize,
    ops_per_tree: usize,
    nodes: usize,
    samples: usize,
    /// Included in `--quick` runs (must stay a subset of the full grid
    /// with identical parameters, so `--check` can match cells by name).
    quick: bool,
}

const GRID: &[Cell] = &[
    Cell {
        name: "d2_n4",
        inputs: 2,
        ops_per_tree: 5,
        nodes: 4,
        samples: 50_000,
        quick: true,
    },
    Cell {
        name: "d4_n8",
        inputs: 4,
        ops_per_tree: 5,
        nodes: 8,
        samples: 50_000,
        quick: false,
    },
    Cell {
        name: "d6_n16",
        inputs: 6,
        ops_per_tree: 5,
        nodes: 16,
        samples: 100_000,
        quick: true,
    },
    Cell {
        name: "d8_n24",
        inputs: 8,
        ops_per_tree: 5,
        nodes: 24,
        samples: 100_000,
        quick: false,
    },
];

#[derive(Serialize, Deserialize)]
struct CellResult {
    name: String,
    inputs: usize,
    ops: usize,
    nodes: usize,
    samples: usize,
    plan_seconds: f64,
    scalar_estimate_seconds: f64,
    kernel_estimate_seconds: f64,
    kernel_speedup: f64,
    feasible_ratio: f64,
    /// Chunk count of the pooled ResilientRod leg (schema v2).
    threads: usize,
    resilient_serial_seconds: f64,
    resilient_pooled_seconds: f64,
    resilient_speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct BenchFile {
    schema_version: u32,
    created_unix: u64,
    rustc: String,
    commit: String,
    quick: bool,
    repeats: usize,
    workload_seed: u64,
    qmc_seed: u64,
    grid: Vec<CellResult>,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn tool_line(cmd: &str, args: &[&str]) -> String {
    Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run_cell(cell: &Cell, repeats: usize) -> CellResult {
    let graph =
        RandomTreeGenerator::paper_default(cell.inputs, cell.ops_per_tree).generate(WORKLOAD_SEED);
    let model = LoadModel::derive(&graph).expect("model derives");
    let cluster = Cluster::homogeneous(cell.nodes, 1.0);

    let mut plan_times = Vec::with_capacity(repeats);
    let mut alloc = None;
    for _ in 0..repeats {
        let t = Instant::now();
        let plan = RodPlanner::new()
            .place(&model, &cluster)
            .expect("ROD plans");
        plan_times.push(t.elapsed().as_secs_f64());
        alloc = Some(plan.allocation);
    }
    let alloc = alloc.expect("at least one repeat");

    let estimator = VolumeEstimator::new(
        model.total_coeffs().as_slice(),
        cluster.total_capacity(),
        cell.samples,
        QMC_SEED,
    );
    let region = PlanEvaluator::new(&model, &cluster).feasible_region(&alloc);

    let mut scalar_times = Vec::with_capacity(repeats);
    let mut kernel_times = Vec::with_capacity(repeats);
    let mut ratio = 0.0;
    for _ in 0..repeats {
        let t = Instant::now();
        let scalar = estimator.estimate_scalar(&region);
        scalar_times.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let kernel = estimator.estimate_with_threads(&region, 1);
        kernel_times.push(t.elapsed().as_secs_f64());
        assert_eq!(
            scalar.ratio_to_ideal.to_bits(),
            kernel.ratio_to_ideal.to_bits(),
            "{}: batched kernel diverged from the scalar path",
            cell.name
        );
        ratio = kernel.ratio_to_ideal;
    }

    // ResilientRod hill climb, serial vs pooled neighborhood scan.
    // Reduced budgets keep the full grid affordable; what matters for
    // the trajectory is the serial/pooled *ratio* on identical work,
    // and the bit-identity assert keeps that work honest.
    let resilient_opts = ResilientRodOptions {
        samples: 1_500,
        seed: 2006,
        max_failures: 1,
        max_moves: 3,
        threads: 1,
    };
    let resilient_repeats = repeats.min(3);
    let mut serial_times = Vec::with_capacity(resilient_repeats);
    let mut pooled_times = Vec::with_capacity(resilient_repeats);
    for _ in 0..resilient_repeats {
        let t = Instant::now();
        let serial = ResilientRodPlanner::with_options(resilient_opts.clone())
            .place(&model, &cluster)
            .expect("ResilientRod plans");
        serial_times.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let pooled = ResilientRodPlanner::with_options(ResilientRodOptions {
            threads: RESILIENT_THREADS,
            ..resilient_opts.clone()
        })
        .place(&model, &cluster)
        .expect("ResilientRod plans");
        pooled_times.push(t.elapsed().as_secs_f64());
        assert_eq!(
            serial.allocation, pooled.allocation,
            "{}: pooled neighborhood scan diverged from serial",
            cell.name
        );
        assert_eq!(
            serial.worst_alive, pooled.worst_alive,
            "{}: pooled worst-case score diverged from serial",
            cell.name
        );
    }

    let scalar_s = median(&mut scalar_times);
    let kernel_s = median(&mut kernel_times);
    let serial_s = median(&mut serial_times);
    let pooled_s = median(&mut pooled_times);
    CellResult {
        name: cell.name.to_string(),
        inputs: cell.inputs,
        ops: cell.inputs * cell.ops_per_tree,
        nodes: cell.nodes,
        samples: cell.samples,
        plan_seconds: median(&mut plan_times),
        scalar_estimate_seconds: scalar_s,
        kernel_estimate_seconds: kernel_s,
        kernel_speedup: scalar_s / kernel_s,
        feasible_ratio: ratio,
        threads: RESILIENT_THREADS,
        resilient_serial_seconds: serial_s,
        resilient_pooled_seconds: pooled_s,
        resilient_speedup: serial_s / pooled_s,
    }
}

/// Trimmed view of a baseline cell: only the machine-relative ratios
/// the checker compares. Parsing through this view (the vendored serde
/// shim ignores unknown fields) makes `--check` forward-compatible with
/// any baseline that still carries these columns — v1 files included.
#[derive(Deserialize)]
struct BaselineCell {
    name: String,
    kernel_speedup: f64,
}

#[derive(Deserialize)]
struct BaselineFile {
    schema_version: u32,
    grid: Vec<BaselineCell>,
}

/// v2-only baseline columns, read in a second pass when the baseline's
/// schema version says they exist.
#[derive(Deserialize)]
struct BaselineCellV2 {
    name: String,
    resilient_speedup: f64,
}

#[derive(Deserialize)]
struct BaselineFileV2 {
    grid: Vec<BaselineCellV2>,
}

/// Compares against a baseline file; returns the regressed cell names.
///
/// A cell regresses when `baseline_ratio / current_ratio > 2.0` for the
/// kernel speedup or (v2 baselines only) the resilient speedup. Both
/// are same-machine ratios, so the gate holds on any runner hardware.
fn regressions(current: &BenchFile, baseline_path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline_path.display()));
    let baseline: BaselineFile = serde_json::from_str(&text).expect("baseline parses");
    assert!(
        baseline.schema_version >= 1 && baseline.schema_version <= SCHEMA_VERSION,
        "baseline schema version {} is not supported (expected 1..={SCHEMA_VERSION})",
        baseline.schema_version
    );
    let mut bad = Vec::new();
    for cur in &current.grid {
        let Some(base) = baseline.grid.iter().find(|b| b.name == cur.name) else {
            continue;
        };
        if base.kernel_speedup / cur.kernel_speedup > 2.0 {
            bad.push(format!(
                "{}: kernel speedup {:.2}x vs baseline {:.2}x",
                cur.name, cur.kernel_speedup, base.kernel_speedup
            ));
        }
    }
    if baseline.schema_version >= 2 {
        let v2: BaselineFileV2 = serde_json::from_str(&text).expect("v2 baseline parses");
        for cur in &current.grid {
            let Some(base) = v2.grid.iter().find(|b| b.name == cur.name) else {
                continue;
            };
            if base.resilient_speedup / cur.resilient_speedup > 2.0 {
                bad.push(format!(
                    "{}: resilient speedup {:.2}x vs baseline {:.2}x",
                    cur.name, cur.resilient_speedup, base.resilient_speedup
                ));
            }
        }
    }
    bad
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let repeats = if quick { 3 } else { 7 };
    let out = arg_value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("BENCH_planner.json"));

    let cells: Vec<&Cell> = GRID.iter().filter(|c| !quick || c.quick).collect();
    let mut grid = Vec::with_capacity(cells.len());
    for cell in cells {
        eprintln!("[perf_planner] {} ...", cell.name);
        grid.push(run_cell(cell, repeats));
    }

    let file = BenchFile {
        schema_version: SCHEMA_VERSION,
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        rustc: tool_line("rustc", &["--version"]),
        commit: tool_line(
            "git",
            &["-C", repo_root().to_str().unwrap(), "rev-parse", "HEAD"],
        ),
        quick,
        repeats,
        workload_seed: WORKLOAD_SEED,
        qmc_seed: QMC_SEED,
        grid,
    };

    let rows: Vec<Vec<String>> = file
        .grid
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.ops.to_string(),
                c.nodes.to_string(),
                c.samples.to_string(),
                format!("{:.3}", c.plan_seconds * 1e3),
                format!("{:.3}", c.scalar_estimate_seconds * 1e3),
                format!("{:.3}", c.kernel_estimate_seconds * 1e3),
                format!("{:.2}x", c.kernel_speedup),
                format!("{:.1}", c.resilient_serial_seconds * 1e3),
                format!("{:.1}", c.resilient_pooled_seconds * 1e3),
                format!("{:.2}x", c.resilient_speedup),
                fmt(c.feasible_ratio),
            ]
        })
        .collect();
    print_table(
        "planner perf trajectory (medians)",
        &[
            "cell",
            "ops",
            "nodes",
            "samples",
            "plan ms",
            "scalar ms",
            "kernel ms",
            "speedup",
            "res-ser ms",
            "res-pool ms",
            "res-speedup",
            "ratio",
        ],
        &rows,
    );

    let json = serde_json::to_string_pretty(&file).expect("results serialise");
    std::fs::write(&out, json).expect("write bench file");
    println!("[bench written to {}]", out.display());

    if let Some(baseline) = arg_value("--check") {
        let bad = regressions(&file, Path::new(&baseline));
        if bad.is_empty() {
            println!("[check] no >2x speedup regressions vs {baseline}");
        } else {
            eprintln!("[check] PERF REGRESSION vs {baseline}:");
            for line in &bad {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
    }
}
