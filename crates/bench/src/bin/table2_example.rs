//! **Table 2 + Figures 5 & 6** — the worked Example 2.
//!
//! Regenerates, for the Figure 4 query graph with `c = (4, 6, 9, 4)`,
//! `s₁ = 1`, `s₃ = 0.5` and two unit-capacity nodes:
//!
//! * Table 2's `L^o` and the three plans' `L^n` matrices;
//! * Figure 5's feasible-set *areas*, computed exactly by half-plane
//!   clipping (and cross-checked by QMC);
//! * Figure 6's ideal hyperplane `10 r₁ + 11 r₂ = C_T` and the fact that
//!   no plan achieves the ideal feasible set.

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_core::allocation::PlanEvaluator;
use rod_core::cluster::Cluster;
use rod_core::examples_paper::{example2_plans, figure4_graph};
use rod_core::load_model::LoadModel;
use rod_core::metrics::make_estimator;
use rod_core::rod::RodPlanner;
use rod_geom::polygon::feasible_area;

#[derive(Serialize)]
struct PlanRow {
    plan: String,
    ln: Vec<Vec<f64>>,
    exact_area: f64,
    qmc_area: f64,
    ratio_to_ideal: f64,
    min_plane_distance: f64,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let graph = figure4_graph();
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(2, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);
    let estimator = make_estimator(&model, &cluster, 200_000, 7);

    println!("L^o (Table 2):");
    for j in 0..model.num_operators() {
        println!("  o{} -> {:?}", j + 1, model.lo().row(j));
    }
    println!(
        "\nIdeal hyperplane (Figure 6): {} r1 + {} r2 = C_T = {}",
        model.total_coeffs()[0],
        model.total_coeffs()[1],
        cluster.total_capacity()
    );
    let ideal_area = ev.ideal_volume().unwrap();
    println!("Ideal feasible set area V(F*): {}", fmt(ideal_area));

    let plans = example2_plans();
    let labels = ["(a)", "(b)", "(c)"];
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for (label, alloc) in labels.iter().zip(plans.iter()) {
        let ln = ev.node_load_matrix(alloc);
        let exact = feasible_area(&ev.feasible_region(alloc).hyperplanes()).unwrap();
        let est = estimator.estimate(&ev.feasible_region(alloc));
        let w = ev.weight_matrix(alloc);
        rows.push(vec![
            label.to_string(),
            format!("{:?} {:?}", ln.row(0), ln.row(1)),
            fmt(exact),
            fmt(est.absolute),
            fmt(exact / ideal_area),
            fmt(w.min_plane_distance()),
        ]);
        payload.push(PlanRow {
            plan: label.to_string(),
            ln: vec![ln.row(0).to_vec(), ln.row(1).to_vec()],
            exact_area: exact,
            qmc_area: est.absolute,
            ratio_to_ideal: exact / ideal_area,
            min_plane_distance: w.min_plane_distance(),
        });
    }

    // And what ROD itself chooses on this instance.
    let rod = RodPlanner::new().place(&model, &cluster).unwrap();
    let rod_exact = feasible_area(&ev.feasible_region(&rod.allocation).hyperplanes()).unwrap();
    let rod_w = ev.weight_matrix(&rod.allocation);
    rows.push(vec![
        "ROD".into(),
        format!(
            "{:?} {:?}",
            ev.node_load_matrix(&rod.allocation).row(0),
            ev.node_load_matrix(&rod.allocation).row(1)
        ),
        fmt(rod_exact),
        fmt(estimator
            .estimate(&ev.feasible_region(&rod.allocation))
            .absolute),
        fmt(rod_exact / ideal_area),
        fmt(rod_w.min_plane_distance()),
    ]);

    print_table(
        "Table 2 / Figures 5-6: Example 2 plans",
        &[
            "plan",
            "L^n rows",
            "exact area",
            "QMC area",
            "ratio/ideal",
            "min plane dist",
        ],
        &rows,
    );
    println!(
        "\nPaper: no plan reaches the ideal set (Fig. 6). Exact areas rank \
         (b) > (a) > (c):\nplan (b) separates the heavy operators of the \
         two streams (the Fig. 8 lesson),\nplan (c) (whole chains per node) \
         is worst. ROD should recover plan (b)."
    );
    write_json("table2_example", &payload);
    exp.finish();
}
