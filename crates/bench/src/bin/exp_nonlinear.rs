//! **§6.2 nonlinear-model experiment \[reconstructed\]**.
//!
//! The paper generalises ROD to nonlinear operators by introducing the
//! outputs of joins (and variable-selectivity operators) as fresh rate
//! variables, "cutting a nonlinear query graph into linear pieces" (Fig.
//! 13). This experiment validates the machinery end to end:
//!
//! 1. the Example 3 cut introduces exactly the two variables the paper
//!    names (r₃ and r₄), and the linearised load agrees with the true
//!    nonlinear load at every probed rate point;
//! 2. on windowed-join workloads, ROD on the linearised model still
//!    dominates the §7.2 baselines in feasible-set ratio (measured in
//!    the linearised variable space, where Theorem 1 applies).

use serde::Serialize;

use rod_bench::comparison::{compare_algorithms, ComparisonConfig};
use rod_bench::output::{fmt, print_table, write_json};
use rod_core::cluster::Cluster;
use rod_core::examples_paper::example3_graph;
use rod_core::linearize::VarInfo;
use rod_core::load_model::LoadModel;
use rod_geom::rng::derive_seed;
use rod_workloads::joins::{join_pairs, JoinConfig};

#[derive(Serialize)]
struct NonlinearRow {
    workload: String,
    algorithm: String,
    mean_ratio: f64,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    // Part 1: the Example 3 cut.
    let g3 = example3_graph();
    let model3 = LoadModel::derive(&g3).unwrap();
    println!("Example 3 / Figure 13 linearisation:");
    println!("  variables: {}", model3.num_vars());
    for (i, v) in model3.linearization().vars.iter().enumerate() {
        match v {
            VarInfo::SystemInput(k) => println!("    x{i} = rate of system input {k}"),
            VarInfo::Introduced { operator, stream } => println!(
                "    x{i} = output rate of {} (stream {stream}) [introduced]",
                g3.operator(*operator).name
            ),
        }
    }
    let mut worst_err = 0.0f64;
    for probe in [[1.0, 1.0], [3.0, 0.5], [0.2, 4.0], [6.0, 6.0]] {
        let x = model3.variable_point(&probe);
        let lin = model3.total_load(&x);
        let truth: f64 = g3.operator_loads(&probe).iter().sum();
        worst_err = worst_err.max((lin - truth).abs() / truth.max(1e-12));
    }
    println!("  max relative error linearised vs true load: {worst_err:.2e}\n");

    // Part 2: baselines on join workloads.
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    let workloads = [
        ("joins (2 pairs)", JoinConfig::default()),
        (
            "joins (3 pairs + varsel heads)",
            JoinConfig {
                pairs: 3,
                variable_selectivity_heads: true,
                ..JoinConfig::default()
            },
        ),
    ];
    for (wi, (label, cfg)) in workloads.iter().enumerate() {
        let graph = join_pairs(cfg, derive_seed(620, wi as u64));
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(4, 1.0);
        let results = compare_algorithms(
            &model,
            &cluster,
            &ComparisonConfig {
                reps: 8,
                volume_samples: 30_000,
                seed: derive_seed(621, wi as u64),
                ..ComparisonConfig::default()
            },
        );
        let mut row = vec![label.to_string(), model.num_vars().to_string()];
        for r in &results {
            row.push(fmt(r.mean_ratio));
            payload.push(NonlinearRow {
                workload: label.to_string(),
                algorithm: r.name.clone(),
                mean_ratio: r.mean_ratio,
            });
        }
        rows.push(row);
    }
    print_table(
        "Feasible-set ratio (linearised space) on join workloads, n=4",
        &[
            "workload",
            "d'",
            "ROD",
            "Correlation",
            "LLF",
            "Random",
            "Connected",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the cut introduces exactly one variable per join \
         (plus one per\nvariable-selectivity head); linearised load is exact; \
         ROD still leads the baselines."
    );
    write_json("exp_nonlinear", &payload);
    exp.finish();
}
