//! **Capacity planning \[reconstructed\]** — resilience as a hardware
//! cost.
//!
//! The inverse of the ROD problem: instead of "which placement on n
//! nodes tolerates the most load?", ask "how many nodes does each
//! placement algorithm need so the system survives every k× single-
//! stream burst?" A more resilient placement policy buys the same
//! burst tolerance with fewer machines — the deployment-cost framing of
//! the paper's contribution.

use serde::Serialize;

use rod_bench::output::{print_table, write_json};
use rod_core::baselines::{build_planner, Planner, PlannerSpec};
use rod_core::capacity::{min_nodes_for, TargetWorkloads};
use rod_core::load_model::LoadModel;
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct Row {
    burst: f64,
    algorithm: String,
    nodes_needed: Option<usize>,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let inputs = 4;
    let graph = RandomTreeGenerator::paper_default(inputs, 12).generate(42);
    let model = LoadModel::derive(&graph).unwrap();
    // Mean point: each input at the rate that loads 0.15 CPU per stream.
    let mean: Vec<f64> = (0..inputs)
        .map(|k| 0.15 / model.total_coeffs()[k])
        .collect();

    let specs = [
        PlannerSpec::Rod,
        PlannerSpec::Llf {
            rates: mean.clone(),
        },
        PlannerSpec::Random { seed: 7 },
        PlannerSpec::Connected {
            rates: mean.clone(),
        },
    ];
    let planners: Vec<(&str, Box<dyn Planner>)> = specs
        .iter()
        .map(|spec| (spec.name(), build_planner(spec)))
        .collect();

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for burst in [2.0f64, 4.0, 8.0, 16.0] {
        let targets = TargetWorkloads::burst_envelope(&mean, burst);
        let mut row = vec![format!("{burst}x")];
        for (name, planner) in &planners {
            let needed = min_nodes_for(planner.as_ref(), &model, &targets, 1.0, 64)
                .ok()
                .map(|p| p.nodes);
            row.push(needed.map_or("-".into(), |n| n.to_string()));
            payload.push(Row {
                burst,
                algorithm: name.to_string(),
                nodes_needed: needed,
            });
        }
        rows.push(row);
    }

    print_table(
        "Nodes needed to survive every single-stream burst (48 ops, 4 streams)",
        &["burst", "ROD", "LLF", "Random", "Connected"],
        &rows,
    );
    println!(
        "\nExpected shape: every algorithm needs more machines as the burst \
         envelope grows;\nROD consistently needs the fewest — resilience as \
         saved hardware."
    );
    write_json("exp_capacity", &payload);
    exp.finish();
}
