//! **Control-plane ingestion trajectory** — times line-at-a-time
//! `UtilSample` ingestion against the batched zero-copy fast path
//! (`rod_sim::replay::scan` + `TelemetryIngest::ingest_batch`) at
//! production telemetry volumes and records the repo's persistent
//! control-plane perf baseline.
//!
//! The `ingest_*` cells time the telemetry layer alone: the oracle reads
//! the stream with `BufRead::lines` and calls
//! `TelemetryIngest::ingest_line` per line (exactly what
//! `ControlLoop::replay` does); the fast path scans the same bytes with
//! the zero-copy `LineScanner`, probes strict-form samples into a reused
//! `SampleBatch`, and commits them through `ingest_batch`. The `loop_*`
//! cell times the whole daemon — `ControlLoop::replay` vs
//! `ControlLoop::replay_batched` — so the headline ratio survives
//! contact with drift detection and decision logging.
//!
//! Every repetition cross-checks the paths: accepted/rejected counts,
//! the final estimate (to the bit), and — on the loop cell — the full
//! decision log must match, so the perf numbers can never come from a
//! path that dropped or mangled telemetry.
//!
//! Results go to `BENCH_ctrl.json` at the repo root (schema in
//! `docs/benchmarks.md`). Flags, mirroring `perf_sim`:
//!
//! * `--quick` — subset of the grid, fewer repeats (CI smoke mode);
//! * `--out FILE` — write somewhere else (CI writes a scratch copy);
//! * `--check FILE` — compare against a committed baseline and exit
//!   non-zero when any cell's `ingest_speedup` regressed by more than
//!   2×, or fell below the cell's hard floor (the ≥5× acceptance bar on
//!   the 1M-samples/s cell).

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use rod_bench::output::{arg_value, print_table};
use rod_core::cluster::Cluster;
use rod_core::examples_paper::figure4_graph;
use rod_ctrl::{ControlConfig, ControlLoop, SampleBatch, TelemetryConfig, TelemetryIngest};
use rod_sim::replay::scan::{probe_util_sample, LineScanner, UtilScratch};

/// Schema version of `BENCH_ctrl.json`; bump on breaking layout changes
/// and teach `--check` the migration.
const SCHEMA_VERSION: u32 = 1;

/// Stream-generation seed — fixed so the trajectory tracks code.
const SEED: u64 = 42;

/// Batch size of the fast path under test (the front ends' default).
const MAX_BATCH: usize = 256;

#[derive(Clone, Copy)]
enum Kind {
    /// Telemetry layer alone: `ingest_line` vs scanner + `ingest_batch`.
    Ingest,
    /// Whole daemon: `replay` vs `replay_batched`.
    Loop,
}

#[derive(Clone, Copy)]
struct Cell {
    name: &'static str,
    kind: Kind,
    /// Telemetry lines in the generated stream.
    lines: usize,
    /// Included in `--quick` runs (identical parameters so `--check`
    /// can match cells by name).
    quick: bool,
    /// Hard floor on `ingest_speedup` under `--check`; zero = ratio-only.
    min_speedup: f64,
}

const GRID: &[Cell] = &[
    Cell {
        name: "ingest_100k",
        kind: Kind::Ingest,
        lines: 100_000,
        quick: true,
        min_speedup: 0.0,
    },
    // The acceptance cell: one simulated second of a 1M-samples/s
    // telemetry firehose, with a ≥5× floor on the fast path's advantage.
    Cell {
        name: "ingest_1m",
        kind: Kind::Ingest,
        lines: 1_000_000,
        quick: true,
        min_speedup: 5.0,
    },
    // Full control loop on the paper's Figure 4 graph: parsing competes
    // with drift detection, headroom evaluation, and decision logging.
    Cell {
        name: "loop_200k",
        kind: Kind::Loop,
        lines: 200_000,
        quick: false,
        min_speedup: 0.0,
    },
];

#[derive(Serialize, Deserialize)]
struct CellResult {
    name: String,
    /// Telemetry lines in the stream (a handful are deliberately
    /// malformed to keep the fallback path honest).
    lines: u64,
    stream_bytes: u64,
    line_seconds: f64,
    batched_seconds: f64,
    line_samples_per_sec: f64,
    batched_samples_per_sec: f64,
    /// The headline machine-relative ratio: batched over line-at-a-time.
    ingest_speedup: f64,
    max_batch: usize,
}

#[derive(Serialize, Deserialize)]
struct BenchFile {
    schema_version: u32,
    created_unix: u64,
    rustc: String,
    commit: String,
    /// Logical cores of the recording machine (provenance; both paths
    /// are single-threaded, so the ratios do not depend on it).
    cores: usize,
    quick: bool,
    repeats: usize,
    seed: u64,
    grid: Vec<CellResult>,
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn tool_line(cmd: &str, args: &[&str]) -> String {
    Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A production-volume telemetry stream: strict-form `UtilSample` lines
/// at 1 µs spacing with rates wandering deterministically around a calm
/// operating point, one malformed line per 10k to keep the fallback
/// path exercised. Shapes match the loop cell's Figure 4 graph
/// (2 inputs) on a small cluster.
fn make_stream(lines: usize) -> String {
    let mut out = String::with_capacity(lines * 130);
    let mut lcg = SEED | 1;
    for i in 0..lines {
        if i % 10_000 == 9_999 {
            out.push_str("{corrupt telemetry line\n");
            continue;
        }
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Two rates in roughly [0.04, 0.06) — calm for Figure 4, so the
        // loop cell measures steady-state monitoring, not replan storms.
        let r0 = 0.04 + (lcg >> 40) as f64 / (1u64 << 24) as f64 * 0.02;
        let r1 = 0.04 + ((lcg >> 16) & 0xffffff) as f64 / (1u64 << 24) as f64 * 0.02;
        let u0 = 0.3 + (lcg & 0xffff) as f64 / 65536.0 * 0.4;
        let time = (i + 1) as f64 * 1e-6;
        out.push_str(&format!(
            "{{\"UtilSample\":{{\"time\":{time},\"utilisations\":[{u0:.4},0.35],\
             \"queue_depths\":[0,0],\"queued\":0,\"rates\":[{r0},{r1}]}}}}\n"
        ));
    }
    out
}

fn telemetry_config() -> TelemetryConfig {
    TelemetryConfig {
        num_inputs: 2,
        num_nodes: 2,
        window: 8,
        ewma_alpha: 0.3,
    }
}

/// The oracle: exactly `ControlLoop::replay`'s per-line work at the
/// telemetry layer (allocating `BufRead::lines`, full `parse_line`).
fn ingest_lines(bytes: &[u8]) -> (TelemetryIngest, f64) {
    let mut ingest = TelemetryIngest::new(telemetry_config());
    let t = Instant::now();
    for line in bytes.lines() {
        let line = line.expect("generated stream is valid UTF-8");
        if line.trim().is_empty() {
            continue;
        }
        ingest.ingest_line(&line);
    }
    (ingest, t.elapsed().as_secs_f64())
}

/// The fast path: zero-copy scan + strict-form probe + `ingest_batch`,
/// falling back to `ingest_line` outside the strict grammar — the same
/// split `ControlLoop::replay_batched` performs.
fn ingest_batched(bytes: &[u8]) -> (TelemetryIngest, f64) {
    let mut ingest = TelemetryIngest::new(telemetry_config());
    let mut scanner = LineScanner::new();
    let mut scratch = UtilScratch::default();
    let mut batch = SampleBatch::new();
    let t = Instant::now();
    let mut on_line = |ingest: &mut TelemetryIngest, batch: &mut SampleBatch, line: &[u8]| {
        if line.iter().all(|b| b.is_ascii_whitespace()) {
            return;
        }
        if probe_util_sample(line, &mut scratch) {
            batch.push(scratch.time, &scratch.utilisations, &scratch.rates);
            if batch.len() >= MAX_BATCH {
                ingest.ingest_batch(batch, |_, _| {});
                batch.clear();
            }
            return;
        }
        let text = std::str::from_utf8(line).expect("generated stream is valid UTF-8");
        if text.trim().is_empty() {
            return;
        }
        ingest.ingest_batch(batch, |_, _| {});
        batch.clear();
        ingest.ingest_line(text);
    };
    for chunk in bytes.chunks(64 * 1024) {
        scanner
            .feed(chunk, |line| -> Result<(), std::convert::Infallible> {
                on_line(&mut ingest, &mut batch, line);
                Ok(())
            })
            .unwrap();
    }
    scanner
        .finish(|line| -> Result<(), std::convert::Infallible> {
            on_line(&mut ingest, &mut batch, line);
            Ok(())
        })
        .unwrap();
    ingest.ingest_batch(&batch, |_, _| {});
    (ingest, t.elapsed().as_secs_f64())
}

/// Both paths must land on the same accumulator, to the bit.
fn assert_ingest_equal(cell: &str, a: &TelemetryIngest, b: &TelemetryIngest) {
    assert_eq!(a.accepted(), b.accepted(), "{cell}: accepted diverged");
    assert_eq!(
        a.rejections(),
        b.rejections(),
        "{cell}: rejection counters diverged"
    );
    assert_eq!(a.last_time(), b.last_time(), "{cell}: last_time diverged");
    let (ea, eb) = (a.estimate(), b.estimate());
    let bits = |e: &Option<Vec<f64>>| {
        e.as_ref()
            .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
    };
    assert_eq!(bits(&ea), bits(&eb), "{cell}: estimate bits diverged");
}

fn make_loop() -> ControlLoop {
    rod_ctrl::bootstrap(
        &figure4_graph(),
        Cluster::homogeneous(2, 1.0),
        ControlConfig::default(),
    )
    .expect("figure 4 bootstrap")
}

fn run_cell(cell: &Cell, repeats: usize) -> CellResult {
    let stream = make_stream(cell.lines);
    let bytes = stream.as_bytes();
    let mut line_times = Vec::with_capacity(repeats);
    let mut batch_times = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        match cell.kind {
            Kind::Ingest => {
                let (oracle, line_s) = ingest_lines(bytes);
                let (fast, batch_s) = ingest_batched(bytes);
                assert_ingest_equal(cell.name, &oracle, &fast);
                line_times.push(line_s);
                batch_times.push(batch_s);
            }
            Kind::Loop => {
                let mut oracle = make_loop();
                let t = Instant::now();
                let s1 = oracle.replay(bytes).expect("valid UTF-8 stream");
                line_times.push(t.elapsed().as_secs_f64());
                let mut fast = make_loop();
                let t = Instant::now();
                let s2 = fast
                    .replay_batched(bytes, MAX_BATCH)
                    .expect("valid UTF-8 stream");
                batch_times.push(t.elapsed().as_secs_f64());
                assert_eq!(
                    serde_json::to_string(&s1).unwrap(),
                    serde_json::to_string(&s2).unwrap(),
                    "{}: summaries diverged",
                    cell.name
                );
                assert_eq!(
                    oracle.decision_log_jsonl(),
                    fast.decision_log_jsonl(),
                    "{}: decision logs diverged",
                    cell.name
                );
            }
        }
    }
    let line_s = median(&mut line_times);
    let batch_s = median(&mut batch_times);
    CellResult {
        name: cell.name.to_string(),
        lines: cell.lines as u64,
        stream_bytes: bytes.len() as u64,
        line_seconds: line_s,
        batched_seconds: batch_s,
        line_samples_per_sec: cell.lines as f64 / line_s,
        batched_samples_per_sec: cell.lines as f64 / batch_s,
        ingest_speedup: line_s / batch_s,
        max_batch: MAX_BATCH,
    }
}

/// Trimmed view of a baseline cell — only what the checker compares
/// (the vendored serde shim ignores unknown fields, keeping `--check`
/// forward-compatible with later schema additions).
#[derive(Deserialize)]
struct BaselineCell {
    name: String,
    ingest_speedup: f64,
}

#[derive(Deserialize)]
struct BaselineFile {
    schema_version: u32,
    grid: Vec<BaselineCell>,
}

/// Compares against a baseline; returns the regressed cell names. A
/// cell regresses when `baseline_speedup / current_speedup > 2.0`, or
/// when the current speedup falls under the cell's hard floor.
fn regressions(current: &BenchFile, baseline_path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline_path.display()));
    let baseline: BaselineFile = serde_json::from_str(&text).expect("baseline parses");
    assert!(
        baseline.schema_version >= 1 && baseline.schema_version <= SCHEMA_VERSION,
        "baseline schema version {} is not supported (expected 1..={SCHEMA_VERSION})",
        baseline.schema_version
    );
    let mut bad = Vec::new();
    for cur in &current.grid {
        if let Some(floor) = GRID
            .iter()
            .find(|c| c.name == cur.name)
            .map(|c| c.min_speedup)
        {
            if floor > 0.0 && cur.ingest_speedup < floor {
                bad.push(format!(
                    "{}: ingest speedup {:.2}x under the {floor:.0}x floor",
                    cur.name, cur.ingest_speedup
                ));
                continue;
            }
        }
        let Some(base) = baseline.grid.iter().find(|b| b.name == cur.name) else {
            continue;
        };
        if base.ingest_speedup <= 0.0 || cur.ingest_speedup <= 0.0 {
            continue;
        }
        if base.ingest_speedup / cur.ingest_speedup > 2.0 {
            bad.push(format!(
                "{}: ingest speedup {:.2}x vs baseline {:.2}x",
                cur.name, cur.ingest_speedup, base.ingest_speedup
            ));
        }
    }
    bad
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let repeats = if quick { 3 } else { 5 };
    let out = arg_value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("BENCH_ctrl.json"));

    let cells: Vec<&Cell> = GRID.iter().filter(|c| !quick || c.quick).collect();
    let mut grid = Vec::with_capacity(cells.len());
    for cell in cells {
        eprintln!("[perf_ctrl] {} ...", cell.name);
        grid.push(run_cell(cell, repeats));
    }

    let file = BenchFile {
        schema_version: SCHEMA_VERSION,
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        rustc: tool_line("rustc", &["--version"]),
        commit: tool_line(
            "git",
            &["-C", repo_root().to_str().unwrap(), "rev-parse", "HEAD"],
        ),
        cores: std::thread::available_parallelism().map_or(1, |p| p.get()),
        quick,
        repeats,
        seed: SEED,
        grid,
    };

    let rows: Vec<Vec<String>> = file
        .grid
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.0}k", c.lines as f64 / 1e3),
                format!("{:.1}M", c.stream_bytes as f64 / 1e6),
                format!("{:.3}", c.line_seconds),
                format!("{:.3}", c.batched_seconds),
                format!("{:.2}M", c.line_samples_per_sec / 1e6),
                format!("{:.2}M", c.batched_samples_per_sec / 1e6),
                format!("{:.1}x", c.ingest_speedup),
            ]
        })
        .collect();
    print_table(
        "control-plane ingest trajectory (medians)",
        &[
            "cell",
            "lines",
            "bytes",
            "line s",
            "batch s",
            "line sps",
            "batch sps",
            "speedup",
        ],
        &rows,
    );

    let json = serde_json::to_string_pretty(&file).expect("results serialise");
    std::fs::write(&out, json).expect("write bench file");
    println!("[bench written to {}]", out.display());

    if let Some(baseline) = arg_value("--check") {
        let bad = regressions(&file, Path::new(&baseline));
        if bad.is_empty() {
            println!("[check] no >2x speedup regressions vs {baseline}");
        } else {
            eprintln!("[check] PERF REGRESSION vs {baseline}:");
            for line in &bad {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
    }
}
