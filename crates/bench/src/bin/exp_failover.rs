//! **Failure resilience — ROD vs ResilientRod vs LLF \[extension\]**.
//!
//! The paper optimises the feasible set of the *healthy* cluster; this
//! experiment asks what remains of it when a node fail-stops. For each
//! random tree workload we compare three planners on two axes:
//!
//! 1. **Survivor feasible volume** — the fraction of QMC-sampled rate
//!    points that stay feasible after the *worst* single-node loss, with
//!    orphans re-homed greedily per
//!    [`survivor_moves`](rod_core::resilience::survivor_moves). All plans are
//!    scored on the same point set, so comparisons are noise-free.
//! 2. **Recovery latency** — the simulator injects the worst-node outage
//!    mid-run with table-driven failover (0.5 s detection delay) and
//!    reports outage-to-resumption latency, recovery-attributed sheds,
//!    and the post-failure utilisation peak.
//!
//! Expected shape: ResilientRod's worst-case survivor volume is never
//! below plain ROD's (it hill-climbs from the ROD plan and only accepts
//! strict improvements — asserted per instance), and both dominate LLF,
//! which balances average load with no regard for failure geometry.

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_core::allocation::Allocation;
use rod_core::baselines::{build_planner, PlannerSpec};
use rod_core::cluster::{Cluster, Topology};
use rod_core::ids::NodeId;
use rod_core::load_model::LoadModel;
use rod_core::resilience::{
    FailoverTable, FailureScenario, ResilientRodOptions, ResilientRodPlanner, ScenarioScorer,
};
use rod_core::rod::RodPlanner;
use rod_geom::VolumeEstimator;
use rod_sim::{FailoverConfig, Outage, Simulation, SimulationConfig, SourceSpec, TimelineSample};
use rod_workloads::RandomTreeGenerator;

const SAMPLES: usize = 6_000;
const QMC_SEED: u64 = 2006;

#[derive(Serialize)]
struct Row {
    instance: String,
    plan: String,
    healthy_ratio: f64,
    worst_survivor_ratio: f64,
    /// Survivor ratio after the worst whole-rack outage (two uniform
    /// racks), the correlated-failure counterpart of `worst_survivor_ratio`.
    worst_rack_survivor_ratio: f64,
    worst_node: usize,
    recovery_latency_s: Option<f64>,
    tuples_shed_in_recovery: u64,
    post_failure_max_utilisation: Option<f64>,
    /// Utilisation / queue-depth samples on a 1 s tick across the
    /// outage, detection, and recovery phases.
    timeline: Vec<TimelineSample>,
}

struct Scored {
    name: &'static str,
    alloc: Allocation,
    healthy: usize,
    worst: usize,
    worst_rack: usize,
    worst_node: usize,
}

/// Scores a plan's healthy and worst-single-failure alive counts and
/// identifies the node whose loss hurts most.
fn score(
    scorer: &mut ScenarioScorer<'_>,
    name: &'static str,
    alloc: Allocation,
    scenarios: &[FailureScenario],
    rack_scenarios: &[FailureScenario],
) -> Scored {
    let healthy = scorer.healthy_alive(&alloc);
    let mut worst = usize::MAX;
    let mut worst_node = 0;
    for s in scenarios {
        let alive = scorer.scenario_alive(&alloc, s);
        if alive < worst {
            worst = alive;
            worst_node = s.failed()[0].index();
        }
    }
    let worst_rack = rack_scenarios
        .iter()
        .map(|s| scorer.scenario_alive(&alloc, s))
        .min()
        .unwrap_or(healthy);
    Scored {
        name,
        alloc,
        healthy,
        worst,
        worst_rack,
        worst_node,
    }
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let mut rows = Vec::new();
    let mut payload: Vec<Row> = Vec::new();

    let instances = [
        (2usize, 10usize, 3usize, 21u64),
        (2, 12, 4, 34),
        (3, 8, 3, 55),
    ];
    for &(inputs, ops, nodes, graph_seed) in &instances {
        let instance = format!("{inputs}x{ops} ops, {nodes} nodes, seed {graph_seed}");
        let graph = RandomTreeGenerator::paper_default(inputs, ops).generate(graph_seed);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            SAMPLES,
            QMC_SEED,
        );
        let mut scorer = ScenarioScorer::new(&model, &cluster, estimator.points());
        let scenarios = FailureScenario::all_single(nodes);
        // Correlated failures: two uniform racks; losing a whole rack
        // must still leave survivors, which validate() guarantees here.
        let topology = Topology::uniform(nodes, 2);
        let rack_scenarios = FailureScenario::racks(&topology);
        for s in &rack_scenarios {
            s.validate(&cluster).unwrap();
        }

        let rod = RodPlanner::new()
            .place_with_metrics(&model, &cluster, exp.metrics())
            .unwrap()
            .allocation;
        let resilient = ResilientRodPlanner::with_options(ResilientRodOptions {
            samples: SAMPLES,
            seed: QMC_SEED,
            ..ResilientRodOptions::default()
        })
        .place_with_metrics(&model, &cluster, exp.metrics())
        .unwrap();
        let llf = build_planner(&PlannerSpec::Llf {
            rates: vec![1.0; model.num_vars()],
        })
        .plan_with_metrics(&model, &cluster, exp.metrics())
        .unwrap();

        let scored = [
            score(&mut scorer, "ROD", rod, &scenarios, &rack_scenarios),
            score(
                &mut scorer,
                "ResilientRod",
                resilient.allocation,
                &scenarios,
                &rack_scenarios,
            ),
            score(&mut scorer, "LLF", llf, &scenarios, &rack_scenarios),
        ];

        // Acceptance invariant: ResilientRod starts from the ROD plan and
        // only ever accepts strictly-improving moves, so its worst case
        // can never fall below plain ROD's on any instance.
        assert!(
            scored[1].worst >= scored[0].worst,
            "{instance}: ResilientRod worst case {} < ROD {}",
            scored[1].worst,
            scored[0].worst
        );

        // Recovery latency: kill each plan's own worst node mid-run and
        // fail over per its precomputed table.
        let num_points = scorer.num_points() as f64;
        for s in scored {
            let table = FailoverTable::precompute(&model, &cluster, &s.alloc);
            let unit = model.total_load(&model.variable_point(&vec![1.0; model.num_vars()]));
            let q = 0.45 * cluster.total_capacity() / unit;
            let report = Simulation::new(
                &graph,
                &s.alloc,
                &cluster,
                vec![SourceSpec::ConstantRate(q); model.num_vars()],
                SimulationConfig {
                    horizon: 40.0,
                    warmup: 2.0,
                    seed: 7,
                    outages: vec![Outage {
                        node: NodeId(s.worst_node),
                        start: 10.0,
                        end: 39.0,
                    }],
                    failover: Some(FailoverConfig::new(table, 0.5)),
                    op_queue_bound: Some(20_000),
                    max_queue: 500_000,
                    sample_interval: Some(1.0),
                    ..SimulationConfig::default()
                },
            )
            .run();
            let latency = report.recoveries.first().map(|r| r.recovery_latency());
            rows.push(vec![
                instance.clone(),
                s.name.to_string(),
                fmt(s.healthy as f64 / num_points),
                fmt(s.worst as f64 / num_points),
                fmt(s.worst_rack as f64 / num_points),
                s.worst_node.to_string(),
                latency.map_or("-".into(), fmt),
                report.tuples_shed_in_recovery.to_string(),
                report.post_failure_max_utilisation.map_or("-".into(), fmt),
            ]);
            payload.push(Row {
                instance: instance.clone(),
                plan: s.name.to_string(),
                healthy_ratio: s.healthy as f64 / num_points,
                worst_survivor_ratio: s.worst as f64 / num_points,
                worst_rack_survivor_ratio: s.worst_rack as f64 / num_points,
                worst_node: s.worst_node,
                recovery_latency_s: latency,
                tuples_shed_in_recovery: report.tuples_shed_in_recovery,
                post_failure_max_utilisation: report.post_failure_max_utilisation,
                timeline: report.timeline,
            });
        }
    }

    print_table(
        "Survivor feasible volume and recovery latency under single-node failure",
        &[
            "instance",
            "plan",
            "healthy",
            "worst survivor",
            "worst rack",
            "worst node",
            "recovery (s)",
            "shed in recovery",
            "post-fail util",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: ResilientRod's worst-case survivor volume is >= plain \
         ROD's on\nevery instance (asserted), and both beat LLF; recovery latency is \
         detection delay\nplus per-operator migration downtime, independent of the planner."
    );
    write_json("exp_failover", &payload);
    exp.finish();
}
