//! **§7.3 latency experiment \[reconstructed\]** — processing latency under
//! bursty real-trace-like workloads.
//!
//! §7 promises "results on feasible set size as well as processing
//! latencies" (the latency subsection falls in the truncated part of the
//! source text). Reconstruction: place one random-tree workload with
//! each algorithm, then drive all placements with the *same* bursty
//! trace-driven sources whose mean load is a fixed fraction of total
//! capacity, and compare end-to-end latency. A placement with a larger
//! feasible set keeps more of the burst trajectory inside its feasible
//! region, so its queues — and latencies — stay bounded where the
//! single-point balancers saturate.

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_core::allocation::{Allocation, PlanEvaluator};
use rod_core::baselines::{build_planner, PlannerSpec};
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_geom::rng::derive_seed;
use rod_sim::{Simulation, SimulationConfig, SourceSpec, TimelineSample};
use rod_traces::{paper_traces, Trace};
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct LatencyRow {
    algorithm: String,
    mean_latency_ms: Option<f64>,
    p99_latency_ms: Option<f64>,
    max_utilisation: f64,
    saturated: bool,
    /// Per-node utilisation / queue-depth samples on a 1 s tick, so the
    /// burst trajectory behind the latency numbers can be plotted.
    timeline: Vec<TimelineSample>,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let inputs = 3;
    let graph = RandomTreeGenerator::paper_default(inputs, 12).generate(77);
    let model = LoadModel::derive(&graph).unwrap();
    let cluster = Cluster::homogeneous(3, 1.0);
    let ev = PlanEvaluator::new(&model, &cluster);

    // Mean operating point: every input at the same rate q chosen so the
    // total mean load is 65% of cluster capacity — feasible on average,
    // but bursts (sigma ~0.3, peaks ~2x) push past weak placements.
    let unit_load = model.total_load(&model.variable_point(&vec![1.0; inputs]));
    let q = 0.65 * cluster.total_capacity() / unit_load;

    // Bursty sources: the three calibrated paper traces, scaled to mean q.
    let traces: Vec<Trace> = paper_traces(9, 2024) // 512 bins
        .into_iter()
        .map(|(_, t)| t.with_mean(q))
        .collect();
    let horizon = traces[0].duration().min(120.0);

    // Plans: ROD plus each baseline optimised for the true mean point
    // (the friendliest setting for the single-point balancers).
    let mean_rates = vec![q; inputs];
    let history: Vec<Vec<f64>> = traces[0]
        .rates()
        .iter()
        .zip(traces[1].rates())
        .zip(traces[2].rates())
        .take(64)
        .map(|((a, b), c)| vec![*a, *b, *c])
        .collect();
    let specs = [
        PlannerSpec::Rod,
        PlannerSpec::Correlation { history },
        PlannerSpec::Llf {
            rates: mean_rates.clone(),
        },
        PlannerSpec::Random { seed: 3 },
        PlannerSpec::Connected { rates: mean_rates },
    ];
    let plans: Vec<(&str, Allocation)> = specs
        .iter()
        .map(|spec| {
            let alloc = build_planner(spec)
                .plan_with_metrics(&model, &cluster, exp.metrics())
                .unwrap();
            (spec.name(), alloc)
        })
        .collect();

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for (name, alloc) in &plans {
        let sources: Vec<SourceSpec> = traces
            .iter()
            .map(|t| SourceSpec::TraceDriven(t.clone()))
            .collect();
        let report = Simulation::new(
            &graph,
            alloc,
            &cluster,
            sources,
            SimulationConfig {
                horizon,
                warmup: horizon * 0.1,
                seed: derive_seed(500, name.len() as u64),
                max_queue: 400_000,
                sample_interval: Some(1.0),
                ..SimulationConfig::default()
            },
        )
        .run();
        let mean_ms = report.mean_latency().map(|l| l * 1e3);
        // None-safe: a fully saturated/shed run has no latency samples.
        let p99_ms = report.p99_latency().map(|l| l * 1e3);
        rows.push(vec![
            name.to_string(),
            mean_ms.map_or("-".into(), fmt),
            p99_ms.map_or("-".into(), fmt),
            fmt(report.max_utilisation()),
            report.saturated.to_string(),
            fmt(ev.min_plane_distance(alloc)),
        ]);
        payload.push(LatencyRow {
            algorithm: name.to_string(),
            mean_latency_ms: mean_ms,
            p99_latency_ms: p99_ms,
            max_utilisation: report.max_utilisation(),
            saturated: report.saturated,
            timeline: report.timeline,
        });
    }

    print_table(
        "Latency under bursty traces (mean load 65% of capacity)",
        &[
            "algorithm",
            "mean lat (ms)",
            "p99 lat (ms)",
            "max util",
            "saturated",
            "min plane dist",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: ROD's latency stays lowest / bounded; placements \
         with smaller\nfeasible sets hit saturation during bursts and their \
         tail latency explodes."
    );
    write_json("exp_latency", &payload);
    exp.finish();
}
