//! **§6.1 lower-bound extension experiment \[reconstructed\]**.
//!
//! "This general lower bound extension is useful in cases where it is
//! known that the input stream rates are strictly, or likely, larger
//! than a workload point B. Using point B as the lower bound is
//! equivalent to ignoring those workload points that never or seldom
//! happen."
//!
//! Reconstruction: draw random-tree workloads, set `B` to a fraction β of
//! each input's share of the ideal simplex centroid, and compare plain
//! ROD against ROD-with-lower-bound *on the truncated workload set*
//! `{R ≥ B}`: the fraction of ideal-simplex sample points above `B` that
//! each plan sustains. The LB-aware plan should win there (and may lose
//! on the full set — it deliberately sacrifices the never-happening
//! corner near the origin).

use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_core::allocation::PlanEvaluator;
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_core::metrics::make_estimator;
use rod_core::rod::{RodOptions, RodPlanner};
use rod_geom::rng::derive_seed;
use rod_geom::OnlineStats;
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct LbPoint {
    beta: f64,
    graph_seed: u64,
    plain_truncated_ratio: f64,
    lb_truncated_ratio: f64,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let inputs = 4;
    let nodes = 4;
    let graphs = 6;
    let betas = [0.0, 0.2, 0.4, 0.6];

    let mut rows = Vec::new();
    let mut payload: Vec<LbPoint> = Vec::new();

    for &beta in &betas {
        let mut plain_stats = OnlineStats::new();
        let mut lb_stats = OnlineStats::new();
        let mut plain_metric = OnlineStats::new();
        let mut lb_metric = OnlineStats::new();
        for g in 0..graphs {
            let seed = derive_seed(600, (g as u64) * 13 + (beta * 100.0) as u64);
            let graph = RandomTreeGenerator::paper_default(inputs, 15).generate(seed);
            let model = LoadModel::derive(&graph).unwrap();
            let cluster = Cluster::homogeneous(nodes, 1.0);
            let ev = PlanEvaluator::new(&model, &cluster);
            let estimator = make_estimator(&model, &cluster, 40_000, seed ^ 1);

            // B: an *asymmetric* bound — the first half of the inputs are
            // known to run at beta × (twice their centroid share of the
            // ideal simplex), the rest can go all the way to zero. A
            // symmetric bound shifts every candidate's LB-distance almost
            // equally and gives the greedy nothing to exploit; asymmetry
            // is where knowing B pays (e.g. one feed with a guaranteed
            // baseline rate).
            let d = model.num_vars();
            let b: Vec<f64> = (0..inputs)
                .map(|k| {
                    if k < inputs / 2 {
                        2.0 * beta * cluster.total_capacity()
                            / (model.total_coeffs()[k] * (d as f64 + 1.0))
                    } else {
                        0.0
                    }
                })
                .collect();
            let b_var = model.variable_point(&b);

            let plain = RodPlanner::new()
                .place(&model, &cluster)
                .unwrap()
                .allocation;
            let lb = RodPlanner::with_options(RodOptions {
                input_lower_bound: Some(b.clone()),
                ..RodOptions::default()
            })
            .place(&model, &cluster)
            .unwrap()
            .allocation;

            // Truncated-set ratio: of the ideal-simplex points with
            // x >= B, what fraction does each plan sustain?
            let above: Vec<&rod_geom::Vector> =
                estimator.points().iter().filter(|p| b_var.le(p)).collect();
            if above.is_empty() {
                continue;
            }
            let truncated_ratio = |alloc: &rod_core::Allocation| {
                let region = ev.feasible_region(alloc);
                above.iter().filter(|p| region.contains(p)).count() as f64 / above.len() as f64
            };
            let plain_r = truncated_ratio(&plain);
            let lb_r = truncated_ratio(&lb);
            plain_stats.push(plain_r);
            lb_stats.push(lb_r);
            // The greedy's own objective: min distance from B̃ to any
            // normalised node hyperplane.
            let b_norm = rod_geom::Vector::new(
                (0..d)
                    .map(|k| b_var[k] * model.total_coeffs()[k] / cluster.total_capacity())
                    .collect(),
            );
            plain_metric.push(ev.weight_matrix(&plain).min_plane_distance_from(&b_norm));
            lb_metric.push(ev.weight_matrix(&lb).min_plane_distance_from(&b_norm));
            payload.push(LbPoint {
                beta,
                graph_seed: seed,
                plain_truncated_ratio: plain_r,
                lb_truncated_ratio: lb_r,
            });
        }
        rows.push(vec![
            fmt(beta),
            fmt(plain_stats.mean()),
            fmt(lb_stats.mean()),
            fmt(lb_stats.mean() - plain_stats.mean()),
            fmt(plain_metric.mean()),
            fmt(lb_metric.mean()),
        ]);
    }

    print_table(
        "ROD vs ROD+lower-bound on the truncated workload set {R >= B}",
        &[
            "beta",
            "plain ROD",
            "ROD-LB",
            "LB gain",
            "r_B(plain)",
            "r_B(LB)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: at beta = 0 the two coincide; as beta grows, \
         ROD-LB's advantage\non the truncated set is non-negative and \
         (typically) grows."
    );
    write_json("exp_lower_bound", &payload);
    exp.finish();
}
