//! **Figure 9** — "Relationship between r and the feasible set size."
//!
//! The paper generates 1000 random node load-coefficient matrices with
//! n = 10 nodes and d = 3 input streams, and scatter-plots their
//! feasible-set-size / ideal-feasible-set-size ratio against `r / r*`
//! (minimum plane distance over the ideal hyperplane's plane distance).
//! Both the upper and lower envelope of the cloud rise with `r/r*`, and
//! the analytic lower bound is `∝ (r/r*)^d` (the inscribed hypersphere /
//! simplex-scaling argument) — the empirical ground for MMPD.

use rand::Rng as _;
use serde::Serialize;

use rod_bench::output::{fmt, print_table, write_json};
use rod_geom::simplex::hypersphere_ratio_bound;
use rod_geom::{seeded_rng, FeasibleRegion, Hyperplane, Matrix, Vector, VolumeEstimator};

#[derive(Serialize)]
struct ScatterPoint {
    r_over_rstar: f64,
    ratio_to_ideal: f64,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let n = 10;
    let d = 3;
    let matrices = 1000;
    let mut rng = seeded_rng(9);

    // Shared point set over the normalised ideal simplex (totals = 1s,
    // capacity C_T = 1, nodes C_i = 1/n).
    let estimator = VolumeEstimator::new(&vec![1.0; d], 1.0, 40_000, 4);
    let r_star = Hyperplane::ideal(d).plane_distance();

    let mut points = Vec::with_capacity(matrices);
    for _ in 0..matrices {
        // Random column-normalised load split: each stream's total load 1
        // distributed over the 10 nodes by normalised uniform draws.
        let mut ln = Matrix::zeros(n, d);
        for k in 0..d {
            let draws: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            let total: f64 = draws.iter().sum();
            for i in 0..n {
                ln[(i, k)] = draws[i] / total;
            }
        }
        let caps = Vector::new(vec![1.0 / n as f64; n]);
        let region = FeasibleRegion::new(ln.clone(), caps);
        let ratio = estimator.estimate(&region).ratio_to_ideal;
        // min plane distance of the normalised weight hyperplanes:
        // w_ik = ln_ik / (1/n) = n·ln_ik; plane i: w_i x = 1.
        let r = (0..n)
            .map(|i| {
                let w: Vec<f64> = ln.row(i).iter().map(|v| v * n as f64).collect();
                Hyperplane::new(Vector::new(w), 1.0).plane_distance()
            })
            .fold(f64::INFINITY, f64::min);
        points.push(ScatterPoint {
            r_over_rstar: r / r_star,
            ratio_to_ideal: ratio,
        });
    }

    // Bucket the scatter into deciles of r/r* for a console-friendly view.
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); 10];
    for p in &points {
        let b = ((p.r_over_rstar * 10.0).floor() as usize).min(9);
        buckets[b].push(p.ratio_to_ideal);
    }
    let mut rows = Vec::new();
    for (b, vals) in buckets.iter().enumerate() {
        if vals.is_empty() {
            continue;
        }
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(0.0f64, f64::max);
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        // The paper's curve: "the computed lower bound using the volume
        // function of hyperspheres, which is a constant times r^d". The
        // bucket's bound uses its left edge (valid for every point in it).
        let r_left = (b as f64 / 10.0) * r_star;
        let bound = hypersphere_ratio_bound(r_left, d);
        rows.push(vec![
            format!("{:.1}-{:.1}", b as f64 / 10.0, (b + 1) as f64 / 10.0),
            vals.len().to_string(),
            fmt(lo),
            fmt(mean),
            fmt(hi),
            fmt(bound),
        ]);
    }
    print_table(
        "Figure 9: feasible-set ratio vs r/r* (1000 random L^n, n=10, d=3)",
        &[
            "r/r*",
            "count",
            "min ratio",
            "mean ratio",
            "max ratio",
            "sphere bound",
        ],
        &rows,
    );

    // The figure's claim: both envelopes increase with r/r*, and every
    // point sits above the inscribed-hypersphere lower bound c·r^d.
    let violations = points
        .iter()
        .filter(|p| p.ratio_to_ideal + 0.01 < hypersphere_ratio_bound(p.r_over_rstar * r_star, d))
        .count();
    println!(
        "\nPoints below the hypersphere lower bound (should be 0): {violations} / {}",
        points.len()
    );
    let xy: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.r_over_rstar, p.ratio_to_ideal))
        .collect();
    println!(
        "\n{}",
        rod_bench::plot::scatter("Figure 9, rendered (x = r/r*, y = ratio):", &xy, 72, 18)
    );
    write_json("fig09_plane_distance", &points);
    exp.finish();
}
