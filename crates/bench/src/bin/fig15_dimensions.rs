//! **Figure 15** — varying the number of input streams.
//!
//! "We now examine the relative performance of different algorithms for
//! different numbers of dimensions using the simulator. Figure 15 shows
//! the ratio of the feasible set size of the competing approaches to
//! that of ROD … as additional inputs are used, the relative performance
//! of ROD gets increasingly better. … the case with two inputs exhibits
//! a higher ratio than that estimated by the tail, as the relatively few
//! operators per node in this case significantly limits the possible
//! load distribution choices."
//!
//! Setup: fixed operators per tree, d from 2 to 8, five nodes.

use serde::Serialize;

use rod_bench::comparison::{compare_algorithms, ComparisonConfig};
use rod_bench::output::{fmt, print_table, write_json};
use rod_core::cluster::Cluster;
use rod_core::load_model::LoadModel;
use rod_geom::rng::derive_seed;
use rod_geom::OnlineStats;
use rod_workloads::RandomTreeGenerator;

#[derive(Serialize)]
struct FigurePoint {
    inputs: usize,
    algorithm: String,
    ratio_to_rod: f64,
}

fn main() {
    let exp = rod_bench::output::Experiment::start();
    let ops_per_tree = 16;
    let nodes = 5;
    let graphs_per_dim = 3;
    let dims = [2usize, 3, 4, 5, 6, 7, 8];

    let mut rows = Vec::new();
    let mut payload: Vec<FigurePoint> = Vec::new();

    let tasks: Vec<(usize, usize)> = dims
        .iter()
        .flat_map(|&d| (0..graphs_per_dim).map(move |g| (d, g)))
        .collect();
    let task_results = rod_bench::parallel_map(tasks, 8, |(d, g)| {
        let graph = RandomTreeGenerator::paper_default(d, ops_per_tree)
            .generate(derive_seed(150, (d * 10 + g) as u64));
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let results = compare_algorithms(
            &model,
            &cluster,
            &ComparisonConfig {
                reps: 6,
                volume_samples: 30_000,
                seed: derive_seed(151, (d * 10 + g) as u64),
                ..ComparisonConfig::default()
            },
        );
        (d, results)
    });

    for &d in &dims {
        let mut acc: Vec<(String, OnlineStats)> = Vec::new();
        for (_, results) in task_results.iter().filter(|(td, _)| *td == d) {
            let rod = results[0].mean_ratio;
            for r in &results[1..] {
                let rel = if rod > 0.0 { r.mean_ratio / rod } else { 0.0 };
                match acc.iter_mut().find(|(n, _)| *n == r.name) {
                    Some((_, s)) => s.push(rel),
                    None => {
                        let mut s = OnlineStats::new();
                        s.push(rel);
                        acc.push((r.name.clone(), s));
                    }
                }
            }
        }
        let mut row = vec![d.to_string()];
        for (name, stats) in &acc {
            row.push(fmt(stats.mean()));
            payload.push(FigurePoint {
                inputs: d,
                algorithm: name.clone(),
                ratio_to_rod: stats.mean(),
            });
        }
        rows.push(row);
    }

    print_table(
        "Figure 15: feasible-set ratio A/ROD vs #input streams (16 ops/tree, n=5)",
        &["d", "Correlation", "LLF", "Random", "Connected"],
        &rows,
    );
    println!(
        "\nPaper shape: every baseline's ratio to ROD falls as d grows \
         (each extra dimension\nbuys ROD a roughly constant relative \
         improvement); d=2 sits above the trend line."
    );
    write_json("fig15_dimensions", &payload);
    exp.finish();
}
