//! Precomputed failover assignments and survivor feasible-set scoring.

use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use rod_geom::{PointBatch, Vector};

use crate::allocation::Allocation;
use crate::cluster::Cluster;
use crate::eval::{IncrementalPlanEval, SampledFeasibility};
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;
use crate::resilience::FailureScenario;
use crate::score_cache::ScoreCache;

/// Computes where a scenario's orphaned operators should go: unassign
/// every failed node's operators from the incremental state, then place
/// the orphans back on survivors with the same greedy ROD Phase 2 uses —
/// norm-descending order, Class I node if one exists, otherwise the
/// survivor with the largest candidate plane distance (MMPD). Each probe
/// is O(d) on the incremental state, so a whole scenario costs
/// O(orphans · survivors · d).
///
/// Returns `(operator, destination)` pairs; destinations are always
/// surviving nodes. The caller's allocation is untouched.
pub fn survivor_moves(
    model: &LoadModel,
    cluster: &Cluster,
    alloc: &Allocation,
    scenario: &FailureScenario,
) -> Vec<(OperatorId, NodeId)> {
    let mut eval = IncrementalPlanEval::from_allocation(model, cluster, alloc);
    let mut orphans: Vec<OperatorId> = Vec::new();
    for j in 0..model.num_operators() {
        let op = OperatorId(j);
        if let Some(host) = alloc.node_of(op) {
            if scenario.kills(host) {
                eval.unassign(op, host);
                orphans.push(op);
            }
        }
    }
    // Heaviest first, exactly like ROD Phase 1: placing high-impact
    // orphans while the survivors still have slack.
    orphans.sort_by(|&a, &b| {
        model
            .operator_norm(b)
            .total_cmp(&model.operator_norm(a))
            .then(a.cmp(&b))
    });
    let survivors = scenario.survivors(cluster.num_nodes());
    let mut moves = Vec::with_capacity(orphans.len());
    for op in orphans {
        let mut best: Option<(NodeId, f64, bool)> = None;
        for &node in &survivors {
            let score = eval.score_candidate(op, node);
            let better = match best {
                None => true,
                Some((_, best_dist, best_class_one)) => {
                    // Class I dominates Class II; plane distance breaks
                    // ties within a class (lowest index wins exact ties).
                    (score.class_one && !best_class_one)
                        || (score.class_one == best_class_one
                            && score.plane_distance > best_dist + 1e-15)
                }
            };
            if better {
                best = Some((node, score.plane_distance, score.class_one));
            }
        }
        let (dest, _, _) = best.expect("scenario leaves at least one survivor");
        eval.assign(op, dest);
        moves.push((op, dest));
    }
    moves
}

/// For each node: where its operators go when it (alone) dies. The
/// backup assignment is chosen by [`survivor_moves`], i.e. by the MMPD
/// greedy, so the post-failure plan keeps the largest worst-node plane
/// distance the greedy can manage.
///
/// The table is a value: serialisable, diffable, and cheap to ship to a
/// runtime that must fail over without re-planning.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailoverTable {
    /// `entries[i]` lists `(operator, backup node)` for every operator
    /// hosted on node `i`, in the order they should be re-placed.
    entries: Vec<Vec<(OperatorId, NodeId)>>,
}

impl FailoverTable {
    /// Precomputes the table for a complete allocation: one
    /// [`survivor_moves`] pass per single-node scenario.
    ///
    /// Panics on an incomplete allocation or a single-node cluster (no
    /// survivors to fail over to — callers should treat that cluster as
    /// unprotectable).
    pub fn precompute(model: &LoadModel, cluster: &Cluster, alloc: &Allocation) -> FailoverTable {
        assert!(alloc.is_complete(), "failover table needs a complete plan");
        assert!(
            cluster.num_nodes() >= 2,
            "single-node clusters have no failover target"
        );
        let entries = (0..cluster.num_nodes())
            .map(|i| survivor_moves(model, cluster, alloc, &FailureScenario::single(NodeId(i))))
            .collect();
        FailoverTable { entries }
    }

    /// An empty table for `n` nodes (no planned backups; the simulator
    /// falls back to nothing and orphans stay stranded).
    pub fn empty(n: usize) -> FailoverTable {
        FailoverTable {
            entries: vec![Vec::new(); n],
        }
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.entries.len()
    }

    /// The planned `(operator, backup)` moves for the loss of one node.
    pub fn moves_for(&self, node: NodeId) -> &[(OperatorId, NodeId)] {
        &self.entries[node.index()]
    }

    /// The designated backup of one operator for the loss of `node`, if
    /// the table planned one.
    pub fn backup_of(&self, node: NodeId, op: OperatorId) -> Option<NodeId> {
        self.entries[node.index()]
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, dest)| *dest)
    }
}

/// Scores scenarios for one model + cluster against a shared
/// quasi-Monte-Carlo point set: the number of points whose load stays
/// within every *survivor's* capacity after the scenario's orphans have
/// been re-placed by [`survivor_moves`].
///
/// Built on [`SampledFeasibility`], so one scenario evaluation costs
/// O(m·P) pushes/pops instead of an O(P·n·d) from-scratch region test,
/// and every plan is judged on the same points (noise-free comparisons).
///
/// A scorer can be [`fork`](ScenarioScorer::fork)ed for parallel
/// neighborhood scans: forks carry their own feasibility tracker (the
/// mutable part) but share one memoisation cache behind a mutex, so
/// `score_cache_*` metrics stay exact totals across workers.
pub struct ScenarioScorer<'a> {
    model: &'a LoadModel,
    cluster: &'a Cluster,
    feas: SampledFeasibility,
    /// Memoised alive counts per effective assignment — scoped to this
    /// scorer's (model, cluster, point set), so sharing is always
    /// sound. Shared across forks; entries are pure (the key fully
    /// determines the count), so concurrent interleavings can change
    /// only *when* a value is cached, never the value — results stay
    /// deterministic, and the lock is uncontended in the serial case.
    cache: Arc<Mutex<ScoreCache>>,
}

impl<'a> ScenarioScorer<'a> {
    /// A scorer over an explicit point set (typically
    /// `VolumeEstimator::points()`).
    pub fn new(model: &'a LoadModel, cluster: &'a Cluster, points: &[Vector]) -> Self {
        ScenarioScorer::from_batch(model, cluster, &PointBatch::from_points(points))
    }

    /// [`new`](Self::new) over an already-transposed column store
    /// (typically `VolumeEstimator::batch()`), skipping the O(P·d)
    /// re-transpose.
    pub fn from_batch(model: &'a LoadModel, cluster: &'a Cluster, batch: &PointBatch) -> Self {
        ScenarioScorer {
            model,
            cluster,
            feas: SampledFeasibility::from_batch(
                model.lo(),
                batch,
                cluster.capacities().as_slice(),
            ),
            cache: Arc::new(Mutex::new(ScoreCache::new())),
        }
    }

    /// A worker-side copy for parallel neighborhood scans: its own
    /// feasibility tracker (cloned pristine — `SampledFeasibility`
    /// unwinds to exact bits between scores), the *same* shared score
    /// cache. Scoring through a fork is bit-identical to scoring
    /// through the original.
    pub fn fork(&self) -> ScenarioScorer<'a> {
        ScenarioScorer {
            model: self.model,
            cluster: self.cluster,
            feas: self.feas.clone(),
            cache: Arc::clone(&self.cache),
        }
    }

    /// Like [`fork`](Self::fork), but with a **private, initially empty**
    /// score cache instead of the shared one — a cache *shard*. Long
    /// parallel scans hammer the shared mutex on every candidate score;
    /// a detached fork never contends, at the cost of re-computing keys
    /// another worker already saw. Entries are pure (the key fully
    /// determines the count), so detached scoring is still bit-identical
    /// to shared scoring. After the scan, drain each shard with
    /// [`swap_cache`](Self::swap_cache) and fold it into the parent via
    /// [`absorb_cache`](Self::absorb_cache) so the parent's
    /// `score_cache_*` counters are exact totals of all lookups anywhere.
    pub fn fork_detached(&self) -> ScenarioScorer<'a> {
        ScenarioScorer {
            model: self.model,
            cluster: self.cluster,
            feas: self.feas.clone(),
            cache: Arc::new(Mutex::new(ScoreCache::new())),
        }
    }

    /// Folds another cache (typically a detached fork's shard) into this
    /// scorer's cache: entries union (pure values, so collisions agree)
    /// and hit/miss counters add, keeping the totals exact.
    pub fn absorb_cache(&self, other: ScoreCache) {
        self.cache_lock().absorb(other);
    }

    fn cache_lock(&self) -> std::sync::MutexGuard<'_, ScoreCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Cache lookups that were served from memory (exact total across
    /// all forks sharing this cache).
    pub fn cache_hits(&self) -> u64 {
        self.cache_lock().hits()
    }

    /// Cache lookups that had to recompute (exact total across forks).
    pub fn cache_misses(&self) -> u64 {
        self.cache_lock().misses()
    }

    /// Number of memoised assignments.
    pub fn cache_len(&self) -> usize {
        self.cache_lock().len()
    }

    /// Replaces the score cache — e.g. with one pre-seeded by an
    /// [`OptimalPlanner`](crate::baselines::optimal::OptimalPlanner) search over
    /// the **same model, cluster and point set** (see the scope rule in
    /// [`crate::score_cache`]). Returns the cache previously installed.
    /// Forks share the cache, so the swap is visible to all of them.
    pub fn swap_cache(&mut self, cache: ScoreCache) -> ScoreCache {
        std::mem::replace(&mut *self.cache_lock(), cache)
    }

    /// Total points tracked.
    pub fn num_points(&self) -> usize {
        self.feas.num_points()
    }

    /// Feasible-point count of the healthy plan (no failure).
    pub fn healthy_alive(&mut self, alloc: &Allocation) -> usize {
        self.alive_under(alloc, &[])
    }

    /// Feasible-point count surviving `scenario`: orphans re-placed per
    /// [`survivor_moves`], dead nodes carry nothing (their capacity
    /// constraint is vacuous).
    pub fn scenario_alive(&mut self, alloc: &Allocation, scenario: &FailureScenario) -> usize {
        let moves = survivor_moves(self.model, self.cluster, alloc, scenario);
        self.alive_under(alloc, &moves)
    }

    /// Worst-case (minimum) surviving feasible-point count over a set of
    /// scenarios. An empty scenario list scores as the healthy count.
    pub fn worst_case_alive(&mut self, alloc: &Allocation, scenarios: &[FailureScenario]) -> usize {
        scenarios
            .iter()
            .map(|s| self.scenario_alive(alloc, s))
            .min()
            .unwrap_or_else(|| self.healthy_alive(alloc))
    }

    /// Alive count with every operator at its allocation host except the
    /// redirected ones. The effective assignment fully determines the
    /// count (dead nodes carry nothing, so they never kill a point), so
    /// it doubles as the [`ScoreCache`] key; on a miss, pushes all
    /// assignments, reads the count, then pops them in LIFO order,
    /// leaving the tracker pristine.
    fn alive_under(&mut self, alloc: &Allocation, redirects: &[(OperatorId, NodeId)]) -> usize {
        let m = self.model.num_operators();
        let mut key: Vec<u32> = Vec::with_capacity(m);
        for j in 0..m {
            let op = OperatorId(j);
            let dest = redirects
                .iter()
                .find(|(o, _)| *o == op)
                .map(|(_, d)| *d)
                .or_else(|| alloc.node_of(op));
            key.push(dest.map_or(crate::score_cache::UNPLACED, |n| n.index() as u32));
        }
        if let Some(alive) = self.cache_lock().get(&key) {
            return alive;
        }
        let mut pushed: Vec<(usize, usize)> = Vec::with_capacity(m);
        for (j, &dest) in key.iter().enumerate() {
            if dest != crate::score_cache::UNPLACED {
                self.feas.push_assign(j, dest as usize);
                pushed.push((j, dest as usize));
            }
        }
        let alive = self.feas.alive_count();
        for &(j, i) in pushed.iter().rev() {
            self.feas.pop_assign(j, i);
        }
        self.cache_lock().insert(key, alive);
        alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::PlanEvaluator;
    use crate::examples_paper::figure4_graph;
    use crate::rod::RodPlanner;
    use rod_geom::VolumeEstimator;

    fn setup() -> (LoadModel, Cluster) {
        (
            LoadModel::derive(&figure4_graph()).unwrap(),
            Cluster::homogeneous(3, 1.0),
        )
    }

    fn rod_plan(model: &LoadModel, cluster: &Cluster) -> Allocation {
        RodPlanner::new().place(model, cluster).unwrap().allocation
    }

    #[test]
    fn survivor_moves_avoid_dead_nodes() {
        let (model, cluster) = setup();
        let alloc = rod_plan(&model, &cluster);
        for scenario in FailureScenario::all_up_to_k(3, 2) {
            let moves = survivor_moves(&model, &cluster, &alloc, &scenario);
            // Every orphan is exactly an operator of a failed node, and
            // every destination survives.
            for (op, dest) in &moves {
                assert!(scenario.kills(alloc.node_of(*op).unwrap()));
                assert!(!scenario.kills(*dest), "{scenario:?} -> {dest:?}");
            }
            let orphan_count: usize = scenario
                .failed()
                .iter()
                .map(|n| alloc.operators_on(*n).len())
                .sum();
            assert_eq!(moves.len(), orphan_count);
        }
    }

    #[test]
    fn table_covers_every_node_and_operator() {
        let (model, cluster) = setup();
        let alloc = rod_plan(&model, &cluster);
        let table = FailoverTable::precompute(&model, &cluster, &alloc);
        assert_eq!(table.num_nodes(), 3);
        for i in 0..3 {
            let node = NodeId(i);
            let hosted = alloc.operators_on(node);
            assert_eq!(table.moves_for(node).len(), hosted.len());
            for op in hosted {
                let backup = table.backup_of(node, op).expect("backup planned");
                assert_ne!(backup, node, "backup on the dead node");
            }
        }
        // Operators not hosted on a node have no backup entry for it.
        for j in 0..4 {
            let op = OperatorId(j);
            if alloc.node_of(op) != Some(NodeId(0)) {
                assert_eq!(table.backup_of(NodeId(0), op), None);
            }
        }
    }

    #[test]
    fn table_round_trips_through_json() {
        let (model, cluster) = setup();
        let alloc = rod_plan(&model, &cluster);
        let table = FailoverTable::precompute(&model, &cluster, &alloc);
        let json = serde_json::to_string(&table).unwrap();
        let back: FailoverTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn scorer_matches_from_scratch_region_counts() {
        let (model, cluster) = setup();
        let alloc = rod_plan(&model, &cluster);
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            2_000,
            7,
        );
        let mut scorer = ScenarioScorer::new(&model, &cluster, estimator.points());

        // Healthy count agrees with a from-scratch region test.
        let ev = PlanEvaluator::new(&model, &cluster);
        let region = ev.feasible_region(&alloc);
        let fresh = estimator
            .points()
            .iter()
            .filter(|p| region.contains(p))
            .count();
        assert_eq!(scorer.healthy_alive(&alloc), fresh);

        // Scenario count agrees with manually applying the moves and
        // re-testing (dead node hosts nothing, so drop its constraint by
        // moving everything off it).
        let scenario = FailureScenario::single(NodeId(0));
        let moves = survivor_moves(&model, &cluster, &alloc, &scenario);
        let mut post = alloc.clone();
        for (op, dest) in &moves {
            post.assign(*op, *dest);
        }
        let post_region = ev.feasible_region(&post);
        let fresh_post = estimator
            .points()
            .iter()
            .filter(|p| post_region.contains(p))
            .count();
        assert_eq!(scorer.scenario_alive(&alloc, &scenario), fresh_post);

        // The scorer is reusable: a second healthy query is unchanged —
        // and answered from the score cache without re-pushing.
        let misses = scorer.cache_misses();
        assert_eq!(scorer.healthy_alive(&alloc), fresh);
        assert_eq!(scorer.cache_misses(), misses);
        assert!(scorer.cache_hits() > 0);
    }

    /// Forks score identically to the original and share one cache: a
    /// query answered by the original is a pure hit through any fork.
    #[test]
    fn forked_scorers_share_the_cache_and_agree_bit_for_bit() {
        let (model, cluster) = setup();
        let alloc = rod_plan(&model, &cluster);
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            2_000,
            3,
        );
        let mut scorer = ScenarioScorer::new(&model, &cluster, estimator.points());
        let healthy = scorer.healthy_alive(&alloc);
        let mut fork = scorer.fork();
        let misses = fork.cache_misses();
        assert_eq!(fork.healthy_alive(&alloc), healthy);
        assert_eq!(fork.cache_misses(), misses, "fork re-computed a cached key");
        // A fresh query through the fork lands in the shared cache and
        // is then a hit for the original.
        let scenario = FailureScenario::single(NodeId(1));
        let via_fork = fork.scenario_alive(&alloc, &scenario);
        let hits = scorer.cache_hits();
        assert_eq!(scorer.scenario_alive(&alloc, &scenario), via_fork);
        assert!(scorer.cache_hits() > hits);
    }

    /// Detached forks score bit-identically from a cold private shard,
    /// and absorbing the shard makes the parent's counters the exact sum
    /// of all lookups while turning the shard's keys into parent hits.
    #[test]
    fn detached_forks_score_identically_and_merge_exactly() {
        let (model, cluster) = setup();
        let alloc = rod_plan(&model, &cluster);
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            2_000,
            3,
        );
        let mut scorer = ScenarioScorer::new(&model, &cluster, estimator.points());
        let healthy = scorer.healthy_alive(&alloc);
        let parent_hits = scorer.cache_hits();
        let parent_misses = scorer.cache_misses();

        let mut shard_scorer = scorer.fork_detached();
        // Cold shard: the healthy key is recomputed (a miss), and the
        // parent's counters don't move.
        assert_eq!(shard_scorer.healthy_alive(&alloc), healthy);
        assert_eq!(shard_scorer.cache_misses(), 1);
        assert_eq!(scorer.cache_misses(), parent_misses);

        let scenario = FailureScenario::single(NodeId(1));
        let via_shard = shard_scorer.scenario_alive(&alloc, &scenario);
        let shard_hits = shard_scorer.cache_hits();
        let shard_misses = shard_scorer.cache_misses();

        let shard = shard_scorer.swap_cache(ScoreCache::new());
        scorer.absorb_cache(shard);
        assert_eq!(scorer.cache_hits(), parent_hits + shard_hits);
        assert_eq!(scorer.cache_misses(), parent_misses + shard_misses);
        // The shard's scenario key is now a pure hit through the parent.
        let hits = scorer.cache_hits();
        assert_eq!(scorer.scenario_alive(&alloc, &scenario), via_shard);
        assert!(scorer.cache_hits() > hits);
    }

    #[test]
    fn losing_a_node_never_grows_the_feasible_set() {
        let (model, cluster) = setup();
        let alloc = rod_plan(&model, &cluster);
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            2_000,
            3,
        );
        let mut scorer = ScenarioScorer::new(&model, &cluster, estimator.points());
        let healthy = scorer.healthy_alive(&alloc);
        for scenario in FailureScenario::all_single(3) {
            assert!(scorer.scenario_alive(&alloc, &scenario) <= healthy);
        }
    }
}
