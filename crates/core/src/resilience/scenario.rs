//! Failure scenarios: which nodes die together.

use serde::{Deserialize, Serialize};

use crate::cluster::{Cluster, Topology};
use crate::error::PlacementError;
use crate::ids::NodeId;

/// A fail-stop failure scenario: a set of nodes that die simultaneously.
///
/// Scenarios are value objects — sorted, duplicate-free — so they compare
/// and serialise canonically.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureScenario {
    failed: Vec<NodeId>,
}

impl FailureScenario {
    /// A scenario from an arbitrary node list (sorted, deduplicated).
    pub fn new(mut failed: Vec<NodeId>) -> Self {
        failed.sort();
        failed.dedup();
        FailureScenario { failed }
    }

    /// The loss of a single node.
    pub fn single(node: NodeId) -> Self {
        FailureScenario { failed: vec![node] }
    }

    /// All single-node scenarios of an `n`-node cluster.
    pub fn all_single(n: usize) -> Vec<FailureScenario> {
        (0..n).map(|i| FailureScenario::single(NodeId(i))).collect()
    }

    /// Every scenario losing between 1 and `k` nodes of an `n`-node
    /// cluster, smaller losses first, members lexicographic. `k` is
    /// clamped to `n - 1`: losing every node leaves no survivors and no
    /// plan can score it.
    pub fn all_up_to_k(n: usize, k: usize) -> Vec<FailureScenario> {
        let k = k.min(n.saturating_sub(1));
        let mut out = Vec::new();
        for size in 1..=k {
            for combo in combinations(n, size) {
                out.push(FailureScenario {
                    failed: combo.into_iter().map(NodeId).collect(),
                });
            }
        }
        out
    }

    /// One scenario per rack of `topology`: every node of the rack dies
    /// at once — the correlated-failure mode (shared switch or power
    /// feed) that rack-aware placement defends against. Empty racks are
    /// skipped; rack order is preserved, members sorted ascending.
    pub fn racks(topology: &Topology) -> Vec<FailureScenario> {
        topology
            .racks()
            .iter()
            .filter(|members| !members.is_empty())
            .map(|members| FailureScenario::new(members.iter().copied().map(NodeId).collect()))
            .collect()
    }

    /// The failed nodes, sorted ascending.
    pub fn failed(&self) -> &[NodeId] {
        &self.failed
    }

    /// Number of failed nodes.
    pub fn num_failed(&self) -> usize {
        self.failed.len()
    }

    /// True when `node` dies in this scenario.
    pub fn kills(&self, node: NodeId) -> bool {
        self.failed.binary_search(&node).is_ok()
    }

    /// The surviving nodes of an `n`-node cluster, ascending.
    pub fn survivors(&self, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(NodeId)
            .filter(|node| !self.kills(*node))
            .collect()
    }

    /// Validates the scenario against a cluster: non-empty, every failed
    /// node in range, and at least one survivor.
    pub fn validate(&self, cluster: &Cluster) -> Result<(), PlacementError> {
        let n = cluster.num_nodes();
        if self.failed.is_empty() {
            return Err(PlacementError::EmptyScenario);
        }
        for node in &self.failed {
            if node.index() >= n {
                return Err(PlacementError::NodeOutOfRange {
                    node: node.index(),
                    nodes: n,
                });
            }
        }
        if self.failed.len() >= n {
            return Err(PlacementError::NoSurvivors { nodes: n });
        }
        Ok(())
    }
}

/// All `size`-subsets of `0..n`, lexicographic.
fn combinations(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if size == 0 || size > n {
        return out;
    }
    let mut pick: Vec<usize> = (0..size).collect();
    loop {
        out.push(pick.clone());
        // Advance to the next combination; finish when none remains.
        let mut i = size;
        let mut advanced = false;
        while i > 0 {
            i -= 1;
            if pick[i] < n - (size - i) {
                pick[i] += 1;
                for j in i + 1..size {
                    pick[j] = pick[j - 1] + 1;
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_scenarios_enumerate_every_node() {
        let all = FailureScenario::all_single(3);
        assert_eq!(all.len(), 3);
        assert_eq!(all[1].failed(), &[NodeId(1)]);
        assert!(all[1].kills(NodeId(1)));
        assert!(!all[1].kills(NodeId(0)));
        assert_eq!(all[1].survivors(3), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn k_scenarios_count_binomially() {
        // n = 4, k = 2: C(4,1) + C(4,2) = 4 + 6 = 10.
        let all = FailureScenario::all_up_to_k(4, 2);
        assert_eq!(all.len(), 10);
        // Sorted and duplicate-free.
        for s in &all {
            let f = s.failed();
            assert!(f.windows(2).all(|w| w[0] < w[1]), "{f:?}");
        }
        let mut seen = all.clone();
        seen.dedup();
        assert_eq!(seen.len(), all.len());
    }

    #[test]
    fn k_is_clamped_below_total_loss() {
        // k = n would leave no survivors; it is clamped to n - 1.
        let all = FailureScenario::all_up_to_k(2, 5);
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|s| s.num_failed() == 1));
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = FailureScenario::new(vec![NodeId(2), NodeId(0), NodeId(2)]);
        assert_eq!(s.failed(), &[NodeId(0), NodeId(2)]);
    }

    #[test]
    fn rack_scenarios_cover_each_rack_once() {
        // 5 nodes over 2 racks: [0, 1, 2] and [3, 4].
        let topo = Topology::uniform(5, 2);
        let all = FailureScenario::racks(&topo);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].failed(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(all[1].failed(), &[NodeId(3), NodeId(4)]);
        let cluster = Cluster::homogeneous(5, 1.0);
        for s in &all {
            s.validate(&cluster).unwrap();
        }
    }

    #[test]
    fn rack_scenarios_sort_members_and_skip_empty_racks() {
        let topo = Topology::new(vec![vec![3, 1], vec![], vec![0, 2]]);
        let all = FailureScenario::racks(&topo);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].failed(), &[NodeId(1), NodeId(3)]);
        assert_eq!(all[1].failed(), &[NodeId(0), NodeId(2)]);
    }

    #[test]
    fn validation_catches_bad_scenarios() {
        let cluster = Cluster::homogeneous(2, 1.0);
        assert!(FailureScenario::new(vec![]).validate(&cluster).is_err());
        assert!(FailureScenario::single(NodeId(5))
            .validate(&cluster)
            .is_err());
        assert!(FailureScenario::new(vec![NodeId(0), NodeId(1)])
            .validate(&cluster)
            .is_err());
        assert!(FailureScenario::single(NodeId(1))
            .validate(&cluster)
            .is_ok());
    }
}
