//! Failure-resilient placement: k-safe scenario enumeration, survivor
//! feasible-set scoring, precomputed failover tables, and the
//! ResilientRod planner.
//!
//! The paper maximises the feasible set under *load* variation but
//! assumes nodes never die. Operator migration is exactly the slow,
//! disruptive mechanism its introduction warns about, and downtime during
//! reconfiguration dominates recovery — so resiliency to *node loss*
//! must, like resiliency to load, be planned statically:
//!
//! 1. enumerate the failures worth planning for
//!    ([`FailureScenario`]: every single-node loss, optionally every
//!    k-node loss);
//! 2. for a candidate placement, score each scenario by the feasible-set
//!    volume that *survives* it — unassign the dead nodes' operators,
//!    re-place them on survivors with the same MMPD greedy ROD uses, and
//!    count the quasi-Monte-Carlo points the survivor constraints keep
//!    ([`survivor_moves`], [`ScenarioScorer`]);
//! 3. choose the placement maximising the **worst-case** survivor volume
//!    ([`ResilientRodPlanner`]): start from plain ROD and hill-climb with
//!    single-operator moves, so the result is never worse than ROD's on
//!    that objective, by construction;
//! 4. precompute where each node's operators go when it dies
//!    ([`FailoverTable`]), so recovery at runtime is a table lookup plus
//!    the unavoidable migration downtime, not a re-planning pass.
//!
//! The simulator (`rod-sim`) executes step 4 under injected outages:
//! after a detection delay, orphaned operators migrate to their
//! table-designated backups while bounded queues shed (and count) the
//! overflow, turning node loss into a measured recovery window instead of
//! an unbounded backlog.

mod failover;
mod planner;
mod scenario;

pub use failover::{survivor_moves, FailoverTable, ScenarioScorer};
pub use planner::{ResilientPlan, ResilientRodOptions, ResilientRodPlanner};
pub use scenario::FailureScenario;
