//! ResilientRod: maximise the worst-case survivor feasible set.

use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::allocation::Allocation;
use crate::baselines::Planner;
use crate::cluster::Cluster;
use crate::error::PlacementError;
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;
use crate::obs::MetricsRegistry;
use crate::resilience::failover::{FailoverTable, ScenarioScorer};
use crate::resilience::scenario::FailureScenario;
use crate::rod::RodPlanner;
use rod_geom::VolumeEstimator;

/// Tuning knobs for [`ResilientRodPlanner`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResilientRodOptions {
    /// QMC sample points used to score survivor feasible sets.
    pub samples: usize,
    /// Seed for the scrambled point set.
    pub seed: u64,
    /// Plan against every loss of up to this many nodes (clamped to
    /// `n - 1`; 1 = all single-node failures, the common case).
    pub max_failures: usize,
    /// Hill-climb budget: stop after this many accepted moves.
    pub max_moves: usize,
    /// Worker chunks for the parallel neighborhood scan; `0` means the
    /// [`rod_pool::global`] pool size (`ROD_THREADS` or hardware
    /// parallelism). Clamped to the candidate-move count; placements
    /// are bit-identical for every value (see the ordered-reduction
    /// contract in `rod_pool`).
    pub threads: usize,
}

impl Default for ResilientRodOptions {
    fn default() -> Self {
        ResilientRodOptions {
            samples: 4_000,
            seed: 2006,
            max_failures: 1,
            max_moves: 64,
            threads: 0,
        }
    }
}

/// The plan a [`ResilientRodPlanner`] produced, with diagnostics.
#[derive(Clone, Debug)]
pub struct ResilientPlan {
    /// The chosen placement.
    pub allocation: Allocation,
    /// Precomputed per-node failover assignments for the placement.
    pub failover: FailoverTable,
    /// Scenarios the plan was optimised against.
    pub scenarios: Vec<FailureScenario>,
    /// Worst-case surviving feasible-point count of the chosen plan.
    pub worst_alive: usize,
    /// The same score for the plain-ROD starting point.
    pub baseline_worst_alive: usize,
    /// Healthy (no-failure) feasible-point count of the chosen plan.
    pub healthy_alive: usize,
    /// Total QMC points scored (denominator of the alive counts).
    pub num_points: usize,
    /// Accepted hill-climb moves that got here from plain ROD.
    pub moves: usize,
}

impl ResilientPlan {
    /// Worst-case survivor volume as a fraction of the sampled simplex.
    pub fn worst_survivor_ratio(&self) -> f64 {
        self.worst_alive as f64 / self.num_points.max(1) as f64
    }

    /// Plain ROD's worst-case survivor fraction, for comparison.
    pub fn baseline_survivor_ratio(&self) -> f64 {
        self.baseline_worst_alive as f64 / self.num_points.max(1) as f64
    }
}

/// ROD hardened against node loss: start from the plain-ROD placement,
/// then hill-climb single-operator moves on the lexicographic objective
/// (worst-case survivor alive count, healthy alive count). Only strictly
/// improving moves are accepted, so the result is **never worse than
/// plain ROD** on the worst-case survivor objective — by construction,
/// on every instance.
///
/// Each candidate move costs one scenario sweep, O(|scenarios|·m·P)
/// feasibility pushes on the shared point set, so the climb is polynomial
/// and deterministic for a fixed seed. The neighborhood scan — the
/// planner's hot loop — is dealt out in contiguous candidate chunks to
/// the persistent [`rod_pool::global`] workers
/// ([`ResilientRodOptions::threads`]); the ordered reduction keeps the
/// chosen move, and therefore the whole placement, bit-identical to the
/// serial scan at any thread count.
#[derive(Clone, Debug, Default)]
pub struct ResilientRodPlanner {
    options: ResilientRodOptions,
}

impl ResilientRodPlanner {
    /// Planner with default options.
    pub fn new() -> Self {
        ResilientRodPlanner::default()
    }

    /// Planner with explicit options.
    pub fn with_options(options: ResilientRodOptions) -> Self {
        ResilientRodPlanner { options }
    }

    /// Runs the planner and returns the plan with diagnostics.
    pub fn place(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
    ) -> Result<ResilientPlan, PlacementError> {
        self.place_impl(model, cluster, None)
    }

    /// Like [`place`](ResilientRodPlanner::place), additionally recording
    /// phase timings (`resilient_rod.qmc_seconds`,
    /// `resilient_rod.hill_climb_seconds`) and hill-climb work counters
    /// (`resilient_rod.iterations`, `resilient_rod.accepted_moves`,
    /// `resilient_rod.candidate_moves`) into `metrics`.
    pub fn place_with_metrics(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: &MetricsRegistry,
    ) -> Result<ResilientPlan, PlacementError> {
        self.place_impl(model, cluster, Some(metrics))
    }

    fn place_impl(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<ResilientPlan, PlacementError> {
        let seed_plan = match metrics {
            Some(m) => RodPlanner::new().place_with_metrics(model, cluster, m)?,
            None => RodPlanner::new().place(model, cluster)?,
        };
        let mut alloc = seed_plan.allocation;
        let n = cluster.num_nodes();
        let m = model.num_operators();

        let scenarios = FailureScenario::all_up_to_k(n, self.options.max_failures);
        // QMC point-set construction is the volume-estimation batch cost;
        // timed here because rod-geom cannot depend on the core registry.
        // The kernel-path snapshot also starts here: the geometry work
        // (the per-operator `dot_into` load table) happens during scorer
        // construction, not in the hill-climb, which only pushes/pops
        // the precomputed loads.
        let kernel_before = rod_geom::simd::path_counts();
        let qmc_start = Instant::now();
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            self.options.samples,
            self.options.seed,
        );
        let mut scorer = ScenarioScorer::from_batch(model, cluster, estimator.batch());
        if let Some(metrics) = metrics {
            metrics.observe(
                "resilient_rod.qmc_seconds",
                qmc_start.elapsed().as_secs_f64(),
            );
            metrics.set_gauge("resilient_rod.qmc_points", scorer.num_points() as f64);
        }

        // A single-node cluster has no survivable failure; ResilientRod
        // degenerates to plain ROD (scenarios is empty, worst = healthy).
        let baseline_worst = scorer.worst_case_alive(&alloc, &scenarios);
        let mut best = (baseline_worst, scorer.healthy_alive(&alloc));
        let mut moves = 0;
        let mut iterations = 0u64;
        let mut candidate_moves = 0u64;

        // Parallelism degree for the neighborhood scan, clamped to the
        // largest neighborhood this instance can ever have — extra
        // workers would only hold idle tracker clones.
        let threads = match self.options.threads {
            0 => rod_pool::global().size(),
            t => t,
        }
        .clamp(1, (m * n.saturating_sub(1)).max(1));
        // One forked scorer per chunk, built once and reused across
        // iterations. Each fork carries its own *detached* cache shard —
        // a shared cache would serialise every candidate score on one
        // mutex. Entries are pure, so shards change nothing about the
        // chosen moves; the shards are folded back into the parent after
        // the climb so score_cache_* metrics stay exact lookup totals.
        let worker_scorers: Vec<Mutex<ScenarioScorer>> = if threads > 1 {
            (0..threads)
                .map(|_| Mutex::new(scorer.fork_detached()))
                .collect()
        } else {
            Vec::new()
        };
        let pool_before = rod_pool::global().stats();
        let climb_start = Instant::now();

        // Steepest-ascent over all (operator, destination) single moves;
        // ties broken by scan order (lowest operator, then lowest node),
        // so runs are deterministic — the parallel path preserves this
        // exactly: each worker scans a contiguous candidate slice and
        // reports its first strict maximum, and the ordered strict-`>`
        // merge across slices reproduces the serial scan's winner for
        // every chunk count.
        let mut candidates: Vec<(OperatorId, NodeId)> = Vec::new();
        while moves < self.options.max_moves {
            iterations += 1;
            let iter_start = Instant::now();
            candidates.clear();
            for j in 0..m {
                let op = OperatorId(j);
                let home = alloc.node_of(op).expect("ROD plans are complete");
                for i in 0..n {
                    let dest = NodeId(i);
                    if dest != home {
                        candidates.push((op, dest));
                    }
                }
            }
            candidate_moves += candidates.len() as u64;

            let improved: Option<(OperatorId, NodeId, (usize, usize))> =
                if threads > 1 && candidates.len() > 1 {
                    let ranges = rod_pool::chunks(candidates.len(), threads);
                    let winner = rod_pool::global().map_reduce(
                        ranges.len(),
                        |c| {
                            let mut scorer =
                                worker_scorers[c].lock().unwrap_or_else(|e| e.into_inner());
                            let mut probe = alloc.clone();
                            let mut local: Option<(usize, (usize, usize))> = None;
                            for idx in ranges[c].clone() {
                                let (op, dest) = candidates[idx];
                                let home = probe.node_of(op).expect("ROD plans are complete");
                                probe.assign(op, dest);
                                let score = (
                                    scorer.worst_case_alive(&probe, &scenarios),
                                    scorer.healthy_alive(&probe),
                                );
                                probe.assign(op, home);
                                let target = local.as_ref().map_or(best, |&(_, s)| s);
                                if score > target {
                                    local = Some((idx, score));
                                }
                            }
                            local
                        },
                        None::<(usize, (usize, usize))>,
                        // Ordered merge, strict `>`: equal scores keep the
                        // earlier chunk's (lower-index) winner.
                        |acc, win| match (acc, win) {
                            (acc, None) => acc,
                            (None, some) => some,
                            (Some(a), Some(w)) => Some(if w.1 > a.1 { w } else { a }),
                        },
                    );
                    winner.map(|(idx, score)| {
                        let (op, dest) = candidates[idx];
                        (op, dest, score)
                    })
                } else {
                    let mut improved = None;
                    for &(op, dest) in &candidates {
                        let home = alloc.node_of(op).expect("ROD plans are complete");
                        alloc.assign(op, dest);
                        let score = (
                            scorer.worst_case_alive(&alloc, &scenarios),
                            scorer.healthy_alive(&alloc),
                        );
                        alloc.assign(op, home);
                        let target = improved.as_ref().map_or(best, |(_, _, s)| *s);
                        if score > target {
                            improved = Some((op, dest, score));
                        }
                    }
                    improved
                };
            if let Some(metrics) = metrics {
                metrics.observe(
                    "resilient_rod.iteration_seconds",
                    iter_start.elapsed().as_secs_f64(),
                );
            }
            match improved {
                Some((op, dest, score)) => {
                    alloc.assign(op, dest);
                    best = score;
                    moves += 1;
                }
                None => break,
            }
        }
        // Fold every worker's cache shard back into the parent: the
        // merged map is the union of all memoised keys and the hit/miss
        // counters sum, so the metrics below count every lookup made
        // anywhere — exactly as the old single shared cache did.
        for worker in &worker_scorers {
            let shard = worker
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .swap_cache(crate::score_cache::ScoreCache::new());
            scorer.absorb_cache(shard);
        }
        if let Some(metrics) = metrics {
            let climb_wall = climb_start.elapsed().as_secs_f64();
            metrics.observe("resilient_rod.hill_climb_seconds", climb_wall);
            metrics.add("resilient_rod.iterations", iterations);
            metrics.add("resilient_rod.accepted_moves", moves as u64);
            metrics.add("resilient_rod.candidate_moves", candidate_moves);
            metrics.add("resilient_rod.score_cache_hits", scorer.cache_hits());
            metrics.add("resilient_rod.score_cache_misses", scorer.cache_misses());
            metrics.set_gauge(
                "resilient_rod.score_cache_entries",
                scorer.cache_len() as f64,
            );
            metrics.set_gauge("resilient_rod.threads", threads as f64);
            let pool_after = rod_pool::global().stats();
            crate::obs::record_pool_delta(metrics, &pool_before, &pool_after);
            crate::obs::record_kernel_path(metrics, &kernel_before, &rod_geom::simd::path_counts());
            // Worker busy-time over wall-time ≈ how many cores the scan
            // actually kept busy — 1.0 when serial or on one core.
            let busy_delta = pool_after.busy_seconds - pool_before.busy_seconds;
            let speedup = if threads > 1 && climb_wall > 0.0 && busy_delta > 0.0 {
                busy_delta / climb_wall
            } else {
                1.0
            };
            metrics.set_gauge("resilient_rod.parallel_speedup_estimate", speedup);
        }

        let failover = if n >= 2 {
            FailoverTable::precompute(model, cluster, &alloc)
        } else {
            FailoverTable::empty(n)
        };
        Ok(ResilientPlan {
            allocation: alloc,
            failover,
            scenarios,
            worst_alive: best.0,
            baseline_worst_alive: baseline_worst,
            healthy_alive: best.1,
            num_points: scorer.num_points(),
            moves,
        })
    }
}

impl Planner for ResilientRodPlanner {
    fn name(&self) -> &'static str {
        "ResilientRod"
    }

    fn plan(&self, model: &LoadModel, cluster: &Cluster) -> Result<Allocation, PlacementError> {
        self.place(model, cluster).map(|p| p.allocation)
    }

    fn plan_with_metrics(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: &MetricsRegistry,
    ) -> Result<Allocation, PlacementError> {
        self.place_with_metrics(model, cluster, metrics)
            .map(|p| p.allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::figure4_graph;

    fn setup(n: usize) -> (LoadModel, Cluster) {
        (
            LoadModel::derive(&figure4_graph()).unwrap(),
            Cluster::homogeneous(n, 1.0),
        )
    }

    fn small_options() -> ResilientRodOptions {
        ResilientRodOptions {
            samples: 1_500,
            seed: 11,
            max_failures: 1,
            max_moves: 16,
            threads: 1,
        }
    }

    #[test]
    fn never_worse_than_rod_on_worst_case_survivor_volume() {
        for n in [2, 3, 4] {
            let (model, cluster) = setup(n);
            let plan = ResilientRodPlanner::with_options(small_options())
                .place(&model, &cluster)
                .unwrap();
            assert!(
                plan.worst_alive >= plan.baseline_worst_alive,
                "n={n}: {} < {}",
                plan.worst_alive,
                plan.baseline_worst_alive
            );
            assert!(plan.allocation.is_complete());
            assert_eq!(plan.failover.num_nodes(), n);
            assert_eq!(plan.scenarios.len(), n);
        }
    }

    #[test]
    fn single_node_cluster_degenerates_to_rod() {
        let (model, cluster) = setup(1);
        let plan = ResilientRodPlanner::with_options(small_options())
            .place(&model, &cluster)
            .unwrap();
        assert!(plan.scenarios.is_empty());
        assert_eq!(plan.worst_alive, plan.healthy_alive);
        let rod = RodPlanner::new().place(&model, &cluster).unwrap();
        assert_eq!(plan.allocation, rod.allocation);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (model, cluster) = setup(3);
        let planner = ResilientRodPlanner::with_options(small_options());
        let a = planner.place(&model, &cluster).unwrap();
        let b = planner.place(&model, &cluster).unwrap();
        assert_eq!(a.allocation, b.allocation);
        assert_eq!(a.worst_alive, b.worst_alive);
        assert_eq!(a.failover, b.failover);
    }

    /// The parallel neighborhood scan must reproduce the serial
    /// placement bit for bit, including for oversized thread requests
    /// (clamped to the candidate count, never an error).
    #[test]
    fn placements_are_bit_identical_across_thread_counts() {
        for n in [2, 3] {
            let (model, cluster) = setup(n);
            let serial = ResilientRodPlanner::with_options(small_options())
                .place(&model, &cluster)
                .unwrap();
            for threads in [2usize, 4, 7, 1000] {
                let opts = ResilientRodOptions {
                    threads,
                    ..small_options()
                };
                let parallel = ResilientRodPlanner::with_options(opts)
                    .place(&model, &cluster)
                    .unwrap();
                assert_eq!(
                    parallel.allocation, serial.allocation,
                    "n={n} threads={threads}: placement diverged from serial"
                );
                assert_eq!(parallel.worst_alive, serial.worst_alive);
                assert_eq!(parallel.healthy_alive, serial.healthy_alive);
                assert_eq!(parallel.moves, serial.moves);
            }
        }
    }

    #[test]
    fn planner_trait_produces_complete_plans() {
        let (model, cluster) = setup(2);
        let planner = ResilientRodPlanner::new();
        assert_eq!(planner.name(), "ResilientRod");
        let alloc = planner.plan(&model, &cluster).unwrap();
        assert!(alloc.is_complete());
    }
}
