//! Capacity planning: how many machines buy how much resilience?
//!
//! The paper optimises resilience for a *given* cluster; deployments ask
//! the inverse question — "what is the smallest cluster on which some
//! placement survives every workload in my target set?" With the
//! headroom machinery this is answerable exactly for finitely many
//! target points: search over the node count, place with a
//! [`crate::baselines::Planner`], and verify each target point against
//! the plan's hyperplanes.

use serde::{Deserialize, Serialize};

use crate::allocation::{Allocation, PlanEvaluator};
use crate::baselines::Planner;
use crate::cluster::Cluster;
use crate::error::PlacementError;
use crate::load_model::LoadModel;

/// The workload set to survive: a list of system-input rate points (for
/// example, the mean point plus every single-stream burst scenario).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TargetWorkloads {
    /// Rate points that must all be feasible.
    pub points: Vec<Vec<f64>>,
}

impl TargetWorkloads {
    /// The classic burst envelope: the mean point, plus, for each input,
    /// the point where that input alone spikes to `burst × mean` —
    /// exactly the short-term variations of the paper's introduction.
    pub fn burst_envelope(mean_rates: &[f64], burst: f64) -> Self {
        assert!(burst >= 1.0);
        let mut points = vec![mean_rates.to_vec()];
        for k in 0..mean_rates.len() {
            let mut p = mean_rates.to_vec();
            p[k] *= burst;
            points.push(p);
        }
        TargetWorkloads { points }
    }

    /// True when every target point is feasible under `alloc`.
    pub fn all_feasible(&self, ev: &PlanEvaluator<'_>, alloc: &Allocation) -> bool {
        self.points.iter().all(|p| ev.is_feasible_at(alloc, p))
    }
}

/// Result of a capacity-planning search.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CapacityPlan {
    /// Smallest node count that worked.
    pub nodes: usize,
    /// The placement found at that size.
    pub allocation: Allocation,
}

/// Finds the smallest homogeneous cluster (per-node capacity
/// `node_capacity`, at most `max_nodes` nodes) on which `planner`'s
/// placement makes every target point feasible. Linear scan from the
/// load-based lower bound `⌈max load / capacity⌉` — placements are not
/// monotone in `n` in pathological cases, so the first success is the
/// honest answer for *this* planner.
///
/// Returns `Err(TooLargeForExhaustive)` when even `max_nodes` fails.
pub fn min_nodes_for(
    planner: &dyn Planner,
    model: &LoadModel,
    targets: &TargetWorkloads,
    node_capacity: f64,
    max_nodes: usize,
) -> Result<CapacityPlan, PlacementError> {
    assert!(node_capacity > 0.0);
    assert!(max_nodes >= 1);
    // Lower bound: total load of the heaviest target point.
    let peak_load = targets
        .points
        .iter()
        .map(|p| model.total_load(&model.variable_point(p)))
        .fold(0.0f64, f64::max);
    let start = ((peak_load / node_capacity).ceil() as usize).max(1);

    for n in start..=max_nodes {
        let cluster = Cluster::homogeneous(n, node_capacity);
        let Ok(alloc) = planner.plan(model, &cluster) else {
            continue;
        };
        let ev = PlanEvaluator::new(model, &cluster);
        if targets.all_feasible(&ev, &alloc) {
            return Ok(CapacityPlan {
                nodes: n,
                allocation: alloc,
            });
        }
    }
    Err(PlacementError::TooLargeForExhaustive {
        operators: model.num_operators(),
        nodes: max_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::connected::ConnectedPlanner;
    use crate::examples_paper::figure4_graph;
    use crate::rod::RodPlanner;

    fn model() -> LoadModel {
        LoadModel::derive(&figure4_graph()).unwrap()
    }

    #[test]
    fn burst_envelope_shape() {
        let t = TargetWorkloads::burst_envelope(&[2.0, 3.0], 4.0);
        assert_eq!(t.points.len(), 3);
        assert_eq!(t.points[0], vec![2.0, 3.0]);
        assert_eq!(t.points[1], vec![8.0, 3.0]);
        assert_eq!(t.points[2], vec![2.0, 12.0]);
    }

    #[test]
    fn min_nodes_respects_load_lower_bound() {
        // Mean (0.03, 0.03): total load = 0.03·21 = 0.63 CPU. A 3x burst
        // envelope peaks at load 0.03·(10·3) + 0.03·11 = 1.23 → at least
        // 2 unit nodes.
        let m = model();
        let targets = TargetWorkloads::burst_envelope(&[0.03, 0.03], 3.0);
        let plan = min_nodes_for(&RodPlanner::new(), &m, &targets, 1.0, 16).unwrap();
        assert!(plan.nodes >= 2, "{}", plan.nodes);
        // And the result really covers every point.
        let cluster = Cluster::homogeneous(plan.nodes, 1.0);
        let ev = PlanEvaluator::new(&m, &cluster);
        assert!(targets.all_feasible(&ev, &plan.allocation));
    }

    #[test]
    fn rod_needs_no_more_nodes_than_connected() {
        let m = model();
        let targets = TargetWorkloads::burst_envelope(&[0.04, 0.04], 2.5);
        let rod = min_nodes_for(&RodPlanner::new(), &m, &targets, 1.0, 16).unwrap();
        let conn = min_nodes_for(
            &ConnectedPlanner::new(vec![0.04, 0.04]),
            &m,
            &targets,
            1.0,
            16,
        )
        .unwrap();
        assert!(
            rod.nodes <= conn.nodes,
            "ROD {} vs Connected {}",
            rod.nodes,
            conn.nodes
        );
    }

    #[test]
    fn impossible_targets_error_out() {
        let m = model();
        // Rates far beyond what 4 nodes can carry.
        let targets = TargetWorkloads {
            points: vec![vec![10.0, 10.0]],
        };
        assert!(matches!(
            min_nodes_for(&RodPlanner::new(), &m, &targets, 1.0, 4),
            Err(PlacementError::TooLargeForExhaustive { .. })
        ));
    }
}
