//! Hierarchical ROD: rack-level placement followed by per-rack placement.
//!
//! Flat ROD treats the cluster as one pool of `n` nodes; at `n ≈ 1000`
//! even the pruned Phase-2 scan pays for its generality, and real
//! deployments group machines into racks anyway. The hierarchical planner
//! runs the *same* ROD greedy twice:
//!
//! 1. **Level 1 — across racks.** The cluster is collapsed into one
//!    aggregate "node" per rack ([`Topology::aggregate_cluster`]), whose
//!    capacity is the sum of its members'. Plain ROD over this aggregate
//!    cluster assigns every operator to a rack, balancing load-coefficient
//!    weight across racks exactly as flat ROD balances it across nodes.
//! 2. **Level 2 — within each rack.** For each rack, ROD's Phase-1
//!    ordering and Phase-2 pruned scan run again over just that rack's
//!    operators and member nodes ([`Topology::rack_cluster`]), reusing
//!    [`IncrementalPlanEval`] with weights normalised by the rack's own
//!    total capacity.
//!
//! Both levels go through the identical selection machinery as
//! [`RodPlanner`], so a **single-rack topology reproduces plain ROD
//! exactly** (asserted in tests): level 1 degenerates to a one-node
//! cluster and level 2 *is* flat ROD. Complexity drops from
//! `O(m · n)` probes to `O(m · (#racks + rack size))` before pruning even
//! starts.

use serde::{Deserialize, Serialize};

use crate::allocation::Allocation;
use crate::baselines::Planner;
use crate::cluster::{Cluster, Topology};
use crate::error::PlacementError;
use crate::eval::IncrementalPlanEval;
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;
use crate::obs::MetricsRegistry;
use crate::rod::{Phase2Selector, RodOptions, RodPlanner};

use std::time::Instant;

/// The result of a hierarchical ROD run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HierPlan {
    /// The final node-level placement.
    pub allocation: Allocation,
    /// Rack chosen for each operator by level 1 (indexed by operator).
    pub rack_of: Vec<usize>,
    /// The topology the run used (explicit or auto-derived).
    pub topology: Topology,
    /// Total `score_candidate` probes across both levels.
    pub candidates_scored: u64,
}

/// The hierarchical ROD planner.
///
/// With no explicit [`Topology`] the cluster is split into `⌈√n⌉`
/// near-equal contiguous racks, which balances the two levels' scan
/// costs.
#[derive(Clone, Debug, Default)]
pub struct HierarchicalRod {
    options: RodOptions,
    topology: Option<Topology>,
}

impl HierarchicalRod {
    /// Planner with default options and the automatic `⌈√n⌉`-rack
    /// topology.
    pub fn new() -> Self {
        HierarchicalRod::default()
    }

    /// Planner over an explicit rack topology (validated at plan time).
    pub fn with_topology(topology: Topology) -> Self {
        HierarchicalRod {
            options: RodOptions::default(),
            topology: Some(topology),
        }
    }

    /// Planner with explicit ROD options and an optional topology.
    pub fn with_options(options: RodOptions, topology: Option<Topology>) -> Self {
        HierarchicalRod { options, topology }
    }

    /// The topology a plan over `cluster` would use.
    pub fn effective_topology(&self, cluster: &Cluster) -> Topology {
        match &self.topology {
            Some(t) => t.clone(),
            None => {
                let n = cluster.num_nodes();
                let racks = ((n as f64).sqrt().ceil() as usize).clamp(1, n.max(1));
                Topology::uniform(n, racks)
            }
        }
    }

    /// Runs both levels and returns the plan with diagnostics.
    pub fn place(&self, model: &LoadModel, cluster: &Cluster) -> Result<HierPlan, PlacementError> {
        self.place_impl(model, cluster, None)
    }

    /// Like [`place`](Self::place), recording per-level wall-clock
    /// timings and probe counts into `metrics`.
    pub fn place_with_metrics(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: &MetricsRegistry,
    ) -> Result<HierPlan, PlacementError> {
        self.place_impl(model, cluster, Some(metrics))
    }

    fn place_impl(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<HierPlan, PlacementError> {
        cluster.validate()?;
        let m = model.num_operators();
        if m == 0 {
            return Err(PlacementError::EmptyModel);
        }
        let topology = self.effective_topology(cluster);
        topology.validate(cluster)?;

        // ---- Level 1: ROD over the rack aggregates. ----
        let level1_start = Instant::now();
        let aggregate = topology.aggregate_cluster(cluster);
        let level1 = RodPlanner::with_options(self.options.clone()).place(model, &aggregate)?;
        let rack_of: Vec<usize> = (0..m)
            .map(|j| {
                level1
                    .allocation
                    .node_of(OperatorId(j))
                    .expect("level 1 places every operator")
                    .index()
            })
            .collect();
        let level1_seconds = level1_start.elapsed().as_secs_f64();

        // ---- Level 2: ROD within each rack. ----
        let level2_start = Instant::now();
        let mut allocation = Allocation::new(m, cluster.num_nodes());
        let mut candidates_scored = level1.candidates_scored;
        for (r, members) in topology.racks().iter().enumerate() {
            let mut ops: Vec<OperatorId> = (0..m)
                .map(OperatorId)
                .filter(|op| rack_of[op.index()] == r)
                .collect();
            if ops.is_empty() {
                continue;
            }
            // Phase 1 within the rack: the same norm-descending order.
            ops.sort_by(|&a, &b| {
                model
                    .operator_norm(b)
                    .total_cmp(&model.operator_norm(a))
                    .then(a.cmp(&b))
            });
            let rack_cluster = topology.rack_cluster(cluster, r);
            let mut eval = IncrementalPlanEval::new(model, &rack_cluster);
            if let Some(b) = &self.options.input_lower_bound {
                eval.set_input_lower_bound(b);
            }
            let mut selector = Phase2Selector::new(&self.options, model, false);
            for &op in &ops {
                let (local, _class) = selector.select(&eval, op);
                eval.assign(op, NodeId(local));
                allocation.assign(op, NodeId(members[local]));
            }
            candidates_scored += selector.candidates_scored;
        }
        if let Some(metrics) = metrics {
            metrics.observe("hier.level1_seconds", level1_seconds);
            metrics.observe("hier.level2_seconds", level2_start.elapsed().as_secs_f64());
            metrics.set_gauge("hier.racks", topology.num_racks() as f64);
            metrics.add("hier.candidates_scored", candidates_scored);
        }

        Ok(HierPlan {
            allocation,
            rack_of,
            topology,
            candidates_scored,
        })
    }
}

impl Planner for HierarchicalRod {
    fn name(&self) -> &'static str {
        "Hierarchical"
    }

    fn plan(&self, model: &LoadModel, cluster: &Cluster) -> Result<Allocation, PlacementError> {
        self.place(model, cluster).map(|p| p.allocation)
    }

    fn plan_with_metrics(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: &MetricsRegistry,
    ) -> Result<Allocation, PlacementError> {
        self.place_with_metrics(model, cluster, metrics)
            .map(|p| p.allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::figure4_graph;
    use crate::graph::GraphBuilder;
    use crate::operator::OperatorKind;

    fn wide_model(streams: usize, per_stream: usize) -> LoadModel {
        let mut b = GraphBuilder::new();
        for s in 0..streams {
            let i = b.add_input();
            for j in 0..per_stream {
                let cost = 1.0 + ((s * 5 + j) % 4) as f64;
                b.add_operator(format!("s{s}o{j}"), OperatorKind::filter(cost, 0.8), &[i])
                    .unwrap();
            }
        }
        LoadModel::derive(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn single_rack_reproduces_plain_rod_exactly() {
        for model in [
            LoadModel::derive(&figure4_graph()).unwrap(),
            wide_model(4, 6),
        ] {
            for caps in [vec![1.0; 5], vec![3.0, 1.0, 1.0, 0.5, 2.0]] {
                let cluster = Cluster::heterogeneous(caps);
                let topology = Topology::uniform(cluster.num_nodes(), 1);
                let hier = HierarchicalRod::with_topology(topology)
                    .place(&model, &cluster)
                    .unwrap();
                let flat = RodPlanner::new().place(&model, &cluster).unwrap();
                assert_eq!(hier.allocation, flat.allocation);
            }
        }
    }

    #[test]
    fn explicit_topology_confines_operators_to_their_rack() {
        let model = wide_model(6, 4);
        let cluster = Cluster::homogeneous(6, 1.0);
        let topology = Topology::new(vec![vec![0, 1, 2], vec![3, 4, 5]]);
        let plan = HierarchicalRod::with_topology(topology.clone())
            .place(&model, &cluster)
            .unwrap();
        assert!(plan.allocation.is_complete());
        for j in 0..model.num_operators() {
            let node = plan.allocation.node_of(OperatorId(j)).unwrap().index();
            let rack = plan.rack_of[j];
            assert!(
                topology.rack(rack).contains(&node),
                "op {j} on node {node} outside rack {rack}"
            );
        }
    }

    #[test]
    fn auto_topology_covers_all_nodes_and_plans() {
        let model = wide_model(5, 8);
        let cluster = Cluster::homogeneous(10, 1.0);
        let planner = HierarchicalRod::new();
        let t = planner.effective_topology(&cluster);
        assert!(t.validate(&cluster).is_ok());
        assert_eq!(t.num_racks(), 4, "⌈√10⌉ racks");
        let plan = planner.place(&model, &cluster).unwrap();
        assert!(plan.allocation.is_complete());
    }

    #[test]
    fn invalid_topology_is_rejected_at_plan_time() {
        let model = wide_model(2, 2);
        let cluster = Cluster::homogeneous(4, 1.0);
        let planner = HierarchicalRod::with_topology(Topology::new(vec![vec![0, 1]]));
        assert_eq!(
            planner.place(&model, &cluster).unwrap_err(),
            PlacementError::UncoveredNode { node: 2 }
        );
    }

    #[test]
    fn deterministic_and_load_spreading() {
        let model = wide_model(6, 8);
        let cluster = Cluster::homogeneous(9, 1.0);
        let a = HierarchicalRod::new().place(&model, &cluster).unwrap();
        let b = HierarchicalRod::new().place(&model, &cluster).unwrap();
        assert_eq!(a.allocation, b.allocation);
        // 48 equal-ish operators over 9 nodes: every node gets work.
        assert!(a.allocation.node_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn metrics_record_levels_and_probes() {
        let model = wide_model(4, 4);
        let cluster = Cluster::homogeneous(6, 1.0);
        let metrics = MetricsRegistry::new();
        let plan = HierarchicalRod::new()
            .place_with_metrics(&model, &cluster, &metrics)
            .unwrap();
        assert_eq!(metrics.gauge("hier.racks"), Some(3.0));
        assert_eq!(
            metrics.counter("hier.candidates_scored"),
            plan.candidates_scored
        );
    }
}
