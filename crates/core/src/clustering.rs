//! Operator clustering (paper §6.3).
//!
//! When per-tuple data-communication cost is not negligible, ROD is
//! preceded by a clustering pass that merges the endpoints of *costly
//! arcs* so they always land on the same node. Two greedy policies are
//! implemented, exactly as described:
//!
//! * [`ClusteringPolicy::LargestRatio`] — repeatedly cluster the arc with
//!   the largest *clustering ratio* (per-tuple transfer overhead of the
//!   arc divided by the minimum per-tuple processing overhead of its two
//!   end-operators) until every ratio is below a threshold;
//! * [`ClusteringPolicy::MinWeight`] — like the above, but among arcs over
//!   the threshold, merge the two connected clusters with the minimum
//!   total weight (avoiding the heavy-cluster problem of the first
//!   policy).
//!
//! Both respect an upper bound on the resulting cluster *weight* — a
//! cluster's largest share of any one stream's total load — since a heavy
//! cluster forces some node's weight above the cap no matter where it is
//! placed. The paper found "no clear winner", so [`ClusteringSearch`]
//! implements its practical recipe: sweep a few thresholds under each
//! policy, run ROD on each clustering, and keep the plan with the maximum
//! min plane distance.

use serde::{Deserialize, Serialize};

use crate::allocation::{Allocation, PlanEvaluator};
use crate::cluster::Cluster;
use crate::error::PlacementError;
use crate::ids::{NodeId, OperatorId, StreamId};
use crate::load_model::LoadModel;
use crate::operator::OperatorKind;

/// Per-arc data-transfer cost model: CPU cycles per tuple shipped across
/// the network (the "CPU overhead for data communication" that §2.1
/// initially assumes negligible and §6.3 reinstates).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArcCosts {
    /// Cycles per tuple for every inter-operator stream.
    pub per_tuple: f64,
}

impl ArcCosts {
    /// Uniform transfer cost per tuple.
    pub fn uniform(per_tuple: f64) -> Self {
        ArcCosts { per_tuple }
    }

    /// Transfer cost of one arc (uniform today; a map keyed by stream
    /// would slot in here without touching the algorithms).
    pub fn cost_of(&self, _stream: StreamId) -> f64 {
        self.per_tuple
    }
}

/// Which greedy merge rule to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusteringPolicy {
    /// Merge the arc with the largest clustering ratio first.
    LargestRatio,
    /// Among arcs above the threshold, merge the pair of clusters with the
    /// smallest combined weight first.
    MinWeight,
}

/// A partition of the operators into co-location clusters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OperatorClustering {
    /// `cluster_of[j]` is the cluster index of operator `j`.
    cluster_of: Vec<usize>,
    /// Members of each cluster.
    members: Vec<Vec<OperatorId>>,
}

impl OperatorClustering {
    /// The trivial clustering (every operator alone).
    pub fn singletons(num_operators: usize) -> Self {
        OperatorClustering {
            cluster_of: (0..num_operators).collect(),
            members: (0..num_operators).map(|j| vec![OperatorId(j)]).collect(),
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.members.len()
    }

    /// Cluster index of an operator.
    pub fn cluster_of(&self, op: OperatorId) -> usize {
        self.cluster_of[op.index()]
    }

    /// Members of a cluster.
    pub fn members(&self, cluster: usize) -> &[OperatorId] {
        &self.members[cluster]
    }

    /// Merges the clusters containing `a` and `b`; no-op if already
    /// together. Renumbers clusters compactly.
    fn merge(&mut self, a: OperatorId, b: OperatorId) {
        let (ca, cb) = (self.cluster_of(a), self.cluster_of(b));
        if ca == cb {
            return;
        }
        let (keep, drop) = (ca.min(cb), ca.max(cb));
        let moved = std::mem::take(&mut self.members[drop]);
        for &op in &moved {
            self.cluster_of[op.index()] = keep;
        }
        self.members[keep].extend(moved);
        self.members.remove(drop);
        for c in self.cluster_of.iter_mut() {
            if *c > drop {
                *c -= 1;
            }
        }
    }
}

/// Per-tuple processing overhead of an operator: the cheapest per-tuple
/// work it does on any port (the denominator of the clustering ratio).
/// For joins the per-pair cost is the closest analogue of per-tuple work.
fn unit_processing_cost(kind: &OperatorKind) -> f64 {
    match kind {
        OperatorKind::Linear { costs, .. } | OperatorKind::VariableSelectivity { costs, .. } => {
            costs
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
                .max(f64::MIN_POSITIVE)
        }
        OperatorKind::WindowJoin { cost_per_pair, .. } => cost_per_pair.max(f64::MIN_POSITIVE),
    }
}

/// Weight of a cluster: its largest share of any one stream's total load,
/// `max_k (Σ_{j ∈ cluster} l^o_{jk}) / l_k`. A cluster of weight `w`
/// forces some node's weight ≥ `w·n` on a homogeneous `n`-node cluster,
/// so caps are expressed in this per-stream-share unit.
fn cluster_weight(model: &LoadModel, members: &[OperatorId]) -> f64 {
    let d = model.num_vars();
    let totals = model.total_coeffs();
    let mut acc = vec![0.0; d];
    for &op in members {
        for (k, &v) in model.operator_row(op).iter().enumerate() {
            acc[k] += v;
        }
    }
    (0..d)
        .map(|k| {
            if totals[k] > 0.0 {
                acc[k] / totals[k]
            } else {
                0.0
            }
        })
        .fold(0.0, f64::max)
}

/// Runs one greedy clustering pass.
///
/// `threshold` — stop when no remaining arc's clustering ratio exceeds it.
/// `weight_cap` — never create a cluster whose weight exceeds this.
pub fn cluster_operators(
    model: &LoadModel,
    arc_costs: &ArcCosts,
    policy: ClusteringPolicy,
    threshold: f64,
    weight_cap: f64,
) -> OperatorClustering {
    let graph = model.graph();
    let mut clustering = OperatorClustering::singletons(model.num_operators());

    // Arc list with clustering ratios (static: costs don't change as
    // clusters merge; only eligibility does).
    let arcs: Vec<(OperatorId, OperatorId, f64)> = graph
        .operator_arcs()
        .into_iter()
        .map(|(p, c, s)| {
            let transfer = arc_costs.cost_of(s);
            let min_proc = unit_processing_cost(&graph.operator(p).kind)
                .min(unit_processing_cost(&graph.operator(c).kind));
            (p, c, transfer / min_proc)
        })
        .collect();

    loop {
        // Candidate arcs: above threshold, endpoints in different
        // clusters, merged weight under the cap.
        let mut candidates: Vec<&(OperatorId, OperatorId, f64)> = arcs
            .iter()
            .filter(|(p, c, ratio)| {
                *ratio > threshold && clustering.cluster_of(*p) != clustering.cluster_of(*c)
            })
            .filter(|(p, c, _)| {
                let mut merged: Vec<OperatorId> =
                    clustering.members(clustering.cluster_of(*p)).to_vec();
                merged.extend_from_slice(clustering.members(clustering.cluster_of(*c)));
                cluster_weight(model, &merged) <= weight_cap
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        let pick = match policy {
            ClusteringPolicy::LargestRatio => {
                candidates.sort_by(|a, b| b.2.total_cmp(&a.2));
                candidates[0]
            }
            ClusteringPolicy::MinWeight => {
                candidates.sort_by(|a, b| {
                    let wa = cluster_weight(model, clustering.members(clustering.cluster_of(a.0)))
                        + cluster_weight(model, clustering.members(clustering.cluster_of(a.1)));
                    let wb = cluster_weight(model, clustering.members(clustering.cluster_of(b.0)))
                        + cluster_weight(model, clustering.members(clustering.cluster_of(b.1)));
                    wa.total_cmp(&wb)
                });
                candidates[0]
            }
        };
        clustering.merge(pick.0, pick.1);
    }
    clustering
}

/// Places a clustered model: runs ROD over the clusters (treating each as
/// one super-operator whose load row is the sum of its members') and
/// expands back to an operator-level allocation. The super-operator pass
/// uses ROD's default MaxPlaneDistance policy.
pub fn place_clustered(
    model: &LoadModel,
    cluster: &Cluster,
    clustering: &OperatorClustering,
) -> Result<Allocation, PlacementError> {
    cluster.validate()?;
    let d = model.num_vars();
    let nc = clustering.num_clusters();
    if nc == 0 {
        return Err(PlacementError::EmptyModel);
    }

    // Super-operator load rows.
    let mut rows: Vec<Vec<f64>> = vec![vec![0.0; d]; nc];
    for (c, row) in rows.iter_mut().enumerate() {
        for &op in clustering.members(c) {
            for (k, &v) in model.operator_row(op).iter().enumerate() {
                row[k] += v;
            }
        }
    }

    // Re-use the ROD core by running its greedy loop directly over the
    // super-rows. Building a synthetic LoadModel would drag a fake graph
    // along; instead we inline the same Phase 1 + Phase 2 on the rows.
    let n = cluster.num_nodes();
    let ct = cluster.total_capacity();
    let totals = model.total_coeffs();

    let mut order: Vec<usize> = (0..nc).collect();
    let norm = |row: &[f64]| row.iter().map(|v| v * v).sum::<f64>().sqrt();
    order.sort_by(|&a, &b| norm(&rows[b]).total_cmp(&norm(&rows[a])).then(a.cmp(&b)));

    let mut ln = vec![0.0; n * d];
    let mut destination = vec![0usize; nc];
    for &c in &order {
        let mut class_one: Vec<usize> = Vec::new();
        let mut w = vec![0.0; n * d];
        for i in 0..n {
            let rel = cluster.capacity(NodeId(i)) / ct;
            let mut ok = true;
            for k in 0..d {
                let lk = totals[k];
                let wv = if lk > 0.0 {
                    ((ln[i * d + k] + rows[c][k]) / lk) / rel
                } else {
                    0.0
                };
                w[i * d + k] = wv;
                if wv > 1.0 + 1e-12 {
                    ok = false;
                }
            }
            if ok {
                class_one.push(i);
            }
        }
        let dist = |i: usize| -> f64 {
            let nrm = w[i * d..(i + 1) * d]
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
                .sqrt();
            if nrm == 0.0 {
                f64::INFINITY
            } else {
                1.0 / nrm
            }
        };
        let pool: Vec<usize> = if class_one.is_empty() {
            (0..n).collect()
        } else {
            class_one
        };
        let dest = pool
            .iter()
            .copied()
            .max_by(|&a, &b| dist(a).total_cmp(&dist(b)))
            .expect("non-empty pool");
        destination[c] = dest;
        for k in 0..d {
            ln[dest * d + k] += rows[c][k];
        }
    }
    let mut alloc = Allocation::new(model.num_operators(), n);
    for (c, &dest) in destination.iter().enumerate() {
        for &op in clustering.members(c) {
            alloc.assign(op, NodeId(dest));
        }
    }
    Ok(alloc)
}

/// One candidate plan produced by the clustering search.
#[derive(Clone, Debug)]
pub struct ClusteringCandidate {
    /// The policy that produced it.
    pub policy: ClusteringPolicy,
    /// The clustering-ratio threshold used.
    pub threshold: f64,
    /// The clustering itself.
    pub clustering: OperatorClustering,
    /// The expanded allocation.
    pub allocation: Allocation,
    /// Its min plane distance (the selection criterion).
    pub min_plane_distance: f64,
    /// Inter-node arcs under the plan (the communication payoff).
    pub internode_arcs: usize,
}

/// The paper's practical recipe: "generate a small number of clustering
/// plans for each of these approaches by systematically varying the
/// threshold values, obtain the resulting operator distribution plans
/// using ROD, and pick the one with the maximum plane distance."
#[derive(Clone, Debug)]
pub struct ClusteringSearch {
    /// Thresholds to sweep (for each policy).
    pub thresholds: Vec<f64>,
    /// Weight cap applied to every clustering.
    pub weight_cap: f64,
}

impl Default for ClusteringSearch {
    fn default() -> Self {
        ClusteringSearch {
            thresholds: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            weight_cap: 0.5,
        }
    }
}

impl ClusteringSearch {
    /// Sweeps both policies over the thresholds and returns every
    /// candidate, best (max min-plane-distance) first.
    pub fn run(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        arc_costs: &ArcCosts,
    ) -> Result<Vec<ClusteringCandidate>, PlacementError> {
        let ev = PlanEvaluator::new(model, cluster);
        let mut out = Vec::new();
        for policy in [ClusteringPolicy::LargestRatio, ClusteringPolicy::MinWeight] {
            for &threshold in &self.thresholds {
                let clustering =
                    cluster_operators(model, arc_costs, policy, threshold, self.weight_cap);
                let allocation = place_clustered(model, cluster, &clustering)?;
                let min_plane_distance = ev.min_plane_distance(&allocation);
                let internode_arcs = ev.internode_arcs(&allocation);
                out.push(ClusteringCandidate {
                    policy,
                    threshold,
                    clustering,
                    allocation,
                    min_plane_distance,
                    internode_arcs,
                });
            }
        }
        out.sort_by(|a, b| b.min_plane_distance.total_cmp(&a.min_plane_distance));
        Ok(out)
    }

    /// Convenience: the single best candidate.
    pub fn best(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        arc_costs: &ArcCosts,
    ) -> Result<ClusteringCandidate, PlacementError> {
        Ok(self
            .run(model, cluster, arc_costs)?
            .into_iter()
            .next()
            .expect("at least one candidate per sweep"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::figure4_graph;
    use crate::graph::GraphBuilder;
    use crate::rod::RodPlanner;

    fn model() -> LoadModel {
        LoadModel::derive(&figure4_graph()).unwrap()
    }

    #[test]
    fn singleton_clustering() {
        let c = OperatorClustering::singletons(3);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.cluster_of(OperatorId(2)), 2);
    }

    #[test]
    fn merge_compacts_indices() {
        let mut c = OperatorClustering::singletons(4);
        c.merge(OperatorId(0), OperatorId(2));
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.cluster_of(OperatorId(0)), c.cluster_of(OperatorId(2)));
        // Merging again is a no-op.
        c.merge(OperatorId(2), OperatorId(0));
        assert_eq!(c.num_clusters(), 3);
    }

    #[test]
    fn high_transfer_cost_clusters_chains() {
        let m = model();
        // Transfer cost 100 vs processing costs 4..9: every arc's ratio
        // is >> 1, so each chain collapses into one cluster.
        let clustering = cluster_operators(
            &m,
            &ArcCosts::uniform(100.0),
            ClusteringPolicy::LargestRatio,
            1.0,
            1.0,
        );
        assert_eq!(clustering.num_clusters(), 2);
    }

    #[test]
    fn zero_transfer_cost_keeps_singletons() {
        let m = model();
        let clustering = cluster_operators(
            &m,
            &ArcCosts::uniform(0.0),
            ClusteringPolicy::LargestRatio,
            0.5,
            1.0,
        );
        assert_eq!(clustering.num_clusters(), 4);
    }

    #[test]
    fn weight_cap_blocks_heavy_clusters() {
        let m = model();
        // Chain 1 (o1+o2) has full share of stream 1 (weight 1.0); cap at
        // 0.9 forbids that merge but allows nothing heavier.
        let clustering = cluster_operators(
            &m,
            &ArcCosts::uniform(100.0),
            ClusteringPolicy::LargestRatio,
            1.0,
            0.9,
        );
        assert_eq!(clustering.num_clusters(), 4, "cap must block both merges");
    }

    #[test]
    fn clustered_placement_keeps_clusters_whole() {
        let m = model();
        let clustering = cluster_operators(
            &m,
            &ArcCosts::uniform(100.0),
            ClusteringPolicy::MinWeight,
            1.0,
            1.0,
        );
        let cluster = Cluster::homogeneous(2, 1.0);
        let alloc = place_clustered(&m, &cluster, &clustering).unwrap();
        assert!(alloc.is_complete());
        for c in 0..clustering.num_clusters() {
            let nodes: std::collections::HashSet<_> = clustering
                .members(c)
                .iter()
                .map(|&op| alloc.node_of(op).unwrap())
                .collect();
            assert_eq!(nodes.len(), 1, "cluster {c} split across nodes");
        }
    }

    #[test]
    fn search_orders_by_plane_distance_and_reduces_arcs() {
        // A deeper graph so clustering has something to chew on.
        let mut b = GraphBuilder::new();
        let i0 = b.add_input();
        let i1 = b.add_input();
        for (label, input) in [("a", i0), ("b", i1)] {
            let mut up = input;
            for j in 0..4 {
                let (_, s) = b
                    .add_operator(
                        format!("{label}{j}"),
                        crate::operator::OperatorKind::filter(2.0, 0.9),
                        &[up],
                    )
                    .unwrap();
                up = s;
            }
        }
        let m = LoadModel::derive(&b.build().unwrap()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let search = ClusteringSearch::default();
        let candidates = search.run(&m, &cluster, &ArcCosts::uniform(3.0)).unwrap();
        assert!(!candidates.is_empty());
        for w in candidates.windows(2) {
            assert!(w[0].min_plane_distance >= w[1].min_plane_distance);
        }
        // Aggressive clustering (low thresholds excluded by sweep order)
        // must cut inter-node arcs versus unclustered ROD.
        let ev = PlanEvaluator::new(&m, &cluster);
        let unclustered = RodPlanner::new().place(&m, &cluster).unwrap().allocation;
        let best = &candidates[0];
        assert!(best.internode_arcs <= ev.internode_arcs(&unclustered));
    }
}
