//! Linearisation of nonlinear load models (paper §6.2).
//!
//! The ROD machinery needs every operator's load to be a linear function of
//! a fixed set of rate variables. Filters, maps, unions and aggregates with
//! constant selectivity satisfy this directly in the system input rates.
//! Two things break linearity:
//!
//! * an operator with **data-dependent selectivity** — its own load is
//!   still linear in its input rates, but the rates *downstream* of it are
//!   not expressible, so its output rate becomes a fresh variable
//!   (Example 3, variable `r₃`);
//! * a **windowed join** — its load `c·w·r_u·r_v` is bilinear; the paper's
//!   trick is to introduce its output rate `r_out = s·w·r_u·r_v` as a
//!   fresh variable and rewrite the join's load as `(c/s)·r_out`
//!   (Example 3, variable `r₄`).
//!
//! The pass below walks the graph in topological order, maintaining for
//! every stream a symbolic [`RateExpr`] — a linear combination over the
//! variables discovered so far — and "cuts" the graph (Fig. 13) by minting
//! a new variable exactly where linearity would be lost. The paper's goal
//! of introducing *as few variables as possible* is met by construction:
//! a variable is introduced only at the output of a nonlinear or
//! variable-selectivity operator, never elsewhere.

use serde::{Deserialize, Serialize};

use crate::graph::QueryGraph;
use crate::ids::{InputId, OperatorId, StreamId, VarId};
use crate::operator::OperatorKind;

/// What a rate variable of the linearised model stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarInfo {
    /// The rate of system input stream `I_k` — variables `x_0 … x_{d-1}`.
    SystemInput(InputId),
    /// The output rate of an operator whose output could not be expressed
    /// linearly (a join or a variable-selectivity operator).
    Introduced {
        /// The operator whose output rate this variable is.
        operator: OperatorId,
        /// Its output stream.
        stream: StreamId,
    },
}

/// A sparse linear expression `Σ coeff_v · x_v` over the model variables.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RateExpr {
    /// `(variable, coefficient)` pairs, sorted by variable, no zeros, no
    /// duplicates.
    terms: Vec<(VarId, f64)>,
}

impl RateExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        RateExpr::default()
    }

    /// The single-variable expression `coeff · x_v`.
    pub fn unit(v: VarId, coeff: f64) -> Self {
        if coeff == 0.0 {
            RateExpr::zero()
        } else {
            RateExpr {
                terms: vec![(v, coeff)],
            }
        }
    }

    /// The terms, sorted by variable.
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// Adds `coeff · other` into `self`.
    pub fn add_scaled(&mut self, other: &RateExpr, coeff: f64) {
        if coeff == 0.0 {
            return;
        }
        let mut merged = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut a, mut b) = (self.terms.iter().peekable(), other.terms.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(va, ca)), Some(&&(vb, cb))) => {
                    if va < vb {
                        merged.push((va, ca));
                        a.next();
                    } else if vb < va {
                        merged.push((vb, cb * coeff));
                        b.next();
                    } else {
                        let c = ca + cb * coeff;
                        if c != 0.0 {
                            merged.push((va, c));
                        }
                        a.next();
                        b.next();
                    }
                }
                (Some(&&(va, ca)), None) => {
                    merged.push((va, ca));
                    a.next();
                }
                (None, Some(&&(vb, cb))) => {
                    merged.push((vb, cb * coeff));
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.terms = merged;
    }

    /// Evaluates the expression at a concrete variable point.
    pub fn eval(&self, var_values: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|&(v, c)| c * var_values[v.index()])
            .sum()
    }

    /// Densifies into a coefficient row of length `num_vars`.
    pub fn to_dense(&self, num_vars: usize) -> Vec<f64> {
        let mut row = vec![0.0; num_vars];
        for &(v, c) in &self.terms {
            row[v.index()] = c;
        }
        row
    }

    /// Number of nonzero coefficients.
    pub fn nnz(&self) -> usize {
        self.terms.len()
    }

    /// Converts into a [`rod_geom::SparseRow`] of width `num_vars` — the
    /// expression already *is* sparse (sorted terms, no zeros), so this is
    /// a direct re-labelling, not a compression pass.
    pub fn to_sparse_row(&self, num_vars: usize) -> rod_geom::SparseRow {
        rod_geom::SparseRow::from_terms(
            num_vars,
            self.terms.iter().map(|&(v, c)| (v.index() as u32, c)),
        )
    }
}

/// Output of the linearisation pass.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linearization {
    /// All rate variables: the `d` system inputs first, then introduced
    /// variables in topological discovery order.
    pub vars: Vec<VarInfo>,
    /// Rate expression of every stream (indexed by [`StreamId`]).
    pub stream_exprs: Vec<RateExpr>,
    /// Load expression of every operator (rows of `L^o`, indexed by
    /// [`OperatorId`]).
    pub op_load_exprs: Vec<RateExpr>,
}

impl Linearization {
    /// Runs the pass over a validated graph.
    pub fn run(graph: &QueryGraph) -> Linearization {
        let mut vars: Vec<VarInfo> = (0..graph.num_inputs())
            .map(|k| VarInfo::SystemInput(InputId(k)))
            .collect();
        let mut stream_exprs: Vec<RateExpr> = vec![RateExpr::zero(); graph.num_streams()];
        for (k, &s) in graph.inputs().iter().enumerate() {
            stream_exprs[s.index()] = RateExpr::unit(VarId(k), 1.0);
        }
        let mut op_load_exprs: Vec<RateExpr> = Vec::with_capacity(graph.num_operators());

        for op in graph.operators() {
            match &op.kind {
                OperatorKind::Linear {
                    costs,
                    selectivities,
                } => {
                    let mut load = RateExpr::zero();
                    let mut out = RateExpr::zero();
                    for (port, &input) in op.inputs.iter().enumerate() {
                        let input_expr = stream_exprs[input.index()].clone();
                        load.add_scaled(&input_expr, costs[port]);
                        out.add_scaled(&input_expr, selectivities[port]);
                    }
                    op_load_exprs.push(load);
                    stream_exprs[op.output.index()] = out;
                }
                OperatorKind::VariableSelectivity { costs, .. } => {
                    // Load is linear in the *input* rates (cost per tuple
                    // is constant) ...
                    let mut load = RateExpr::zero();
                    for (port, &input) in op.inputs.iter().enumerate() {
                        load.add_scaled(&stream_exprs[input.index()].clone(), costs[port]);
                    }
                    op_load_exprs.push(load);
                    // ... but the output rate is unknowable: new variable.
                    let v = VarId(vars.len());
                    vars.push(VarInfo::Introduced {
                        operator: op.id,
                        stream: op.output,
                    });
                    stream_exprs[op.output.index()] = RateExpr::unit(v, 1.0);
                }
                OperatorKind::WindowJoin {
                    cost_per_pair,
                    selectivity_per_pair,
                    ..
                } => {
                    // Introduce r_out; the join's load c·w·r_u·r_v equals
                    // (c/s)·r_out because r_out = s·w·r_u·r_v (§6.2).
                    let v = VarId(vars.len());
                    vars.push(VarInfo::Introduced {
                        operator: op.id,
                        stream: op.output,
                    });
                    op_load_exprs.push(RateExpr::unit(v, cost_per_pair / selectivity_per_pair));
                    stream_exprs[op.output.index()] = RateExpr::unit(v, 1.0);
                }
            }
        }

        Linearization {
            vars,
            stream_exprs,
            op_load_exprs,
        }
    }

    /// Number of variables `d'` (≥ the number of system inputs).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Concrete values of all variables at a system-input rate point,
    /// obtained by propagating true rates through the graph (nominal
    /// selectivities for data-dependent operators).
    pub fn variable_point(&self, graph: &QueryGraph, input_rates: &[f64]) -> Vec<f64> {
        let rates = graph.propagate_rates(input_rates);
        self.vars
            .iter()
            .map(|v| match v {
                VarInfo::SystemInput(k) => input_rates[k.index()],
                VarInfo::Introduced { stream, .. } => rates[stream.index()],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{example3_graph, figure4_graph};
    use crate::graph::GraphBuilder;

    #[test]
    fn rate_expr_merge() {
        let mut e = RateExpr::unit(VarId(0), 2.0);
        e.add_scaled(&RateExpr::unit(VarId(1), 3.0), 2.0);
        e.add_scaled(&RateExpr::unit(VarId(0), 1.0), -2.0);
        assert_eq!(e.terms(), &[(VarId(1), 6.0)]);
        assert_eq!(e.eval(&[100.0, 10.0]), 60.0);
    }

    #[test]
    fn rate_expr_dense() {
        let mut e = RateExpr::unit(VarId(2), 5.0);
        e.add_scaled(&RateExpr::unit(VarId(0), 1.0), 1.0);
        assert_eq!(e.to_dense(4), vec![1.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn linear_graph_introduces_no_variables() {
        let g = figure4_graph();
        let lin = Linearization::run(&g);
        assert_eq!(lin.num_vars(), 2);
        // Example 1 loads: c1 r1, c2 s1 r1, c3 r2, c4 s3 r2
        // with c=(4,6,9,4), s1=1, s3=0.5:
        assert_eq!(lin.op_load_exprs[0].to_dense(2), vec![4.0, 0.0]);
        assert_eq!(lin.op_load_exprs[1].to_dense(2), vec![6.0, 0.0]);
        assert_eq!(lin.op_load_exprs[2].to_dense(2), vec![0.0, 9.0]);
        assert_eq!(lin.op_load_exprs[3].to_dense(2), vec![0.0, 2.0]);
    }

    #[test]
    fn example3_introduces_two_variables() {
        // Example 3 / Figure 13: o1 has variable selectivity (→ r3) and o5
        // is a join (→ r4): exactly 2 extra variables over the 2 inputs.
        let g = example3_graph();
        let lin = Linearization::run(&g);
        assert_eq!(lin.num_vars(), 4);
        let introduced: Vec<_> = lin
            .vars
            .iter()
            .filter(|v| matches!(v, VarInfo::Introduced { .. }))
            .collect();
        assert_eq!(introduced.len(), 2);
    }

    #[test]
    fn join_load_is_c_over_s_times_output() {
        let mut b = GraphBuilder::new();
        let i0 = b.add_input();
        let i1 = b.add_input();
        b.add_operator(
            "j",
            OperatorKind::WindowJoin {
                window: 2.0,
                cost_per_pair: 6.0,
                selectivity_per_pair: 0.5,
            },
            &[i0, i1],
        )
        .unwrap();
        let g = b.build().unwrap();
        let lin = Linearization::run(&g);
        assert_eq!(lin.num_vars(), 3);
        // load = (6 / 0.5) x2 = 12 x2.
        assert_eq!(lin.op_load_exprs[0].to_dense(3), vec![0.0, 0.0, 12.0]);
    }

    #[test]
    fn linearised_load_equals_true_load_at_any_point() {
        let g = example3_graph();
        let lin = Linearization::run(&g);
        for rates in [[2.0, 3.0], [0.1, 7.0], [5.0, 5.0], [0.0, 1.0]] {
            let x = lin.variable_point(&g, &rates);
            let true_loads = g.operator_loads(&rates);
            for (j, expr) in lin.op_load_exprs.iter().enumerate() {
                let lin_load = expr.eval(&x);
                assert!(
                    (lin_load - true_loads[j]).abs() < 1e-9 * (1.0 + true_loads[j]),
                    "operator {j}: linear {lin_load} vs true {}",
                    true_loads[j]
                );
            }
        }
    }

    #[test]
    fn downstream_of_join_uses_join_variable() {
        let g = example3_graph();
        let lin = Linearization::run(&g);
        // o6 (last operator) consumes the join output; its load must
        // depend only on the join's introduced variable.
        let o6 = lin.op_load_exprs.last().unwrap();
        assert_eq!(o6.terms().len(), 1);
        let (v, _) = o6.terms()[0];
        assert!(matches!(lin.vars[v.index()], VarInfo::Introduced { .. }));
    }
}
