//! Continuous-query operators and their cost model.
//!
//! Following §2.2 of the paper, an operator is characterised by its
//! **cost** (average CPU cycles needed per input tuple) and its
//! **selectivity** (output rate / input rate). Three behavioural classes
//! cover everything the paper discusses:
//!
//! * [`OperatorKind::Linear`] — union, map, filter, aggregate, the
//!   experimental *delay* operator: constant per-tuple cost and constant
//!   selectivity per input port, so both the load and the output rate are
//!   linear in the input rates;
//! * [`OperatorKind::VariableSelectivity`] — constant per-tuple cost but a
//!   data-dependent selectivity (Example 3's `o₁`): the operator's *own*
//!   load is still linear in its input rates, but downstream rates are
//!   not, so linearisation introduces the output rate as a fresh variable;
//! * [`OperatorKind::WindowJoin`] — a time-window join (§6.2): with window
//!   `w` and input rates `r_u, r_v` it processes `w·r_u·r_v` tuple pairs
//!   per unit time, costing `c` cycles per pair and emitting
//!   `s·w·r_u·r_v` tuples. Its load is linear in its *output* rate
//!   (`(c/s)·r_out`), which linearisation exploits.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::ids::{OperatorId, StreamId};

/// The behavioural class and parameters of an operator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Constant cost and constant selectivity per input port.
    ///
    /// With input rates `r_p`: load `= Σ_p costs[p]·r_p`, output rate
    /// `= Σ_p selectivities[p]·r_p` (a union has all selectivities 1, a
    /// filter one selectivity < 1, etc.).
    Linear {
        /// CPU cost per tuple, per input port.
        costs: Vec<f64>,
        /// Output tuples per input tuple, per input port.
        selectivities: Vec<f64>,
    },
    /// Constant per-tuple cost, data-dependent selectivity.
    ///
    /// `nominal_selectivities` are the long-run averages used when a
    /// concrete rate must be produced (simulation, probing); the planner
    /// treats the output rate as an independent variable instead.
    VariableSelectivity {
        /// CPU cost per tuple, per input port.
        costs: Vec<f64>,
        /// Average output tuples per input tuple, per input port.
        nominal_selectivities: Vec<f64>,
    },
    /// A time-window-based join over exactly two inputs.
    WindowJoin {
        /// Join window length `w` (time units).
        window: f64,
        /// CPU cycles per tuple *pair* examined.
        cost_per_pair: f64,
        /// Output tuples per tuple pair examined (must be > 0 so the §6.2
        /// substitution `load = (c/s)·r_out` is defined).
        selectivity_per_pair: f64,
    },
}

impl OperatorKind {
    /// Number of input ports this kind requires, or `None` when any
    /// positive arity is allowed.
    pub fn required_arity(&self) -> Option<usize> {
        match self {
            OperatorKind::Linear { costs, .. }
            | OperatorKind::VariableSelectivity { costs, .. } => Some(costs.len()),
            OperatorKind::WindowJoin { .. } => Some(2),
        }
    }

    /// True when downstream rates stay linear in upstream rates (constant
    /// selectivity, no products of rates).
    pub fn output_rate_is_linear(&self) -> bool {
        matches!(self, OperatorKind::Linear { .. })
    }
}

/// A placed-as-a-unit continuous-query operator (§2.1: "we consider each
/// continuous query operator as the minimum task allocation unit").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OperatorSpec {
    /// Stable identifier (index into the graph's operator list).
    pub id: OperatorId,
    /// Human-readable label (for plans, traces, debug output).
    pub name: String,
    /// Behavioural class and parameters.
    pub kind: OperatorKind,
    /// Streams consumed, in port order.
    pub inputs: Vec<StreamId>,
    /// The single stream produced.
    pub output: StreamId,
}

impl OperatorSpec {
    /// Instantaneous CPU load given concrete input rates (tuples/time on
    /// each port). This is the *true*, possibly nonlinear load — the
    /// ground truth the linearised model must agree with.
    pub fn load_at(&self, input_rates: &[f64]) -> f64 {
        assert_eq!(input_rates.len(), self.inputs.len(), "rate per port");
        match &self.kind {
            OperatorKind::Linear { costs, .. }
            | OperatorKind::VariableSelectivity { costs, .. } => {
                costs.iter().zip(input_rates).map(|(c, r)| c * r).sum()
            }
            OperatorKind::WindowJoin {
                window,
                cost_per_pair,
                ..
            } => cost_per_pair * window * input_rates[0] * input_rates[1],
        }
    }

    /// Output stream rate given concrete input rates, using nominal
    /// selectivities where the true selectivity is data-dependent.
    pub fn output_rate_at(&self, input_rates: &[f64]) -> f64 {
        assert_eq!(input_rates.len(), self.inputs.len(), "rate per port");
        match &self.kind {
            OperatorKind::Linear { selectivities, .. } => selectivities
                .iter()
                .zip(input_rates)
                .map(|(s, r)| s * r)
                .sum(),
            OperatorKind::VariableSelectivity {
                nominal_selectivities,
                ..
            } => nominal_selectivities
                .iter()
                .zip(input_rates)
                .map(|(s, r)| s * r)
                .sum(),
            OperatorKind::WindowJoin {
                window,
                selectivity_per_pair,
                ..
            } => selectivity_per_pair * window * input_rates[0] * input_rates[1],
        }
    }

    /// Validates costs/selectivities/window for this operator.
    pub fn validate(&self) -> Result<(), GraphError> {
        let invalid = |message: String| GraphError::InvalidParameter {
            operator: self.id,
            message,
        };
        let check_nonneg = |label: &str, xs: &[f64]| -> Result<(), GraphError> {
            for &x in xs {
                if !x.is_finite() || x < 0.0 {
                    return Err(invalid(format!("{label} {x} must be finite and >= 0")));
                }
            }
            Ok(())
        };
        match &self.kind {
            OperatorKind::Linear {
                costs,
                selectivities,
            } => {
                if costs.len() != selectivities.len() {
                    return Err(invalid(format!(
                        "{} costs vs {} selectivities",
                        costs.len(),
                        selectivities.len()
                    )));
                }
                check_nonneg("cost", costs)?;
                check_nonneg("selectivity", selectivities)?;
            }
            OperatorKind::VariableSelectivity {
                costs,
                nominal_selectivities,
            } => {
                if costs.len() != nominal_selectivities.len() {
                    return Err(invalid(format!(
                        "{} costs vs {} nominal selectivities",
                        costs.len(),
                        nominal_selectivities.len()
                    )));
                }
                check_nonneg("cost", costs)?;
                check_nonneg("nominal selectivity", nominal_selectivities)?;
            }
            OperatorKind::WindowJoin {
                window,
                cost_per_pair,
                selectivity_per_pair,
            } => {
                if !window.is_finite() || *window <= 0.0 {
                    return Err(invalid(format!("window {window} must be > 0")));
                }
                if !cost_per_pair.is_finite() || *cost_per_pair < 0.0 {
                    return Err(invalid(format!(
                        "cost per pair {cost_per_pair} must be >= 0"
                    )));
                }
                if !selectivity_per_pair.is_finite() || *selectivity_per_pair <= 0.0 {
                    return Err(invalid(format!(
                        "join selectivity {selectivity_per_pair} must be > 0 \
                         (required by the (c/s)·r_out linearisation)"
                    )));
                }
            }
        }
        if let Some(expected) = self.kind.required_arity() {
            if expected != self.inputs.len() {
                return Err(GraphError::ArityMismatch {
                    operator: self.id,
                    expected: match &self.kind {
                        OperatorKind::WindowJoin { .. } => "exactly 2",
                        _ => "one cost per port",
                    },
                    actual: self.inputs.len(),
                });
            }
        }
        Ok(())
    }
}

/// Shorthand constructors for the common relational-algebra-style kinds.
impl OperatorKind {
    /// A single-input filter: cost per tuple, selectivity ≤ 1 (not
    /// enforced — some "filters" enrich).
    pub fn filter(cost: f64, selectivity: f64) -> Self {
        OperatorKind::Linear {
            costs: vec![cost],
            selectivities: vec![selectivity],
        }
    }

    /// A single-input map: selectivity exactly 1.
    pub fn map(cost: f64) -> Self {
        OperatorKind::Linear {
            costs: vec![cost],
            selectivities: vec![1.0],
        }
    }

    /// An n-ary union: every input passes through at cost `cost` each.
    pub fn union(cost: f64, arity: usize) -> Self {
        OperatorKind::Linear {
            costs: vec![cost; arity],
            selectivities: vec![1.0; arity],
        }
    }

    /// A single-input aggregate emitting `selectivity` outputs per input
    /// tuple (e.g. 1/window-size for a tumbling window).
    pub fn aggregate(cost: f64, selectivity: f64) -> Self {
        OperatorKind::Linear {
            costs: vec![cost],
            selectivities: vec![selectivity],
        }
    }

    /// The paper's experimental *delay* operator (§7.1): adjustable
    /// per-tuple cost and selectivity — behaviourally identical to a
    /// filter but named for fidelity to the evaluation setup.
    pub fn delay(cost: f64, selectivity: f64) -> Self {
        OperatorKind::Linear {
            costs: vec![cost],
            selectivities: vec![selectivity],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: OperatorKind, ninputs: usize) -> OperatorSpec {
        OperatorSpec {
            id: OperatorId(0),
            name: "t".into(),
            kind,
            inputs: (0..ninputs).map(StreamId).collect(),
            output: StreamId(99),
        }
    }

    #[test]
    fn linear_load_and_rate() {
        let op = spec(OperatorKind::filter(4.0, 0.5), 1);
        assert_eq!(op.load_at(&[3.0]), 12.0);
        assert_eq!(op.output_rate_at(&[3.0]), 1.5);
    }

    #[test]
    fn union_sums_ports() {
        let op = spec(OperatorKind::union(2.0, 3), 3);
        assert_eq!(op.load_at(&[1.0, 2.0, 3.0]), 12.0);
        assert_eq!(op.output_rate_at(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn join_is_quadratic() {
        let op = spec(
            OperatorKind::WindowJoin {
                window: 2.0,
                cost_per_pair: 5.0,
                selectivity_per_pair: 0.1,
            },
            2,
        );
        // pairs = w * r_u * r_v = 2 * 3 * 4 = 24
        assert_eq!(op.load_at(&[3.0, 4.0]), 120.0);
        assert!((op.output_rate_at(&[3.0, 4.0]) - 2.4).abs() < 1e-12);
        // Doubling one rate doubles the load (bilinear).
        assert_eq!(op.load_at(&[6.0, 4.0]), 240.0);
    }

    #[test]
    fn variable_selectivity_uses_nominal_for_rates() {
        let op = spec(
            OperatorKind::VariableSelectivity {
                costs: vec![3.0],
                nominal_selectivities: vec![0.7],
            },
            1,
        );
        assert_eq!(op.load_at(&[10.0]), 30.0);
        assert!((op.output_rate_at(&[10.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(spec(OperatorKind::filter(-1.0, 0.5), 1).validate().is_err());
        assert!(spec(OperatorKind::filter(1.0, f64::NAN), 1)
            .validate()
            .is_err());
        assert!(spec(
            OperatorKind::WindowJoin {
                window: 0.0,
                cost_per_pair: 1.0,
                selectivity_per_pair: 0.1,
            },
            2
        )
        .validate()
        .is_err());
        // Zero join selectivity breaks the (c/s) substitution.
        assert!(spec(
            OperatorKind::WindowJoin {
                window: 1.0,
                cost_per_pair: 1.0,
                selectivity_per_pair: 0.0,
            },
            2
        )
        .validate()
        .is_err());
    }

    #[test]
    fn validation_rejects_arity_mismatch() {
        // A join with three inputs.
        let bad = spec(
            OperatorKind::WindowJoin {
                window: 1.0,
                cost_per_pair: 1.0,
                selectivity_per_pair: 0.5,
            },
            3,
        );
        assert!(matches!(
            bad.validate(),
            Err(GraphError::ArityMismatch { .. })
        ));
        // A filter with two inputs.
        let bad = spec(OperatorKind::filter(1.0, 1.0), 2);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn valid_specs_pass() {
        assert!(spec(OperatorKind::map(2.0), 1).validate().is_ok());
        assert!(spec(OperatorKind::union(1.0, 4), 4).validate().is_ok());
        assert!(spec(
            OperatorKind::WindowJoin {
                window: 0.5,
                cost_per_pair: 2.0,
                selectivity_per_pair: 0.3,
            },
            2
        )
        .validate()
        .is_ok());
    }
}
