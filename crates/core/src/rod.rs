//! The Resilient Operator Distribution algorithm (paper §5, Figure 10).
//!
//! Phase 1 sorts operators by the L2 norm of their load-coefficient
//! vectors, descending, so high-impact operators are placed while the most
//! freedom remains (the usual greedy/bin-packing device).
//!
//! Phase 2 places each operator in turn. For every node the *candidate*
//! weight row — the node's normalised weights if it received the operator —
//! is computed:
//!
//! ```text
//! w_ik = ((l^n_ik + l^o_jk) / l_k) / (C_i / C_T)
//! ```
//!
//! Nodes whose candidate hyperplane still lies entirely above the ideal
//! hyperplane (`w_ik ≤ 1` for all `k`) form **Class I**: assigning there
//! cannot shrink the final feasible set below the ideal bound, and pushes
//! axis intercepts toward the ideal ones (the MMAD heuristic). If Class I
//! is empty the operator goes to the **Class II** node with the largest
//! candidate plane distance `1/‖W_i‖` (the MMPD heuristic) — or, under the
//! §6.1 extension, the largest distance measured from the known
//! lower-bound point.

use serde::{Deserialize, Serialize};

use rand::seq::SliceRandom;
use rod_geom::seeded_rng;

use std::time::Instant;

use crate::allocation::Allocation;
use crate::baselines::Planner;
use crate::cluster::Cluster;
use crate::error::PlacementError;
use crate::eval::{CandidateScore, IncrementalPlanEval};
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;
use crate::obs::MetricsRegistry;

/// How to break ties among Class I nodes (paper §5.2: "choosing any node
/// from Class I does not affect the final feasible set size in this step.
/// Therefore, a random node can be selected or we can choose the
/// destination node using some other criteria").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ClassOnePolicy {
    /// Pick the Class I node whose candidate plane distance is largest —
    /// deterministic and locally consistent with the MMPD heuristic. The
    /// default.
    MaxPlaneDistance,
    /// Pick the lowest-numbered Class I node.
    FirstFit,
    /// Pick a Class I node uniformly at random (seeded).
    Random {
        /// RNG seed for the random picks.
        seed: u64,
    },
    /// Prefer the Class I node already hosting the most graph neighbours
    /// of the operator, to reduce inter-node streams (the paper's example
    /// criterion for communication-conscious deployments); plane distance
    /// breaks remaining ties.
    MinCommunication,
}

/// Phase-1 operator ordering (the paper uses descending norm; the other
/// orders exist for the ablation benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperatorOrdering {
    /// Largest load-vector norm first (the paper's choice: "dealing with
    /// such operators late may cause the system to significantly deviate
    /// from the optimal results").
    NormDescending,
    /// Smallest norm first (ablation: the classic greedy mistake).
    NormAscending,
    /// Graph insertion order (ablation: no ordering at all).
    ByIndex,
}

/// Configuration of the ROD planner.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RodOptions {
    /// Class I tie-breaking.
    pub class_one_policy: ClassOnePolicy,
    /// Optional §6.1 lower bound `B` on the *system input* rates. Lower
    /// bounds for introduced variables are derived by propagating `B`
    /// through the graph (all operators are rate-monotone, so propagated
    /// rates are valid lower bounds for the introduced variables too).
    pub input_lower_bound: Option<Vec<f64>>,
    /// Phase-1 ordering (ablation hook; default NormDescending).
    pub ordering: OperatorOrdering,
    /// When false, skip the Class I / Class II distinction and always
    /// pick the node with maximum candidate plane distance — the
    /// pure-MMPD greedy the Class-I rule is layered on (ablation hook).
    pub use_class_one: bool,
}

impl Default for RodOptions {
    fn default() -> Self {
        RodOptions {
            class_one_policy: ClassOnePolicy::MaxPlaneDistance,
            input_lower_bound: None,
            ordering: OperatorOrdering::NormDescending,
            use_class_one: true,
        }
    }
}

/// Which class the chosen node belonged to at one assignment step —
/// diagnostic output useful for ablations and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepClass {
    /// The node's candidate hyperplane stayed above the ideal hyperplane.
    ClassOne,
    /// Every candidate crossed the ideal hyperplane; MMPD picked.
    ClassTwo,
}

/// The result of a ROD run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RodPlan {
    /// The produced placement.
    pub allocation: Allocation,
    /// Operators in the order they were assigned (Phase 1 order).
    pub order: Vec<OperatorId>,
    /// Class used at each step, parallel to `order`.
    pub step_classes: Vec<StepClass>,
}

impl RodPlan {
    /// Fraction of assignment steps that found a Class I node.
    pub fn class_one_fraction(&self) -> f64 {
        if self.step_classes.is_empty() {
            return 0.0;
        }
        self.step_classes
            .iter()
            .filter(|c| **c == StepClass::ClassOne)
            .count() as f64
            / self.step_classes.len() as f64
    }
}

/// The ROD planner.
#[derive(Clone, Debug, Default)]
pub struct RodPlanner {
    options: RodOptions,
}

impl RodPlanner {
    /// Planner with default options.
    pub fn new() -> Self {
        RodPlanner::default()
    }

    /// Planner with explicit options.
    pub fn with_options(options: RodOptions) -> Self {
        RodPlanner { options }
    }

    /// Runs ROD and returns the plan with diagnostics.
    pub fn place(&self, model: &LoadModel, cluster: &Cluster) -> Result<RodPlan, PlacementError> {
        self.place_impl(model, cluster, None)
    }

    /// Like [`place`](RodPlanner::place), additionally recording per-phase
    /// wall-clock timings (`rod.phase1_seconds`, `rod.phase2_seconds`) and
    /// step-class counters into `metrics`.
    pub fn place_with_metrics(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: &MetricsRegistry,
    ) -> Result<RodPlan, PlacementError> {
        self.place_impl(model, cluster, Some(metrics))
    }

    fn place_impl(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<RodPlan, PlacementError> {
        cluster.validate()?;
        let m = model.num_operators();
        if m == 0 {
            return Err(PlacementError::EmptyModel);
        }
        let n = cluster.num_nodes();

        // The incremental evaluation layer owns the node-load and weight
        // state; the §6.1 lower bound (when set) is folded into every
        // candidate plane distance it reports.
        let mut eval = IncrementalPlanEval::new(model, cluster);
        if let Some(b) = &self.options.input_lower_bound {
            eval.set_input_lower_bound(b);
        }

        // ---- Phase 1: order the operators. ----
        let phase1_start = Instant::now();
        let mut order: Vec<OperatorId> = (0..m).map(OperatorId).collect();
        match self.options.ordering {
            OperatorOrdering::NormDescending => order.sort_by(|&a, &b| {
                model
                    .operator_norm(b)
                    .total_cmp(&model.operator_norm(a))
                    .then(a.cmp(&b))
            }),
            OperatorOrdering::NormAscending => order.sort_by(|&a, &b| {
                model
                    .operator_norm(a)
                    .total_cmp(&model.operator_norm(b))
                    .then(a.cmp(&b))
            }),
            OperatorOrdering::ByIndex => {}
        }
        if let Some(metrics) = metrics {
            metrics.observe("rod.phase1_seconds", phase1_start.elapsed().as_secs_f64());
            metrics.set_gauge("rod.operators", m as f64);
            metrics.set_gauge("rod.nodes", n as f64);
        }

        // ---- Phase 2: greedy assignment. ----
        let phase2_start = Instant::now();
        let adjacency = match self.options.class_one_policy {
            ClassOnePolicy::MinCommunication => model.graph().adjacency(),
            _ => Vec::new(),
        };
        let mut step_classes = Vec::with_capacity(m);
        let mut rng = match self.options.class_one_policy {
            ClassOnePolicy::Random { seed } => Some(seeded_rng(seed)),
            _ => None,
        };

        let mut scores: Vec<CandidateScore> = Vec::with_capacity(n);
        let mut class_one: Vec<usize> = Vec::with_capacity(n);

        for &op in &order {
            // Classify nodes by their candidate hyperplane — one O(d)
            // probe per node against the incremental state.
            scores.clear();
            class_one.clear();
            for i in 0..n {
                let score = eval.score_candidate(op, NodeId(i));
                if score.class_one {
                    class_one.push(i);
                }
                scores.push(score);
            }

            let candidate_distance = |i: usize| scores[i].plane_distance;

            let (dest, class) = if self.options.use_class_one && !class_one.is_empty() {
                let dest = match self.options.class_one_policy {
                    ClassOnePolicy::FirstFit => class_one[0],
                    ClassOnePolicy::Random { .. } => *class_one
                        .choose(rng.as_mut().expect("rng for Random policy"))
                        .expect("non-empty class one"),
                    ClassOnePolicy::MaxPlaneDistance => best_by(&class_one, candidate_distance),
                    ClassOnePolicy::MinCommunication => {
                        let neighbours = |i: usize| -> usize {
                            adjacency[op.index()]
                                .iter()
                                .filter(|nb| eval.allocation().node_of(**nb) == Some(NodeId(i)))
                                .count()
                        };
                        // Most already-placed neighbours first; plane
                        // distance breaks ties.
                        let max_nb = class_one.iter().map(|&i| neighbours(i)).max().unwrap_or(0);
                        let tied: Vec<usize> = class_one
                            .iter()
                            .copied()
                            .filter(|&i| neighbours(i) == max_nb)
                            .collect();
                        best_by(&tied, candidate_distance)
                    }
                };
                (dest, StepClass::ClassOne)
            } else {
                let all: Vec<usize> = (0..n).collect();
                (best_by(&all, candidate_distance), StepClass::ClassTwo)
            };

            eval.assign(op, NodeId(dest));
            step_classes.push(class);
        }
        if let Some(metrics) = metrics {
            metrics.observe("rod.phase2_seconds", phase2_start.elapsed().as_secs_f64());
            metrics.add(
                "rod.steps_class_one",
                step_classes
                    .iter()
                    .filter(|c| **c == StepClass::ClassOne)
                    .count() as u64,
            );
            metrics.add(
                "rod.steps_class_two",
                step_classes
                    .iter()
                    .filter(|c| **c == StepClass::ClassTwo)
                    .count() as u64,
            );
        }

        Ok(RodPlan {
            allocation: eval.into_allocation(),
            order,
            step_classes,
        })
    }
}

impl RodPlanner {
    /// Extends an existing (possibly partial) allocation: operators
    /// already placed stay where they are — stream processing systems
    /// add continuous queries over time, and moving live operators is
    /// exactly what ROD exists to avoid — while the unplaced remainder
    /// is assigned by the usual Phase 1 + Phase 2 greedy, starting from
    /// the node load the fixed operators already impose.
    ///
    /// `model` must describe the *whole* graph (old + new operators);
    /// `existing.node_of(op)` is `None` exactly for the operators to
    /// place. With an entirely empty `existing` this is identical to
    /// [`RodPlanner::place`].
    pub fn extend(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        existing: &Allocation,
    ) -> Result<RodPlan, PlacementError> {
        cluster.validate()?;
        assert_eq!(
            existing.num_operators(),
            model.num_operators(),
            "existing allocation must cover the full model"
        );
        assert_eq!(existing.num_nodes(), cluster.num_nodes());
        let m = model.num_operators();
        if m == 0 {
            return Err(PlacementError::EmptyModel);
        }
        let n = cluster.num_nodes();

        // Start from the load the fixed operators impose.
        let mut eval = IncrementalPlanEval::from_allocation(model, cluster, existing);
        let mut pending: Vec<OperatorId> = (0..m)
            .map(OperatorId)
            .filter(|&op| existing.node_of(op).is_none())
            .collect();
        pending.sort_by(|&a, &b| {
            model
                .operator_norm(b)
                .total_cmp(&model.operator_norm(a))
                .then(a.cmp(&b))
        });

        let mut step_classes = Vec::with_capacity(pending.len());
        let mut scores: Vec<CandidateScore> = Vec::with_capacity(n);
        for &op in &pending {
            scores.clear();
            let mut class_one: Vec<usize> = Vec::new();
            for i in 0..n {
                let score = eval.score_candidate(op, NodeId(i));
                if score.class_one {
                    class_one.push(i);
                }
                scores.push(score);
            }
            let distance = |i: usize| scores[i].plane_distance;
            let (dest, class) = if !class_one.is_empty() {
                (best_by(&class_one, distance), StepClass::ClassOne)
            } else {
                let all: Vec<usize> = (0..n).collect();
                (best_by(&all, distance), StepClass::ClassTwo)
            };
            eval.assign(op, NodeId(dest));
            step_classes.push(class);
        }

        Ok(RodPlan {
            allocation: eval.into_allocation(),
            order: pending,
            step_classes,
        })
    }
}

impl Planner for RodPlanner {
    fn name(&self) -> &'static str {
        "ROD"
    }

    fn plan(&self, model: &LoadModel, cluster: &Cluster) -> Result<Allocation, PlacementError> {
        self.place(model, cluster).map(|p| p.allocation)
    }

    fn plan_with_metrics(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: &MetricsRegistry,
    ) -> Result<Allocation, PlacementError> {
        self.place_with_metrics(model, cluster, metrics)
            .map(|p| p.allocation)
    }
}

/// Index in `candidates` maximising `score`, breaking ties by the lowest
/// index for determinism.
fn best_by(candidates: &[usize], score: impl Fn(usize) -> f64) -> usize {
    assert!(!candidates.is_empty());
    let mut best = candidates[0];
    let mut best_score = score(best);
    for &c in &candidates[1..] {
        let s = score(c);
        if s > best_score + 1e-15 {
            best = c;
            best_score = s;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::PlanEvaluator;
    use crate::examples_paper::figure4_graph;
    use crate::graph::GraphBuilder;
    use crate::operator::OperatorKind;

    fn model() -> LoadModel {
        LoadModel::derive(&figure4_graph()).unwrap()
    }

    #[test]
    fn phase1_orders_by_norm_descending() {
        let m = model();
        let plan = RodPlanner::new()
            .place(&m, &Cluster::homogeneous(2, 1.0))
            .unwrap();
        // Norms: o0=4, o1=6, o2=9, o3=2 → order o2, o1, o0, o3.
        assert_eq!(
            plan.order,
            vec![OperatorId(2), OperatorId(1), OperatorId(0), OperatorId(3)]
        );
    }

    #[test]
    fn rod_separates_streams_on_figure4() {
        // The best two-node plan for Example 2 must NOT put both heavy
        // operators (o2: 9r2, o1: 6r1) on the same node.
        let m = model();
        let cluster = Cluster::homogeneous(2, 1.0);
        let plan = RodPlanner::new().place(&m, &cluster).unwrap();
        let a = &plan.allocation;
        assert!(a.is_complete());
        assert_ne!(a.node_of(OperatorId(1)), a.node_of(OperatorId(2)));
    }

    #[test]
    fn rod_beats_connected_chains_plan() {
        // Against plan (c) (chains kept whole: L^n = [[10,0],[0,11]]),
        // ROD must achieve a strictly larger min plane distance.
        let m = model();
        let cluster = Cluster::homogeneous(2, 1.0);
        let ev = PlanEvaluator::new(&m, &cluster);
        let rod = RodPlanner::new().place(&m, &cluster).unwrap();
        let [_, _, plan_c] = crate::examples_paper::example2_plans();
        assert!(ev.min_plane_distance(&rod.allocation) > ev.min_plane_distance(&plan_c) + 1e-9);
    }

    #[test]
    fn single_node_cluster_gets_everything() {
        let m = model();
        let plan = RodPlanner::new()
            .place(&m, &Cluster::homogeneous(1, 1.0))
            .unwrap();
        assert_eq!(plan.allocation.node_counts(), vec![4]);
    }

    #[test]
    fn empty_model_is_an_error() {
        let mut b = GraphBuilder::new();
        b.add_input();
        let g = b.build().unwrap();
        let m = LoadModel::derive(&g).unwrap();
        assert!(matches!(
            RodPlanner::new().place(&m, &Cluster::homogeneous(2, 1.0)),
            Err(PlacementError::EmptyModel)
        ));
    }

    #[test]
    fn invalid_cluster_is_an_error() {
        let m = model();
        assert!(RodPlanner::new()
            .place(&m, &Cluster::heterogeneous(vec![]))
            .is_err());
    }

    #[test]
    fn heterogeneous_capacity_respected() {
        // One node with 10x capacity should carry (nearly) all load.
        let mut b = GraphBuilder::new();
        let i = b.add_input();
        for j in 0..8 {
            b.add_operator(format!("f{j}"), OperatorKind::filter(1.0, 1.0), &[i])
                .unwrap();
        }
        let g = b.build().unwrap();
        let m = LoadModel::derive(&g).unwrap();
        let cluster = Cluster::heterogeneous(vec![9.0, 1.0]);
        let plan = RodPlanner::new().place(&m, &cluster).unwrap();
        let ev = PlanEvaluator::new(&m, &cluster);
        let ln = ev.node_load_matrix(&plan.allocation);
        // Ideal split is (7.2, 0.8); greedy integral placement should land
        // within one operator of it.
        assert!(ln[(0, 0)] >= 6.0, "big node got {}", ln[(0, 0)]);
    }

    #[test]
    fn all_class_one_policies_produce_complete_plans() {
        let m = model();
        let cluster = Cluster::homogeneous(3, 1.0);
        for policy in [
            ClassOnePolicy::MaxPlaneDistance,
            ClassOnePolicy::FirstFit,
            ClassOnePolicy::Random { seed: 7 },
            ClassOnePolicy::MinCommunication,
        ] {
            let plan = RodPlanner::with_options(RodOptions {
                class_one_policy: policy,
                ..RodOptions::default()
            })
            .place(&m, &cluster)
            .unwrap();
            assert!(plan.allocation.is_complete(), "policy {policy:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let m = model();
        let cluster = Cluster::homogeneous(4, 1.0);
        let a = RodPlanner::new().place(&m, &cluster).unwrap();
        let b = RodPlanner::new().place(&m, &cluster).unwrap();
        assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn step_classes_recorded() {
        let m = model();
        let plan = RodPlanner::new()
            .place(&m, &Cluster::homogeneous(2, 1.0))
            .unwrap();
        assert_eq!(plan.step_classes.len(), 4);
        // With only 2 nodes, o2 alone carries 9/11 of stream 2 — more
        // than the 1/2 node share — so every step here is Class II.
        assert_eq!(plan.step_classes[0], StepClass::ClassTwo);
        assert_eq!(plan.class_one_fraction(), 0.0);

        // Spread the same graph over 8 nodes and Class I steps appear:
        // each node's fair share shrinks but so does nothing about the
        // operators — wait, shares *tighten*; instead check a wide graph
        // where each operator is small relative to a node's share.
        let mut b = GraphBuilder::new();
        let i = b.add_input();
        for j in 0..12 {
            b.add_operator(format!("f{j}"), OperatorKind::filter(1.0, 1.0), &[i])
                .unwrap();
        }
        let wide = LoadModel::derive(&b.build().unwrap()).unwrap();
        let plan = RodPlanner::new()
            .place(&wide, &Cluster::homogeneous(3, 1.0))
            .unwrap();
        // 12 equal operators on 3 nodes: the first 3 per node stay under
        // the 1/3 share; most steps are Class I.
        assert!(plan.class_one_fraction() > 0.5, "{:?}", plan.step_classes);
    }

    #[test]
    fn extend_keeps_placed_operators_fixed() {
        let m = model();
        let cluster = Cluster::homogeneous(2, 1.0);
        // Pre-place o2 (the heavy one) on node 1 and let extend finish.
        let mut partial = Allocation::new(4, 2);
        partial.assign(OperatorId(2), NodeId(1));
        let plan = RodPlanner::new().extend(&m, &cluster, &partial).unwrap();
        assert!(plan.allocation.is_complete());
        assert_eq!(plan.allocation.node_of(OperatorId(2)), Some(NodeId(1)));
        assert_eq!(plan.order.len(), 3, "only the unplaced operators");
    }

    #[test]
    fn extend_of_empty_matches_place() {
        let m = model();
        let cluster = Cluster::homogeneous(3, 1.0);
        let fresh = RodPlanner::new().place(&m, &cluster).unwrap();
        let extended = RodPlanner::new()
            .extend(&m, &cluster, &Allocation::new(4, 3))
            .unwrap();
        assert_eq!(fresh.allocation, extended.allocation);
    }

    #[test]
    fn extend_accounts_for_existing_load() {
        // Pre-load node 0 with everything from stream 1; the new stream-2
        // operators must then prefer node 1.
        let mut b = GraphBuilder::new();
        let i0 = b.add_input();
        let i1 = b.add_input();
        for j in 0..3 {
            b.add_operator(format!("a{j}"), OperatorKind::filter(2.0, 1.0), &[i0])
                .unwrap();
        }
        for j in 0..3 {
            b.add_operator(format!("b{j}"), OperatorKind::filter(2.0, 1.0), &[i1])
                .unwrap();
        }
        let m = LoadModel::derive(&b.build().unwrap()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let mut partial = Allocation::new(6, 2);
        for j in 0..3 {
            partial.assign(OperatorId(j), NodeId(0));
        }
        let plan = RodPlanner::new().extend(&m, &cluster, &partial).unwrap();
        // All three stream-1 ops on node 0 → node 0 already carries the
        // whole of stream 1; the b-ops should mostly land on node 1.
        let on_node1 = (3..6)
            .filter(|&j| plan.allocation.node_of(OperatorId(j)) == Some(NodeId(1)))
            .count();
        assert!(
            on_node1 >= 2,
            "only {on_node1} new ops moved off the hot node"
        );
    }

    #[test]
    fn lower_bound_changes_class_two_choice_only() {
        // Lower bounds only alter the MMPD distance, so plans may differ
        // but must stay complete and valid.
        let m = model();
        let cluster = Cluster::homogeneous(2, 1.0);
        let plan = RodPlanner::with_options(RodOptions {
            input_lower_bound: Some(vec![0.02, 0.02]),
            ..RodOptions::default()
        })
        .place(&m, &cluster)
        .unwrap();
        assert!(plan.allocation.is_complete());
    }
}
