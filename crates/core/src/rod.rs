//! The Resilient Operator Distribution algorithm (paper §5, Figure 10).
//!
//! Phase 1 sorts operators by the L2 norm of their load-coefficient
//! vectors, descending, so high-impact operators are placed while the most
//! freedom remains (the usual greedy/bin-packing device).
//!
//! Phase 2 places each operator in turn. For every node the *candidate*
//! weight row — the node's normalised weights if it received the operator —
//! is computed:
//!
//! ```text
//! w_ik = ((l^n_ik + l^o_jk) / l_k) / (C_i / C_T)
//! ```
//!
//! Nodes whose candidate hyperplane still lies entirely above the ideal
//! hyperplane (`w_ik ≤ 1` for all `k`) form **Class I**: assigning there
//! cannot shrink the final feasible set below the ideal bound, and pushes
//! axis intercepts toward the ideal ones (the MMAD heuristic). If Class I
//! is empty the operator goes to the **Class II** node with the largest
//! candidate plane distance `1/‖W_i‖` (the MMPD heuristic) — or, under the
//! §6.1 extension, the largest distance measured from the known
//! lower-bound point.
//!
//! # Candidate pruning
//!
//! Scoring every node for every operator costs O(n) probes per step —
//! prohibitive at n ≈ 1000 nodes and m ≈ 50 000 operators. The default
//! scan therefore skips nodes it can prove irrelevant, using three facts:
//!
//! 1. A node's **current** plane distance upper-bounds every candidate
//!    distance it can produce (weights only grow under assignment; see
//!    [`IncrementalPlanEval::plane_distance`] — the bound holds bitwise in
//!    IEEE-754, not just in exact arithmetic). A node whose bound cannot
//!    beat the incumbent under the `best_by` replacement rule
//!    (`s > best + 1e-15`) is skipped without scoring.
//! 2. A node whose current maximum weight already exceeds `1 + 1e-12` can
//!    never be Class I ([`IncrementalPlanEval::max_weight_of`]), so once
//!    any Class-I node is in hand, such nodes are skipped outright.
//! 3. All **unloaded** nodes of equal relative capacity yield bitwise
//!    identical candidate scores, so one probe is memoised per capacity
//!    class per step.
//!
//! Every skip is justified by an inequality on the exact floating-point
//! values the full scan would have computed, so the pruned scan chooses
//! the *same node* as the exhaustive reference — including the
//! lowest-index tie-break — for every policy. The exhaustive scan is kept
//! behind [`RodPlanner::with_exhaustive_scan`] as the test oracle.

use serde::{Deserialize, Serialize};

use rand::seq::SliceRandom;
use rod_geom::seeded_rng;

use std::time::Instant;

use crate::allocation::Allocation;
use crate::baselines::Planner;
use crate::cluster::Cluster;
use crate::error::PlacementError;
use crate::eval::{CandidateScore, IncrementalPlanEval};
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;
use crate::obs::MetricsRegistry;

/// How to break ties among Class I nodes (paper §5.2: "choosing any node
/// from Class I does not affect the final feasible set size in this step.
/// Therefore, a random node can be selected or we can choose the
/// destination node using some other criteria").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ClassOnePolicy {
    /// Pick the Class I node whose candidate plane distance is largest —
    /// deterministic and locally consistent with the MMPD heuristic. The
    /// default.
    MaxPlaneDistance,
    /// Pick the lowest-numbered Class I node.
    FirstFit,
    /// Pick a Class I node uniformly at random (seeded).
    Random {
        /// RNG seed for the random picks.
        seed: u64,
    },
    /// Prefer the Class I node already hosting the most graph neighbours
    /// of the operator, to reduce inter-node streams (the paper's example
    /// criterion for communication-conscious deployments); plane distance
    /// breaks remaining ties.
    MinCommunication,
}

/// Phase-1 operator ordering (the paper uses descending norm; the other
/// orders exist for the ablation benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperatorOrdering {
    /// Largest load-vector norm first (the paper's choice: "dealing with
    /// such operators late may cause the system to significantly deviate
    /// from the optimal results").
    NormDescending,
    /// Smallest norm first (ablation: the classic greedy mistake).
    NormAscending,
    /// Graph insertion order (ablation: no ordering at all).
    ByIndex,
}

/// Configuration of the ROD planner.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RodOptions {
    /// Class I tie-breaking.
    pub class_one_policy: ClassOnePolicy,
    /// Optional §6.1 lower bound `B` on the *system input* rates. Lower
    /// bounds for introduced variables are derived by propagating `B`
    /// through the graph (all operators are rate-monotone, so propagated
    /// rates are valid lower bounds for the introduced variables too).
    pub input_lower_bound: Option<Vec<f64>>,
    /// Phase-1 ordering (ablation hook; default NormDescending).
    pub ordering: OperatorOrdering,
    /// When false, skip the Class I / Class II distinction and always
    /// pick the node with maximum candidate plane distance — the
    /// pure-MMPD greedy the Class-I rule is layered on (ablation hook).
    pub use_class_one: bool,
}

impl Default for RodOptions {
    fn default() -> Self {
        RodOptions {
            class_one_policy: ClassOnePolicy::MaxPlaneDistance,
            input_lower_bound: None,
            ordering: OperatorOrdering::NormDescending,
            use_class_one: true,
        }
    }
}

/// Which class the chosen node belonged to at one assignment step —
/// diagnostic output useful for ablations and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepClass {
    /// The node's candidate hyperplane stayed above the ideal hyperplane.
    ClassOne,
    /// Every candidate crossed the ideal hyperplane; MMPD picked.
    ClassTwo,
}

/// The result of a ROD run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RodPlan {
    /// The produced placement.
    pub allocation: Allocation,
    /// Operators in the order they were assigned (Phase 1 order).
    pub order: Vec<OperatorId>,
    /// Class used at each step, parallel to `order`.
    pub step_classes: Vec<StepClass>,
    /// Number of `score_candidate` probes Phase 2 actually issued. The
    /// exhaustive scan always issues `m·n`; the pruned scan typically far
    /// fewer.
    pub candidates_scored: u64,
}

impl RodPlan {
    /// Fraction of assignment steps that found a Class I node.
    pub fn class_one_fraction(&self) -> f64 {
        if self.step_classes.is_empty() {
            return 0.0;
        }
        self.step_classes
            .iter()
            .filter(|c| **c == StepClass::ClassOne)
            .count() as f64
            / self.step_classes.len() as f64
    }
}

/// The ROD planner.
#[derive(Clone, Debug, Default)]
pub struct RodPlanner {
    options: RodOptions,
    /// Score every node at every step instead of pruning — the reference
    /// oracle the pruned scan is tested against.
    exhaustive_scan: bool,
}

impl RodPlanner {
    /// Planner with default options.
    pub fn new() -> Self {
        RodPlanner::default()
    }

    /// Planner with explicit options.
    pub fn with_options(options: RodOptions) -> Self {
        RodPlanner {
            options,
            exhaustive_scan: false,
        }
    }

    /// Switches between the pruned Phase-2 scan (default) and the
    /// exhaustive all-nodes reference scan. Both choose identical nodes;
    /// the exhaustive scan exists as the oracle for equivalence tests and
    /// ablation timings.
    pub fn with_exhaustive_scan(mut self, exhaustive: bool) -> Self {
        self.exhaustive_scan = exhaustive;
        self
    }

    /// Runs ROD and returns the plan with diagnostics.
    pub fn place(&self, model: &LoadModel, cluster: &Cluster) -> Result<RodPlan, PlacementError> {
        self.place_impl(model, cluster, None)
    }

    /// Like [`place`](RodPlanner::place), additionally recording per-phase
    /// wall-clock timings (`rod.phase1_seconds`, `rod.phase2_seconds`) and
    /// step-class counters into `metrics`.
    pub fn place_with_metrics(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: &MetricsRegistry,
    ) -> Result<RodPlan, PlacementError> {
        self.place_impl(model, cluster, Some(metrics))
    }

    fn place_impl(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<RodPlan, PlacementError> {
        cluster.validate()?;
        let m = model.num_operators();
        if m == 0 {
            return Err(PlacementError::EmptyModel);
        }
        let n = cluster.num_nodes();

        // The incremental evaluation layer owns the node-load and weight
        // state; the §6.1 lower bound (when set) is folded into every
        // candidate plane distance it reports.
        let mut eval = IncrementalPlanEval::new(model, cluster);
        if let Some(b) = &self.options.input_lower_bound {
            eval.set_input_lower_bound(b);
        }

        // ---- Phase 1: order the operators. ----
        let phase1_start = Instant::now();
        let mut order: Vec<OperatorId> = (0..m).map(OperatorId).collect();
        match self.options.ordering {
            OperatorOrdering::NormDescending => order.sort_by(|&a, &b| {
                model
                    .operator_norm(b)
                    .total_cmp(&model.operator_norm(a))
                    .then(a.cmp(&b))
            }),
            OperatorOrdering::NormAscending => order.sort_by(|&a, &b| {
                model
                    .operator_norm(a)
                    .total_cmp(&model.operator_norm(b))
                    .then(a.cmp(&b))
            }),
            OperatorOrdering::ByIndex => {}
        }
        if let Some(metrics) = metrics {
            metrics.observe("rod.phase1_seconds", phase1_start.elapsed().as_secs_f64());
            metrics.set_gauge("rod.operators", m as f64);
            metrics.set_gauge("rod.nodes", n as f64);
        }

        // ---- Phase 2: greedy assignment. ----
        let phase2_start = Instant::now();
        let mut selector = Phase2Selector::new(&self.options, model, self.exhaustive_scan);
        let mut step_classes = Vec::with_capacity(m);
        for &op in &order {
            let (dest, class) = selector.select(&eval, op);
            eval.assign(op, NodeId(dest));
            step_classes.push(class);
        }
        let candidates_scored = selector.candidates_scored;
        if let Some(metrics) = metrics {
            metrics.observe("rod.phase2_seconds", phase2_start.elapsed().as_secs_f64());
            metrics.add("rod.candidates_scored", candidates_scored);
            metrics.add(
                "rod.steps_class_one",
                step_classes
                    .iter()
                    .filter(|c| **c == StepClass::ClassOne)
                    .count() as u64,
            );
            metrics.add(
                "rod.steps_class_two",
                step_classes
                    .iter()
                    .filter(|c| **c == StepClass::ClassTwo)
                    .count() as u64,
            );
        }

        Ok(RodPlan {
            allocation: eval.into_allocation(),
            order,
            step_classes,
            candidates_scored,
        })
    }
}

/// Phase-2 destination selection shared by [`RodPlanner::place`] and
/// [`RodPlanner::extend`] — either the exhaustive all-nodes scan or the
/// pruned scan described in the module docs. Both are guaranteed to pick
/// the same node at every step.
pub(crate) struct Phase2Selector<'o> {
    options: &'o RodOptions,
    exhaustive: bool,
    /// Graph adjacency, built only for the MinCommunication policy.
    adjacency: Vec<Vec<OperatorId>>,
    /// Seeded RNG, built only for the Random policy.
    rng: Option<rod_geom::rng::Rng>,
    /// Per-step memo of unloaded-node candidate scores keyed by the
    /// node's relative-capacity bits (cleared at each step).
    memo: Vec<(u64, CandidateScore)>,
    /// Class-I members (node, score) collected when the policy needs the
    /// full set (Random, MinCommunication); reused scratch.
    members: Vec<(usize, CandidateScore)>,
    /// Total `score_candidate` probes issued.
    pub(crate) candidates_scored: u64,
}

impl<'o> Phase2Selector<'o> {
    pub(crate) fn new(options: &'o RodOptions, model: &LoadModel, exhaustive: bool) -> Self {
        let adjacency = match options.class_one_policy {
            ClassOnePolicy::MinCommunication => model.graph().adjacency(),
            _ => Vec::new(),
        };
        let rng = match options.class_one_policy {
            ClassOnePolicy::Random { seed } => Some(seeded_rng(seed)),
            _ => None,
        };
        Phase2Selector {
            options,
            exhaustive,
            adjacency,
            rng,
            memo: Vec::new(),
            members: Vec::new(),
            candidates_scored: 0,
        }
    }

    /// Picks the destination node for `op` under the current state.
    pub(crate) fn select(
        &mut self,
        eval: &IncrementalPlanEval<'_>,
        op: OperatorId,
    ) -> (usize, StepClass) {
        if self.exhaustive {
            self.select_exhaustive(eval, op)
        } else {
            self.select_pruned(eval, op)
        }
    }

    /// The original all-nodes scan, kept verbatim as the reference oracle.
    fn select_exhaustive(
        &mut self,
        eval: &IncrementalPlanEval<'_>,
        op: OperatorId,
    ) -> (usize, StepClass) {
        let n = eval.num_nodes();
        let mut scores: Vec<CandidateScore> = Vec::with_capacity(n);
        let mut class_one: Vec<usize> = Vec::new();
        for i in 0..n {
            let score = eval.score_candidate(op, NodeId(i));
            self.candidates_scored += 1;
            if score.class_one {
                class_one.push(i);
            }
            scores.push(score);
        }
        let candidate_distance = |i: usize| scores[i].plane_distance;

        if self.options.use_class_one && !class_one.is_empty() {
            let dest = match self.options.class_one_policy {
                ClassOnePolicy::FirstFit => class_one[0],
                ClassOnePolicy::Random { .. } => *class_one
                    .choose(self.rng.as_mut().expect("rng for Random policy"))
                    .expect("non-empty class one"),
                ClassOnePolicy::MaxPlaneDistance => best_by(&class_one, candidate_distance),
                ClassOnePolicy::MinCommunication => {
                    let adjacency = &self.adjacency;
                    let neighbours = |i: usize| -> usize {
                        adjacency[op.index()]
                            .iter()
                            .filter(|nb| eval.allocation().node_of(**nb) == Some(NodeId(i)))
                            .count()
                    };
                    // Most already-placed neighbours first; plane
                    // distance breaks ties.
                    let max_nb = class_one.iter().map(|&i| neighbours(i)).max().unwrap_or(0);
                    let tied: Vec<usize> = class_one
                        .iter()
                        .copied()
                        .filter(|&i| neighbours(i) == max_nb)
                        .collect();
                    best_by(&tied, candidate_distance)
                }
            };
            (dest, StepClass::ClassOne)
        } else {
            let all: Vec<usize> = (0..n).collect();
            (best_by(&all, candidate_distance), StepClass::ClassTwo)
        }
    }

    /// Scores `op` on node `i`, memoising unloaded nodes by their
    /// relative-capacity bits: an unloaded node's candidate score is a
    /// pure function of `(op, C_i/C_T)`, so the memoised value is bitwise
    /// the score a fresh probe would return.
    fn probe(
        &mut self,
        eval: &IncrementalPlanEval<'_>,
        op: OperatorId,
        i: usize,
    ) -> CandidateScore {
        if eval.node_is_unloaded(NodeId(i)) {
            let key = eval.relative_capacity_of(NodeId(i)).to_bits();
            if let Some(&(_, s)) = self.memo.iter().find(|(k, _)| *k == key) {
                return s;
            }
            let s = eval.score_candidate(op, NodeId(i));
            self.candidates_scored += 1;
            self.memo.push((key, s));
            return s;
        }
        self.candidates_scored += 1;
        eval.score_candidate(op, NodeId(i))
    }

    /// The pruned scan. Invariants replicated from the exhaustive oracle:
    ///
    /// * `best_by` visits candidates in ascending node order, seeds the
    ///   incumbent with the first member unconditionally, and replaces
    ///   only when `s > best + 1e-15`. The scan below visits nodes
    ///   ascending and applies the same seeding and replacement, so any
    ///   node skipped under `bound ≤ best + 1e-15` provably could not
    ///   have replaced the incumbent (its true score is ≤ the bound).
    /// * Class-I membership of a node with `max_weight_of > 1 + 1e-12` is
    ///   impossible, so such nodes only matter for the Class-II fallback
    ///   track — and not at all once a Class-I node exists.
    /// * The Random / MinCommunication policies inspect the *full*
    ///   Class-I set, so every possibly-Class-I node is probed for them;
    ///   definite-Class-II nodes are still skippable.
    fn select_pruned(
        &mut self,
        eval: &IncrementalPlanEval<'_>,
        op: OperatorId,
    ) -> (usize, StepClass) {
        let n = eval.num_nodes();
        let needs_full_set = self.options.use_class_one
            && matches!(
                self.options.class_one_policy,
                ClassOnePolicy::Random { .. } | ClassOnePolicy::MinCommunication
            );
        self.memo.clear();
        self.members.clear();
        // Fallback (Class II) incumbent: (node, plane distance).
        let mut best_all: Option<(usize, f64)> = None;
        // Class-I incumbent for single-winner policies.
        let mut best_c1: Option<(usize, f64)> = None;

        for i in 0..n {
            let any_c1 = best_c1.is_some() || !self.members.is_empty();
            let possibly_c1 =
                self.options.use_class_one && eval.max_weight_of(NodeId(i)) <= 1.0 + 1e-12;
            if !possibly_c1 {
                // Definitely Class II: irrelevant once Class I is
                // non-empty, otherwise only feeds the fallback track.
                if any_c1 {
                    continue;
                }
                if let Some((_, bs)) = best_all {
                    if eval.plane_distance(NodeId(i)) <= bs + 1e-15 {
                        continue;
                    }
                }
                let s = self.probe(eval, op, i);
                match best_all {
                    None => best_all = Some((i, s.plane_distance)),
                    Some((_, bs)) if s.plane_distance > bs + 1e-15 => {
                        best_all = Some((i, s.plane_distance))
                    }
                    _ => {}
                }
                continue;
            }
            // Possibly Class I. For single-winner policies an incumbent
            // Class-I node lets us skip by bound; full-set policies must
            // resolve membership.
            if any_c1 && !needs_full_set {
                let (_, bs) = best_c1.expect("any_c1 implies incumbent for single-winner");
                if eval.plane_distance(NodeId(i)) <= bs + 1e-15 {
                    continue;
                }
            }
            let s = self.probe(eval, op, i);
            if s.class_one {
                if needs_full_set {
                    self.members.push((i, s));
                } else if matches!(self.options.class_one_policy, ClassOnePolicy::FirstFit) {
                    return (i, StepClass::ClassOne);
                } else {
                    match best_c1 {
                        None => best_c1 = Some((i, s.plane_distance)),
                        Some((_, bs)) if s.plane_distance > bs + 1e-15 => {
                            best_c1 = Some((i, s.plane_distance))
                        }
                        _ => {}
                    }
                }
            } else if !any_c1 {
                match best_all {
                    None => best_all = Some((i, s.plane_distance)),
                    Some((_, bs)) if s.plane_distance > bs + 1e-15 => {
                        best_all = Some((i, s.plane_distance))
                    }
                    _ => {}
                }
            }
        }

        if let Some((dest, _)) = best_c1 {
            return (dest, StepClass::ClassOne);
        }
        if !self.members.is_empty() {
            let dest = match self.options.class_one_policy {
                ClassOnePolicy::Random { .. } => {
                    self.members
                        .choose(self.rng.as_mut().expect("rng for Random policy"))
                        .expect("non-empty class one")
                        .0
                }
                ClassOnePolicy::MinCommunication => {
                    let adjacency = &self.adjacency;
                    let neighbours = |i: usize| -> usize {
                        adjacency[op.index()]
                            .iter()
                            .filter(|nb| eval.allocation().node_of(**nb) == Some(NodeId(i)))
                            .count()
                    };
                    let max_nb = self
                        .members
                        .iter()
                        .map(|&(i, _)| neighbours(i))
                        .max()
                        .unwrap_or(0);
                    // `members` is ascending by construction, so seeding
                    // with the first tied entry and applying the strict
                    // `+1e-15` replacement reproduces `best_by(tied)`.
                    let mut best: Option<(usize, f64)> = None;
                    for &(i, s) in &self.members {
                        if neighbours(i) != max_nb {
                            continue;
                        }
                        match best {
                            None => best = Some((i, s.plane_distance)),
                            Some((_, bs)) if s.plane_distance > bs + 1e-15 => {
                                best = Some((i, s.plane_distance))
                            }
                            _ => {}
                        }
                    }
                    best.expect("at least one tied member").0
                }
                _ => unreachable!("full-set collection is only for Random/MinCommunication"),
            };
            return (dest, StepClass::ClassOne);
        }
        let (dest, _) = best_all.expect("node 0 is always probed when Class I stays empty");
        (dest, StepClass::ClassTwo)
    }
}

impl RodPlanner {
    /// Extends an existing (possibly partial) allocation: operators
    /// already placed stay where they are — stream processing systems
    /// add continuous queries over time, and moving live operators is
    /// exactly what ROD exists to avoid — while the unplaced remainder
    /// is assigned by the usual Phase 1 + Phase 2 greedy, starting from
    /// the node load the fixed operators already impose.
    ///
    /// `model` must describe the *whole* graph (old + new operators);
    /// `existing.node_of(op)` is `None` exactly for the operators to
    /// place. With an entirely empty `existing` this is identical to
    /// [`RodPlanner::place`].
    pub fn extend(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        existing: &Allocation,
    ) -> Result<RodPlan, PlacementError> {
        cluster.validate()?;
        assert_eq!(
            existing.num_operators(),
            model.num_operators(),
            "existing allocation must cover the full model"
        );
        assert_eq!(existing.num_nodes(), cluster.num_nodes());
        let m = model.num_operators();
        if m == 0 {
            return Err(PlacementError::EmptyModel);
        }

        // Start from the load the fixed operators impose.
        let mut eval = IncrementalPlanEval::from_allocation(model, cluster, existing);
        let mut pending: Vec<OperatorId> = (0..m)
            .map(OperatorId)
            .filter(|&op| existing.node_of(op).is_none())
            .collect();
        pending.sort_by(|&a, &b| {
            model
                .operator_norm(b)
                .total_cmp(&model.operator_norm(a))
                .then(a.cmp(&b))
        });

        // The historical extend behaviour: MaxPlaneDistance with the
        // Class-I rule, regardless of the placement-time policy options.
        let extend_options = RodOptions::default();
        let mut selector = Phase2Selector::new(&extend_options, model, self.exhaustive_scan);
        let mut step_classes = Vec::with_capacity(pending.len());
        for &op in &pending {
            let (dest, class) = selector.select(&eval, op);
            eval.assign(op, NodeId(dest));
            step_classes.push(class);
        }

        Ok(RodPlan {
            allocation: eval.into_allocation(),
            order: pending,
            step_classes,
            candidates_scored: selector.candidates_scored,
        })
    }
}

impl Planner for RodPlanner {
    fn name(&self) -> &'static str {
        "ROD"
    }

    fn plan(&self, model: &LoadModel, cluster: &Cluster) -> Result<Allocation, PlacementError> {
        self.place(model, cluster).map(|p| p.allocation)
    }

    fn plan_with_metrics(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: &MetricsRegistry,
    ) -> Result<Allocation, PlacementError> {
        self.place_with_metrics(model, cluster, metrics)
            .map(|p| p.allocation)
    }
}

/// Index in `candidates` maximising `score`, breaking ties by the lowest
/// index for determinism.
fn best_by(candidates: &[usize], score: impl Fn(usize) -> f64) -> usize {
    assert!(!candidates.is_empty());
    let mut best = candidates[0];
    let mut best_score = score(best);
    for &c in &candidates[1..] {
        let s = score(c);
        if s > best_score + 1e-15 {
            best = c;
            best_score = s;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::PlanEvaluator;
    use crate::examples_paper::figure4_graph;
    use crate::graph::GraphBuilder;
    use crate::operator::OperatorKind;

    fn model() -> LoadModel {
        LoadModel::derive(&figure4_graph()).unwrap()
    }

    #[test]
    fn phase1_orders_by_norm_descending() {
        let m = model();
        let plan = RodPlanner::new()
            .place(&m, &Cluster::homogeneous(2, 1.0))
            .unwrap();
        // Norms: o0=4, o1=6, o2=9, o3=2 → order o2, o1, o0, o3.
        assert_eq!(
            plan.order,
            vec![OperatorId(2), OperatorId(1), OperatorId(0), OperatorId(3)]
        );
    }

    #[test]
    fn rod_separates_streams_on_figure4() {
        // The best two-node plan for Example 2 must NOT put both heavy
        // operators (o2: 9r2, o1: 6r1) on the same node.
        let m = model();
        let cluster = Cluster::homogeneous(2, 1.0);
        let plan = RodPlanner::new().place(&m, &cluster).unwrap();
        let a = &plan.allocation;
        assert!(a.is_complete());
        assert_ne!(a.node_of(OperatorId(1)), a.node_of(OperatorId(2)));
    }

    #[test]
    fn rod_beats_connected_chains_plan() {
        // Against plan (c) (chains kept whole: L^n = [[10,0],[0,11]]),
        // ROD must achieve a strictly larger min plane distance.
        let m = model();
        let cluster = Cluster::homogeneous(2, 1.0);
        let ev = PlanEvaluator::new(&m, &cluster);
        let rod = RodPlanner::new().place(&m, &cluster).unwrap();
        let [_, _, plan_c] = crate::examples_paper::example2_plans();
        assert!(ev.min_plane_distance(&rod.allocation) > ev.min_plane_distance(&plan_c) + 1e-9);
    }

    #[test]
    fn single_node_cluster_gets_everything() {
        let m = model();
        let plan = RodPlanner::new()
            .place(&m, &Cluster::homogeneous(1, 1.0))
            .unwrap();
        assert_eq!(plan.allocation.node_counts(), vec![4]);
    }

    #[test]
    fn empty_model_is_an_error() {
        let mut b = GraphBuilder::new();
        b.add_input();
        let g = b.build().unwrap();
        let m = LoadModel::derive(&g).unwrap();
        assert!(matches!(
            RodPlanner::new().place(&m, &Cluster::homogeneous(2, 1.0)),
            Err(PlacementError::EmptyModel)
        ));
    }

    #[test]
    fn invalid_cluster_is_an_error() {
        let m = model();
        assert!(RodPlanner::new()
            .place(&m, &Cluster::heterogeneous(vec![]))
            .is_err());
    }

    #[test]
    fn heterogeneous_capacity_respected() {
        // One node with 10x capacity should carry (nearly) all load.
        let mut b = GraphBuilder::new();
        let i = b.add_input();
        for j in 0..8 {
            b.add_operator(format!("f{j}"), OperatorKind::filter(1.0, 1.0), &[i])
                .unwrap();
        }
        let g = b.build().unwrap();
        let m = LoadModel::derive(&g).unwrap();
        let cluster = Cluster::heterogeneous(vec![9.0, 1.0]);
        let plan = RodPlanner::new().place(&m, &cluster).unwrap();
        let ev = PlanEvaluator::new(&m, &cluster);
        let ln = ev.node_load_matrix(&plan.allocation);
        // Ideal split is (7.2, 0.8); greedy integral placement should land
        // within one operator of it.
        assert!(ln[(0, 0)] >= 6.0, "big node got {}", ln[(0, 0)]);
    }

    #[test]
    fn all_class_one_policies_produce_complete_plans() {
        let m = model();
        let cluster = Cluster::homogeneous(3, 1.0);
        for policy in [
            ClassOnePolicy::MaxPlaneDistance,
            ClassOnePolicy::FirstFit,
            ClassOnePolicy::Random { seed: 7 },
            ClassOnePolicy::MinCommunication,
        ] {
            let plan = RodPlanner::with_options(RodOptions {
                class_one_policy: policy,
                ..RodOptions::default()
            })
            .place(&m, &cluster)
            .unwrap();
            assert!(plan.allocation.is_complete(), "policy {policy:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let m = model();
        let cluster = Cluster::homogeneous(4, 1.0);
        let a = RodPlanner::new().place(&m, &cluster).unwrap();
        let b = RodPlanner::new().place(&m, &cluster).unwrap();
        assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn step_classes_recorded() {
        let m = model();
        let plan = RodPlanner::new()
            .place(&m, &Cluster::homogeneous(2, 1.0))
            .unwrap();
        assert_eq!(plan.step_classes.len(), 4);
        // With only 2 nodes, o2 alone carries 9/11 of stream 2 — more
        // than the 1/2 node share — so every step here is Class II.
        assert_eq!(plan.step_classes[0], StepClass::ClassTwo);
        assert_eq!(plan.class_one_fraction(), 0.0);

        // Spread the same graph over 8 nodes and Class I steps appear:
        // each node's fair share shrinks but so does nothing about the
        // operators — wait, shares *tighten*; instead check a wide graph
        // where each operator is small relative to a node's share.
        let mut b = GraphBuilder::new();
        let i = b.add_input();
        for j in 0..12 {
            b.add_operator(format!("f{j}"), OperatorKind::filter(1.0, 1.0), &[i])
                .unwrap();
        }
        let wide = LoadModel::derive(&b.build().unwrap()).unwrap();
        let plan = RodPlanner::new()
            .place(&wide, &Cluster::homogeneous(3, 1.0))
            .unwrap();
        // 12 equal operators on 3 nodes: the first 3 per node stay under
        // the 1/3 share; most steps are Class I.
        assert!(plan.class_one_fraction() > 0.5, "{:?}", plan.step_classes);
    }

    #[test]
    fn extend_keeps_placed_operators_fixed() {
        let m = model();
        let cluster = Cluster::homogeneous(2, 1.0);
        // Pre-place o2 (the heavy one) on node 1 and let extend finish.
        let mut partial = Allocation::new(4, 2);
        partial.assign(OperatorId(2), NodeId(1));
        let plan = RodPlanner::new().extend(&m, &cluster, &partial).unwrap();
        assert!(plan.allocation.is_complete());
        assert_eq!(plan.allocation.node_of(OperatorId(2)), Some(NodeId(1)));
        assert_eq!(plan.order.len(), 3, "only the unplaced operators");
    }

    #[test]
    fn extend_of_empty_matches_place() {
        let m = model();
        let cluster = Cluster::homogeneous(3, 1.0);
        let fresh = RodPlanner::new().place(&m, &cluster).unwrap();
        let extended = RodPlanner::new()
            .extend(&m, &cluster, &Allocation::new(4, 3))
            .unwrap();
        assert_eq!(fresh.allocation, extended.allocation);
    }

    #[test]
    fn extend_accounts_for_existing_load() {
        // Pre-load node 0 with everything from stream 1; the new stream-2
        // operators must then prefer node 1.
        let mut b = GraphBuilder::new();
        let i0 = b.add_input();
        let i1 = b.add_input();
        for j in 0..3 {
            b.add_operator(format!("a{j}"), OperatorKind::filter(2.0, 1.0), &[i0])
                .unwrap();
        }
        for j in 0..3 {
            b.add_operator(format!("b{j}"), OperatorKind::filter(2.0, 1.0), &[i1])
                .unwrap();
        }
        let m = LoadModel::derive(&b.build().unwrap()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let mut partial = Allocation::new(6, 2);
        for j in 0..3 {
            partial.assign(OperatorId(j), NodeId(0));
        }
        let plan = RodPlanner::new().extend(&m, &cluster, &partial).unwrap();
        // All three stream-1 ops on node 0 → node 0 already carries the
        // whole of stream 1; the b-ops should mostly land on node 1.
        let on_node1 = (3..6)
            .filter(|&j| plan.allocation.node_of(OperatorId(j)) == Some(NodeId(1)))
            .count();
        assert!(
            on_node1 >= 2,
            "only {on_node1} new ops moved off the hot node"
        );
    }

    /// Builds a moderately irregular multi-stream graph for the
    /// pruned-vs-exhaustive comparisons: several input streams with
    /// chains of differing depth and cost, so Phase 2 sees a mix of
    /// Class I and Class II steps, loaded and unloaded nodes.
    fn irregular_model(streams: usize, depth: usize) -> LoadModel {
        let mut b = GraphBuilder::new();
        for s in 0..streams {
            let i = b.add_input();
            let mut up = i;
            for l in 0..(1 + (s + depth) % depth.max(1)) {
                let cost = 1.0 + ((s * 7 + l * 3) % 5) as f64;
                let sel = 0.5 + 0.1 * ((s + l) % 5) as f64;
                up = b
                    .add_operator(format!("s{s}l{l}"), OperatorKind::filter(cost, sel), &[up])
                    .unwrap()
                    .1;
            }
        }
        LoadModel::derive(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn pruned_scan_matches_exhaustive_for_every_policy() {
        let policies = [
            ClassOnePolicy::MaxPlaneDistance,
            ClassOnePolicy::FirstFit,
            ClassOnePolicy::Random { seed: 17 },
            ClassOnePolicy::MinCommunication,
        ];
        let models = [model(), irregular_model(6, 4), irregular_model(3, 2)];
        let clusters = [
            Cluster::homogeneous(2, 1.0),
            Cluster::homogeneous(5, 1.0),
            Cluster::heterogeneous(vec![3.0, 1.0, 1.0, 0.5]),
        ];
        for m in &models {
            for cluster in &clusters {
                for policy in policies {
                    for use_class_one in [true, false] {
                        for bound in [None, Some(vec![0.05; m.num_inputs()])] {
                            let options = RodOptions {
                                class_one_policy: policy,
                                input_lower_bound: bound,
                                use_class_one,
                                ..RodOptions::default()
                            };
                            let pruned = RodPlanner::with_options(options.clone())
                                .place(m, cluster)
                                .unwrap();
                            let full = RodPlanner::with_options(options.clone())
                                .with_exhaustive_scan(true)
                                .place(m, cluster)
                                .unwrap();
                            assert_eq!(
                                pruned.allocation,
                                full.allocation,
                                "policy {policy:?} c1 {use_class_one} on {} nodes",
                                cluster.num_nodes()
                            );
                            assert_eq!(pruned.step_classes, full.step_classes);
                            assert_eq!(pruned.order, full.order);
                            assert!(pruned.candidates_scored <= full.candidates_scored);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pruned_extend_matches_exhaustive_extend() {
        let m = irregular_model(5, 3);
        let cluster = Cluster::homogeneous(4, 1.0);
        let mut partial = Allocation::new(m.num_operators(), 4);
        for j in (0..m.num_operators()).step_by(3) {
            partial.assign(OperatorId(j), NodeId(j % 4));
        }
        let pruned = RodPlanner::new().extend(&m, &cluster, &partial).unwrap();
        let full = RodPlanner::new()
            .with_exhaustive_scan(true)
            .extend(&m, &cluster, &partial)
            .unwrap();
        assert_eq!(pruned.allocation, full.allocation);
        assert_eq!(pruned.step_classes, full.step_classes);
    }

    #[test]
    fn pruning_and_memoisation_cut_probe_counts() {
        // Wide graph over a homogeneous cluster: unloaded nodes collapse
        // into one memo entry, loaded nodes prune by bound — the probe
        // count must land well below the m·n of the exhaustive scan.
        let m = irregular_model(8, 5);
        let cluster = Cluster::homogeneous(16, 1.0);
        let pruned = RodPlanner::new().place(&m, &cluster).unwrap();
        let full = RodPlanner::new()
            .with_exhaustive_scan(true)
            .place(&m, &cluster)
            .unwrap();
        let full_probes = (m.num_operators() * cluster.num_nodes()) as u64;
        assert_eq!(full.candidates_scored, full_probes);
        assert!(
            pruned.candidates_scored * 2 < full_probes,
            "pruned {} vs full {}",
            pruned.candidates_scored,
            full_probes
        );
        assert_eq!(pruned.allocation, full.allocation);
    }

    #[test]
    fn lower_bound_changes_class_two_choice_only() {
        // Lower bounds only alter the MMPD distance, so plans may differ
        // but must stay complete and valid.
        let m = model();
        let cluster = Cluster::homogeneous(2, 1.0);
        let plan = RodPlanner::with_options(RodOptions {
            input_lower_bound: Some(vec![0.02, 0.02]),
            ..RodOptions::default()
        })
        .place(&m, &cluster)
        .unwrap();
        assert!(plan.allocation.is_complete());
    }
}
