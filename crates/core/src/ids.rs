//! Strongly-typed identifiers.
//!
//! The paper indexes nodes `N_i`, operators `o_j`, system input streams
//! `I_k` and (after linearisation) rate variables `x_v`; we mirror those
//! four index families with newtypes so they can never be confused, plus a
//! [`StreamId`] for arcs of the dataflow graph.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                $name(i)
            }
        }
    };
}

define_id!(
    /// A cluster node `N_i`.
    NodeId,
    "N"
);
define_id!(
    /// A continuous-query operator `o_j` — the minimum allocation unit.
    OperatorId,
    "o"
);
define_id!(
    /// A *system input stream* `I_k` (a source arriving from outside).
    InputId,
    "I"
);
define_id!(
    /// Any stream (arc) of the query graph, whether a system input or an
    /// operator output.
    StreamId,
    "s"
);
define_id!(
    /// A rate variable of the (linearised) load model. The first `d`
    /// variables are the system input rates; the rest are the §6.2
    /// introduced variables (outputs of nonlinear or variable-selectivity
    /// operators).
    VarId,
    "x"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(OperatorId(0).to_string(), "o0");
        assert_eq!(InputId(1).to_string(), "I1");
        assert_eq!(StreamId(7).to_string(), "s7");
        assert_eq!(VarId(2).to_string(), "x2");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(OperatorId(1) < OperatorId(2));
        assert_eq!(NodeId::from(5).index(), 5);
    }
}
