//! The linear load model `L^o` derived from a query graph.
//!
//! This is the planner's view of the system (paper §2.2–2.3): an
//! `m × d'` operator load-coefficient matrix over the `d'` rate variables
//! produced by [`crate::linearize`] (for purely linear graphs,
//! `d' = d` and the variables *are* the system input rates).
//!
//! The matrix is stored **sparse**: each operator touches only the few
//! streams it actually consumes, so its row has a handful of nonzeros out
//! of `d'` columns — at production scale (tens of thousands of operators
//! over hundreds of streams) the dense matrix would be almost entirely
//! zeros. The dense [`LoadModel::lo`] view is materialised lazily for the
//! geometry paths that still want flat rows; every derived quantity
//! (column totals, row norms) is accumulated in the same index-ascending
//! order as the dense code so the bits are identical either way.

use std::sync::OnceLock;

use serde::{DeError, Deserialize, Serialize, Value};

use rod_geom::{Matrix, SparseLoadMatrix, SparseRow, Vector};

use crate::error::GraphError;
use crate::graph::QueryGraph;
use crate::ids::{OperatorId, VarId};
use crate::linearize::{Linearization, VarInfo};

pub use crate::linearize::RateExpr;

/// A query graph together with its derived linear load model.
#[derive(Clone, Debug)]
pub struct LoadModel {
    graph: QueryGraph,
    linearization: Linearization,
    /// `L^o` stored sparse: one row per operator over the rate variables.
    sparse: SparseLoadMatrix,
    /// Column sums `l_k = Σ_j l^o_{jk}` (paper Table 1).
    total_coeffs: Vector,
    /// Per-operator row norms — the Phase-1 ordering keys, precomputed in
    /// the dense accumulation order.
    norms: Vec<f64>,
    /// Dense `L^o`, materialised on first use by [`LoadModel::lo`].
    dense: OnceLock<Matrix>,
}

impl LoadModel {
    /// Derives the load model from a graph (validates it first).
    pub fn derive(graph: &QueryGraph) -> Result<LoadModel, GraphError> {
        graph.validate()?;
        let linearization = Linearization::run(graph);
        let d = linearization.num_vars();
        let rows: Vec<SparseRow> = linearization
            .op_load_exprs
            .iter()
            .map(|expr| expr.to_sparse_row(d))
            .collect();
        let sparse = SparseLoadMatrix::from_rows(d, rows);
        Ok(LoadModel::from_parts(graph.clone(), linearization, sparse))
    }

    /// Assembles a model from already-derived parts, recomputing the
    /// cached totals and norms (used by `derive` and deserialisation).
    fn from_parts(
        graph: QueryGraph,
        linearization: Linearization,
        sparse: SparseLoadMatrix,
    ) -> LoadModel {
        let total_coeffs = Vector::new(sparse.col_sums());
        let norms = sparse.rows().iter().map(SparseRow::norm).collect();
        LoadModel {
            graph,
            linearization,
            sparse,
            total_coeffs,
            norms,
            dense: OnceLock::new(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &QueryGraph {
        &self.graph
    }

    /// The linearisation (variable catalogue and stream expressions).
    pub fn linearization(&self) -> &Linearization {
        &self.linearization
    }

    /// Number of operators `m`.
    pub fn num_operators(&self) -> usize {
        self.sparse.num_rows()
    }

    /// Number of rate variables `d'`.
    pub fn num_vars(&self) -> usize {
        self.sparse.num_cols()
    }

    /// Number of *system* input streams `d` (≤ [`Self::num_vars`]).
    pub fn num_inputs(&self) -> usize {
        self.graph.num_inputs()
    }

    /// The sparse `L^o` matrix — the primary representation.
    pub fn sparse_lo(&self) -> &SparseLoadMatrix {
        &self.sparse
    }

    /// Total stored nonzeros in `L^o` — `Σ_j nnz(L^o_j) ≤ m·d'`.
    pub fn nnz(&self) -> usize {
        self.sparse.nnz()
    }

    /// The full dense `L^o` matrix, materialised from the sparse rows on
    /// first call and cached. Dense-path consumers (sampled feasibility
    /// tables, exact snapshots) keep working unchanged; sparse-aware
    /// callers should prefer [`Self::sparse_lo`] /
    /// [`Self::operator_sparse_row`].
    pub fn lo(&self) -> &Matrix {
        self.dense.get_or_init(|| {
            let m = self.sparse.num_rows();
            let d = self.sparse.num_cols();
            let mut lo = Matrix::zeros(m, d);
            for (j, row) in self.sparse.rows().iter().enumerate() {
                for (k, v) in row.iter() {
                    lo.row_mut(j)[k] = v;
                }
            }
            lo
        })
    }

    /// Load-coefficient row of one operator (dense view; materialises the
    /// dense matrix on first call).
    pub fn operator_row(&self, j: OperatorId) -> &[f64] {
        self.lo().row(j.index())
    }

    /// Sparse load-coefficient row of one operator — O(nnz) iteration
    /// without touching the dense fallback.
    pub fn operator_sparse_row(&self, j: OperatorId) -> &SparseRow {
        self.sparse.row(j.index())
    }

    /// The operator's load-vector L2 norm — the Phase-1 ordering key of
    /// the ROD algorithm.
    pub fn operator_norm(&self, j: OperatorId) -> f64 {
        self.norms[j.index()]
    }

    /// Total load coefficients `l_k` per variable.
    pub fn total_coeffs(&self) -> &Vector {
        &self.total_coeffs
    }

    /// Variables with zero total coefficient load no operator at all;
    /// they are degenerate axes (infinite ideal intercept). True linear
    /// models from non-trivial graphs never have them, but defensive
    /// callers can check.
    pub fn has_degenerate_vars(&self) -> bool {
        self.total_coeffs.as_slice().iter().any(|&l| l <= 0.0)
    }

    /// Concrete values of all `d'` variables at a system-input rate point
    /// (introduced variables take their propagated true rates).
    pub fn variable_point(&self, input_rates: &[f64]) -> Vector {
        Vector::new(self.linearization.variable_point(&self.graph, input_rates))
    }

    /// Total CPU load of the whole query graph at a variable point.
    pub fn total_load(&self, var_point: &Vector) -> f64 {
        self.total_coeffs.dot(var_point)
    }

    /// Which variable, if any, is an operator's introduced output
    /// variable.
    pub fn introduced_var_of(&self, op: OperatorId) -> Option<VarId> {
        self.linearization
            .vars
            .iter()
            .enumerate()
            .find_map(|(i, v)| match v {
                VarInfo::Introduced { operator, .. } if *operator == op => Some(VarId(i)),
                _ => None,
            })
    }
}

// The dense cache is derived state, so (de)serialisation carries the
// sparse representation only; totals and norms are recomputed on load.
impl Serialize for LoadModel {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("graph".to_string(), self.graph.to_value()),
            ("linearization".to_string(), self.linearization.to_value()),
            ("sparse".to_string(), self.sparse.to_value()),
        ])
    }
}

impl Deserialize for LoadModel {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        let graph: QueryGraph = serde::field(pairs, "graph", "LoadModel")?;
        let linearization: Linearization = serde::field(pairs, "linearization", "LoadModel")?;
        let sparse: SparseLoadMatrix = serde::field(pairs, "sparse", "LoadModel")?;
        if sparse.num_rows() != graph.num_operators() {
            return Err(DeError::custom(format!(
                "LoadModel sparse matrix has {} rows for {} operators",
                sparse.num_rows(),
                graph.num_operators()
            )));
        }
        Ok(LoadModel::from_parts(graph, linearization, sparse))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{example3_graph, figure4_graph};

    #[test]
    fn table2_lo_matrix() {
        // Paper Table 2: L^o = [[4,0],[6,0],[0,9],[0,2]].
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        assert_eq!(model.num_operators(), 4);
        assert_eq!(model.num_vars(), 2);
        assert_eq!(model.lo().row(0), &[4.0, 0.0]);
        assert_eq!(model.lo().row(1), &[6.0, 0.0]);
        assert_eq!(model.lo().row(2), &[0.0, 9.0]);
        assert_eq!(model.lo().row(3), &[0.0, 2.0]);
        // l_1 = 10, l_2 = 11 — the ideal hyperplane of Figure 6.
        assert_eq!(model.total_coeffs().as_slice(), &[10.0, 11.0]);
        // The sparse rows hold one entry per operator here.
        assert_eq!(model.nnz(), 4);
        assert_eq!(
            model.operator_sparse_row(OperatorId(2)).terms(),
            &[(1, 9.0)]
        );
    }

    #[test]
    fn operator_norms() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        assert_eq!(model.operator_norm(OperatorId(2)), 9.0);
        assert_eq!(model.operator_norm(OperatorId(0)), 4.0);
    }

    #[test]
    fn dense_view_matches_sparse_rows_bitwise() {
        let model = LoadModel::derive(&example3_graph()).unwrap();
        for j in 0..model.num_operators() {
            let op = OperatorId(j);
            let dense = model.operator_row(op);
            assert_eq!(model.operator_sparse_row(op).to_dense(), dense);
            let dense_norm = model.lo().row_vector(j).norm();
            assert_eq!(
                model.operator_norm(op).to_bits(),
                dense_norm.to_bits(),
                "norm of operator {j}"
            );
        }
        // And the cached totals match a dense column sum bit-for-bit.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(model.total_coeffs().as_slice()),
            bits(model.lo().col_sums().as_slice())
        );
    }

    #[test]
    fn serde_round_trips_through_sparse_form() {
        let model = LoadModel::derive(&example3_graph()).unwrap();
        let back = LoadModel::from_value(&model.to_value()).unwrap();
        assert_eq!(back.num_operators(), model.num_operators());
        assert_eq!(back.sparse_lo(), model.sparse_lo());
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(back.total_coeffs().as_slice()),
            bits(model.total_coeffs().as_slice())
        );
        assert_eq!(bits(&back.norms), bits(&model.norms));
    }

    #[test]
    fn total_load_matches_sum_of_operator_loads() {
        let g = example3_graph();
        let model = LoadModel::derive(&g).unwrap();
        let rates = [3.0, 2.0];
        let x = model.variable_point(&rates);
        let direct: f64 = g.operator_loads(&rates).iter().sum();
        assert!((model.total_load(&x) - direct).abs() < 1e-9 * (1.0 + direct));
    }

    #[test]
    fn no_degenerate_vars_in_examples() {
        assert!(!LoadModel::derive(&figure4_graph())
            .unwrap()
            .has_degenerate_vars());
        assert!(!LoadModel::derive(&example3_graph())
            .unwrap()
            .has_degenerate_vars());
    }

    #[test]
    fn introduced_vars_are_discoverable() {
        let g = example3_graph();
        let model = LoadModel::derive(&g).unwrap();
        let joins: Vec<_> = g
            .operators()
            .iter()
            .filter(|o| matches!(o.kind, crate::operator::OperatorKind::WindowJoin { .. }))
            .collect();
        assert_eq!(joins.len(), 1);
        assert!(model.introduced_var_of(joins[0].id).is_some());
        assert!(model.introduced_var_of(OperatorId(0)).is_some()); // o1 variable-selectivity
    }
}
