//! The linear load model `L^o` derived from a query graph.
//!
//! This is the planner's view of the system (paper §2.2–2.3): an
//! `m × d'` operator load-coefficient matrix over the `d'` rate variables
//! produced by [`crate::linearize`] (for purely linear graphs,
//! `d' = d` and the variables *are* the system input rates).

use serde::{Deserialize, Serialize};

use rod_geom::{Matrix, Vector};

use crate::error::GraphError;
use crate::graph::QueryGraph;
use crate::ids::{OperatorId, VarId};
use crate::linearize::{Linearization, VarInfo};

pub use crate::linearize::RateExpr;

/// A query graph together with its derived linear load model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadModel {
    graph: QueryGraph,
    linearization: Linearization,
    /// `L^o`: one row per operator, one column per rate variable.
    lo: Matrix,
    /// Column sums `l_k = Σ_j l^o_{jk}` (paper Table 1).
    total_coeffs: Vector,
}

impl LoadModel {
    /// Derives the load model from a graph (validates it first).
    pub fn derive(graph: &QueryGraph) -> Result<LoadModel, GraphError> {
        graph.validate()?;
        let linearization = Linearization::run(graph);
        let d = linearization.num_vars();
        let m = graph.num_operators();
        let mut lo = Matrix::zeros(m, d);
        for (j, expr) in linearization.op_load_exprs.iter().enumerate() {
            let row = expr.to_dense(d);
            lo.row_mut(j).copy_from_slice(&row);
        }
        let total_coeffs = lo.col_sums();
        Ok(LoadModel {
            graph: graph.clone(),
            linearization,
            lo,
            total_coeffs,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &QueryGraph {
        &self.graph
    }

    /// The linearisation (variable catalogue and stream expressions).
    pub fn linearization(&self) -> &Linearization {
        &self.linearization
    }

    /// Number of operators `m`.
    pub fn num_operators(&self) -> usize {
        self.lo.rows()
    }

    /// Number of rate variables `d'`.
    pub fn num_vars(&self) -> usize {
        self.lo.cols()
    }

    /// Number of *system* input streams `d` (≤ [`Self::num_vars`]).
    pub fn num_inputs(&self) -> usize {
        self.graph.num_inputs()
    }

    /// The full `L^o` matrix.
    pub fn lo(&self) -> &Matrix {
        &self.lo
    }

    /// Load-coefficient row of one operator.
    pub fn operator_row(&self, j: OperatorId) -> &[f64] {
        self.lo.row(j.index())
    }

    /// The operator's load-vector L2 norm — the Phase-1 ordering key of
    /// the ROD algorithm.
    pub fn operator_norm(&self, j: OperatorId) -> f64 {
        self.lo.row_vector(j.index()).norm()
    }

    /// Total load coefficients `l_k` per variable.
    pub fn total_coeffs(&self) -> &Vector {
        &self.total_coeffs
    }

    /// Variables with zero total coefficient load no operator at all;
    /// they are degenerate axes (infinite ideal intercept). True linear
    /// models from non-trivial graphs never have them, but defensive
    /// callers can check.
    pub fn has_degenerate_vars(&self) -> bool {
        self.total_coeffs.as_slice().iter().any(|&l| l <= 0.0)
    }

    /// Concrete values of all `d'` variables at a system-input rate point
    /// (introduced variables take their propagated true rates).
    pub fn variable_point(&self, input_rates: &[f64]) -> Vector {
        Vector::new(self.linearization.variable_point(&self.graph, input_rates))
    }

    /// Total CPU load of the whole query graph at a variable point.
    pub fn total_load(&self, var_point: &Vector) -> f64 {
        self.total_coeffs.dot(var_point)
    }

    /// Which variable, if any, is an operator's introduced output
    /// variable.
    pub fn introduced_var_of(&self, op: OperatorId) -> Option<VarId> {
        self.linearization
            .vars
            .iter()
            .enumerate()
            .find_map(|(i, v)| match v {
                VarInfo::Introduced { operator, .. } if *operator == op => Some(VarId(i)),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{example3_graph, figure4_graph};

    #[test]
    fn table2_lo_matrix() {
        // Paper Table 2: L^o = [[4,0],[6,0],[0,9],[0,2]].
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        assert_eq!(model.num_operators(), 4);
        assert_eq!(model.num_vars(), 2);
        assert_eq!(model.lo().row(0), &[4.0, 0.0]);
        assert_eq!(model.lo().row(1), &[6.0, 0.0]);
        assert_eq!(model.lo().row(2), &[0.0, 9.0]);
        assert_eq!(model.lo().row(3), &[0.0, 2.0]);
        // l_1 = 10, l_2 = 11 — the ideal hyperplane of Figure 6.
        assert_eq!(model.total_coeffs().as_slice(), &[10.0, 11.0]);
    }

    #[test]
    fn operator_norms() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        assert_eq!(model.operator_norm(OperatorId(2)), 9.0);
        assert_eq!(model.operator_norm(OperatorId(0)), 4.0);
    }

    #[test]
    fn total_load_matches_sum_of_operator_loads() {
        let g = example3_graph();
        let model = LoadModel::derive(&g).unwrap();
        let rates = [3.0, 2.0];
        let x = model.variable_point(&rates);
        let direct: f64 = g.operator_loads(&rates).iter().sum();
        assert!((model.total_load(&x) - direct).abs() < 1e-9 * (1.0 + direct));
    }

    #[test]
    fn no_degenerate_vars_in_examples() {
        assert!(!LoadModel::derive(&figure4_graph())
            .unwrap()
            .has_degenerate_vars());
        assert!(!LoadModel::derive(&example3_graph())
            .unwrap()
            .has_degenerate_vars());
    }

    #[test]
    fn introduced_vars_are_discoverable() {
        let g = example3_graph();
        let model = LoadModel::derive(&g).unwrap();
        let joins: Vec<_> = g
            .operators()
            .iter()
            .filter(|o| matches!(o.kind, crate::operator::OperatorKind::WindowJoin { .. }))
            .collect();
        assert_eq!(joins.len(), 1);
        assert!(model.introduced_var_of(joins[0].id).is_some());
        assert!(model.introduced_var_of(OperatorId(0)).is_some()); // o1 variable-selectivity
    }
}
