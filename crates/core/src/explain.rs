//! Human-readable plan explanations.
//!
//! Renders a placement the way an operator of the system would want to
//! read it: which operators sit where, each node's hyperplane and
//! distances, which node and stream bind the feasible set, and how far
//! the plan sits from Theorem 1's ideal. Used by `rodctl explain` and
//! handy in tests and examples.

use std::fmt::Write as _;

use crate::allocation::{Allocation, PlanEvaluator};
use crate::ids::NodeId;

/// Renders a multi-line explanation of `alloc` under `ev`.
pub fn explain_plan(ev: &PlanEvaluator<'_>, alloc: &Allocation) -> String {
    let model = ev.model();
    let cluster = ev.cluster();
    let graph = model.graph();
    let w = ev.weight_matrix(alloc);
    let d = model.num_vars();
    let mut out = String::new();

    let _ = writeln!(
        out,
        "placement of {} operators over {} nodes ({} rate variables)",
        model.num_operators(),
        cluster.num_nodes(),
        d
    );

    // Per-node section.
    let mut binding_node = NodeId(0);
    let mut binding_distance = f64::INFINITY;
    for node in cluster.nodes() {
        let ops = alloc.operators_on(node);
        let names: Vec<&str> = ops
            .iter()
            .map(|&op| graph.operator(op).name.as_str())
            .collect();
        let distance = w.plane_distance(node);
        if distance < binding_distance {
            binding_distance = distance;
            binding_node = node;
        }
        let weights: Vec<String> = (0..d)
            .map(|k| format!("{:.3}", w.matrix()[(node.index(), k)]))
            .collect();
        let _ = writeln!(
            out,
            "  {node} (capacity {:.2}): {} operators {:?}",
            cluster.capacity(node),
            ops.len(),
            names
        );
        let _ = writeln!(
            out,
            "      weights [{}]  plane distance {:.4}",
            weights.join(", "),
            distance
        );
    }

    // Binding analysis.
    let _ = writeln!(
        out,
        "binding node: {binding_node} (min plane distance {binding_distance:.4})"
    );
    let axis = w.min_axis_distances();
    let (worst_axis, worst_val) = axis
        .as_slice()
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("at least one axis");
    let _ = writeln!(
        out,
        "tightest stream: x{worst_axis} (axis distance {worst_val:.4}; 1.0 would be ideal)"
    );
    let ideal_note = if w.max_weight() <= 1.0 + 1e-9 {
        "every weight <= 1: the plan achieves the ideal hyperplane bound"
    } else {
        "some weight exceeds 1: the feasible set is strictly inside the ideal simplex"
    };
    let _ = writeln!(out, "{ideal_note}");
    let _ = writeln!(
        out,
        "inter-node arcs: {} of {}",
        ev.internode_arcs(alloc),
        graph.operator_arcs().len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::examples_paper::{example2_plans, figure4_graph};
    use crate::load_model::LoadModel;

    #[test]
    fn explanation_mentions_every_node_and_operator() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let ev = PlanEvaluator::new(&model, &cluster);
        let [a, _, _] = example2_plans();
        let text = explain_plan(&ev, &a);
        for needle in [
            "N0",
            "N1",
            "o1",
            "o2",
            "o3",
            "o4",
            "binding node",
            "tightest stream",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }

    #[test]
    fn binding_node_is_the_min_distance_one() {
        // Plan (a): N1 (index 1) carries (6,9) and binds.
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let ev = PlanEvaluator::new(&model, &cluster);
        let [a, _, _] = example2_plans();
        let text = explain_plan(&ev, &a);
        assert!(text.contains("binding node: N1"), "{text}");
    }

    #[test]
    fn ideal_note_reflects_weights() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let ev = PlanEvaluator::new(&model, &cluster);
        let [a, _, _] = example2_plans();
        // Plan (a) has w21 = 1.2 > 1.
        assert!(explain_plan(&ev, &a).contains("strictly inside"));
    }
}
