//! The computing cluster model.
//!
//! Per §2.1: loosely-coupled shared-nothing machines, a high-bandwidth LAN
//! (bandwidth is not the bottleneck), and a *fixed, known* number of CPU
//! cycles available for stream processing on each machine.

use serde::{Deserialize, Serialize};

use rod_geom::Vector;

use crate::error::PlacementError;
use crate::ids::NodeId;

/// A cluster of `n` nodes with per-node CPU capacities `C_i`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    capacities: Vec<f64>,
}

impl Cluster {
    /// A cluster of `n` identical nodes of capacity `capacity` — the
    /// default configuration of the paper's experiments ("unless otherwise
    /// stated, we assume the system has homogeneous nodes").
    pub fn homogeneous(n: usize, capacity: f64) -> Cluster {
        Cluster {
            capacities: vec![capacity; n],
        }
    }

    /// A cluster with explicit per-node capacities.
    pub fn heterogeneous(capacities: Vec<f64>) -> Cluster {
        Cluster { capacities }
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of one node.
    pub fn capacity(&self, node: NodeId) -> f64 {
        self.capacities[node.index()]
    }

    /// The capacity vector `C`.
    pub fn capacities(&self) -> Vector {
        Vector::new(self.capacities.clone())
    }

    /// Total capacity `C_T = Σ C_i`.
    pub fn total_capacity(&self) -> f64 {
        self.capacities.iter().sum()
    }

    /// Relative capacity `C_i / C_T` of one node.
    pub fn relative_capacity(&self, node: NodeId) -> f64 {
        self.capacity(node) / self.total_capacity()
    }

    /// Node ids `N_0 … N_{n-1}`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.capacities.len()).map(NodeId)
    }

    /// Validates that the cluster is non-empty with positive capacities.
    pub fn validate(&self) -> Result<(), PlacementError> {
        if self.capacities.is_empty() {
            return Err(PlacementError::EmptyCluster);
        }
        for (i, &c) in self.capacities.iter().enumerate() {
            if !c.is_finite() || c <= 0.0 {
                return Err(PlacementError::InvalidCapacity {
                    node: i,
                    capacity: c,
                });
            }
        }
        Ok(())
    }
}

/// A rack-level grouping of a cluster's nodes, for hierarchical placement
/// (`crate::hierarchical`): racks partition the node set — every node in
/// exactly one rack, no rack empty.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    racks: Vec<Vec<usize>>,
}

impl Topology {
    /// A topology from explicit rack member lists. Call
    /// [`validate`](Self::validate) against the target cluster before
    /// planning with it.
    pub fn new(racks: Vec<Vec<usize>>) -> Topology {
        Topology { racks }
    }

    /// Partitions `num_nodes` nodes into `num_racks` contiguous racks of
    /// near-equal size (the first `num_nodes % num_racks` racks get one
    /// extra node). Panics if either count is zero or there are fewer
    /// nodes than racks.
    pub fn uniform(num_nodes: usize, num_racks: usize) -> Topology {
        assert!(num_racks > 0, "need at least one rack");
        assert!(
            num_nodes >= num_racks,
            "cannot split {num_nodes} nodes into {num_racks} racks"
        );
        let base = num_nodes / num_racks;
        let extra = num_nodes % num_racks;
        let mut racks = Vec::with_capacity(num_racks);
        let mut next = 0;
        for r in 0..num_racks {
            let len = base + usize::from(r < extra);
            racks.push((next..next + len).collect());
            next += len;
        }
        Topology { racks }
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.racks.len()
    }

    /// Member node indices of one rack.
    pub fn rack(&self, r: usize) -> &[usize] {
        &self.racks[r]
    }

    /// All racks.
    pub fn racks(&self) -> &[Vec<usize>] {
        &self.racks
    }

    /// Checks that the racks exactly partition the cluster's nodes,
    /// reporting the first violation: an empty topology, an empty rack, a
    /// rack member outside the cluster, a node claimed twice, or a node
    /// no rack covers.
    pub fn validate(&self, cluster: &Cluster) -> Result<(), PlacementError> {
        if self.racks.is_empty() {
            return Err(PlacementError::EmptyTopology);
        }
        let n = cluster.num_nodes();
        let mut seen = vec![false; n];
        for (r, members) in self.racks.iter().enumerate() {
            if members.is_empty() {
                return Err(PlacementError::EmptyRack { rack: r });
            }
            for &node in members {
                if node >= n {
                    return Err(PlacementError::RackNodeOutOfRange {
                        rack: r,
                        node,
                        nodes: n,
                    });
                }
                if seen[node] {
                    return Err(PlacementError::DuplicateRackNode { node });
                }
                seen[node] = true;
            }
        }
        if let Some(node) = seen.iter().position(|covered| !covered) {
            return Err(PlacementError::UncoveredNode { node });
        }
        Ok(())
    }

    /// The rack-aggregate cluster: one "node" per rack whose capacity is
    /// the sum of its members' capacities, accumulated in member order.
    pub fn aggregate_cluster(&self, cluster: &Cluster) -> Cluster {
        Cluster::heterogeneous(
            self.racks
                .iter()
                .map(|members| members.iter().map(|&i| cluster.capacity(NodeId(i))).sum())
                .collect(),
        )
    }

    /// The sub-cluster of one rack's members, in member order.
    pub fn rack_cluster(&self, cluster: &Cluster, r: usize) -> Cluster {
        Cluster::heterogeneous(
            self.racks[r]
                .iter()
                .map(|&i| cluster.capacity(NodeId(i)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster() {
        let c = Cluster::homogeneous(4, 2.5);
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.total_capacity(), 10.0);
        assert_eq!(c.capacity(NodeId(3)), 2.5);
        assert_eq!(c.relative_capacity(NodeId(0)), 0.25);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn heterogeneous_cluster() {
        let c = Cluster::heterogeneous(vec![1.0, 3.0]);
        assert_eq!(c.relative_capacity(NodeId(1)), 0.75);
    }

    #[test]
    fn invalid_clusters_rejected() {
        assert!(Cluster::heterogeneous(vec![]).validate().is_err());
        assert!(Cluster::heterogeneous(vec![1.0, 0.0]).validate().is_err());
        assert!(Cluster::heterogeneous(vec![1.0, -2.0]).validate().is_err());
        assert!(Cluster::heterogeneous(vec![f64::NAN]).validate().is_err());
    }

    #[test]
    fn nodes_iterator() {
        let c = Cluster::homogeneous(3, 1.0);
        let ids: Vec<_> = c.nodes().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn uniform_topology_partitions_evenly() {
        let t = Topology::uniform(7, 3);
        assert_eq!(t.num_racks(), 3);
        assert_eq!(t.rack(0), &[0, 1, 2]);
        assert_eq!(t.rack(1), &[3, 4]);
        assert_eq!(t.rack(2), &[5, 6]);
        assert!(t.validate(&Cluster::homogeneous(7, 1.0)).is_ok());
    }

    #[test]
    fn topology_validation_reports_each_violation() {
        let cluster = Cluster::homogeneous(4, 1.0);
        assert_eq!(
            Topology::new(vec![]).validate(&cluster),
            Err(PlacementError::EmptyTopology)
        );
        assert_eq!(
            Topology::new(vec![vec![0, 1], vec![]]).validate(&cluster),
            Err(PlacementError::EmptyRack { rack: 1 })
        );
        assert_eq!(
            Topology::new(vec![vec![0, 9], vec![1, 2, 3]]).validate(&cluster),
            Err(PlacementError::RackNodeOutOfRange {
                rack: 0,
                node: 9,
                nodes: 4
            })
        );
        assert_eq!(
            Topology::new(vec![vec![0, 1], vec![1, 2, 3]]).validate(&cluster),
            Err(PlacementError::DuplicateRackNode { node: 1 })
        );
        assert_eq!(
            Topology::new(vec![vec![0, 1], vec![3]]).validate(&cluster),
            Err(PlacementError::UncoveredNode { node: 2 })
        );
        assert!(Topology::new(vec![vec![0, 1], vec![2, 3]])
            .validate(&cluster)
            .is_ok());
    }

    #[test]
    fn aggregate_and_rack_clusters() {
        let cluster = Cluster::heterogeneous(vec![1.0, 2.0, 4.0, 8.0]);
        let t = Topology::new(vec![vec![0, 3], vec![1, 2]]);
        let agg = t.aggregate_cluster(&cluster);
        assert_eq!(agg.num_nodes(), 2);
        assert_eq!(agg.capacity(NodeId(0)), 9.0);
        assert_eq!(agg.capacity(NodeId(1)), 6.0);
        let r0 = t.rack_cluster(&cluster, 0);
        assert_eq!(r0.capacities().as_slice(), &[1.0, 8.0]);
    }
}
