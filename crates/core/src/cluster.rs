//! The computing cluster model.
//!
//! Per §2.1: loosely-coupled shared-nothing machines, a high-bandwidth LAN
//! (bandwidth is not the bottleneck), and a *fixed, known* number of CPU
//! cycles available for stream processing on each machine.

use serde::{Deserialize, Serialize};

use rod_geom::Vector;

use crate::error::PlacementError;
use crate::ids::NodeId;

/// A cluster of `n` nodes with per-node CPU capacities `C_i`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    capacities: Vec<f64>,
}

impl Cluster {
    /// A cluster of `n` identical nodes of capacity `capacity` — the
    /// default configuration of the paper's experiments ("unless otherwise
    /// stated, we assume the system has homogeneous nodes").
    pub fn homogeneous(n: usize, capacity: f64) -> Cluster {
        Cluster {
            capacities: vec![capacity; n],
        }
    }

    /// A cluster with explicit per-node capacities.
    pub fn heterogeneous(capacities: Vec<f64>) -> Cluster {
        Cluster { capacities }
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of one node.
    pub fn capacity(&self, node: NodeId) -> f64 {
        self.capacities[node.index()]
    }

    /// The capacity vector `C`.
    pub fn capacities(&self) -> Vector {
        Vector::new(self.capacities.clone())
    }

    /// Total capacity `C_T = Σ C_i`.
    pub fn total_capacity(&self) -> f64 {
        self.capacities.iter().sum()
    }

    /// Relative capacity `C_i / C_T` of one node.
    pub fn relative_capacity(&self, node: NodeId) -> f64 {
        self.capacity(node) / self.total_capacity()
    }

    /// Node ids `N_0 … N_{n-1}`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.capacities.len()).map(NodeId)
    }

    /// Validates that the cluster is non-empty with positive capacities.
    pub fn validate(&self) -> Result<(), PlacementError> {
        if self.capacities.is_empty() {
            return Err(PlacementError::EmptyCluster);
        }
        for (i, &c) in self.capacities.iter().enumerate() {
            if !c.is_finite() || c <= 0.0 {
                return Err(PlacementError::InvalidCapacity {
                    node: i,
                    capacity: c,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster() {
        let c = Cluster::homogeneous(4, 2.5);
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.total_capacity(), 10.0);
        assert_eq!(c.capacity(NodeId(3)), 2.5);
        assert_eq!(c.relative_capacity(NodeId(0)), 0.25);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn heterogeneous_cluster() {
        let c = Cluster::heterogeneous(vec![1.0, 3.0]);
        assert_eq!(c.relative_capacity(NodeId(1)), 0.75);
    }

    #[test]
    fn invalid_clusters_rejected() {
        assert!(Cluster::heterogeneous(vec![]).validate().is_err());
        assert!(Cluster::heterogeneous(vec![1.0, 0.0]).validate().is_err());
        assert!(Cluster::heterogeneous(vec![1.0, -2.0]).validate().is_err());
        assert!(Cluster::heterogeneous(vec![f64::NAN]).validate().is_err());
    }

    #[test]
    fn nodes_iterator() {
        let c = Cluster::homogeneous(3, 1.0);
        let ids: Vec<_> = c.nodes().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
}
