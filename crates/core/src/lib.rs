//! # rod-core — Resilient Operator Distribution
//!
//! A from-scratch reproduction of the placement algorithms of
//! *"Providing Resiliency to Load Variations in Distributed Stream
//! Processing"* (Xing, Hwang, Çetintemel, Zdonik — VLDB 2006).
//!
//! A continuous-query dataflow ([`QueryGraph`]) is to be partitioned across
//! a shared-nothing cluster ([`Cluster`]). Because input-stream rates vary
//! unpredictably at all time scales, the goal is not to balance load for
//! one observed rate point but to choose the *static* placement whose
//! **feasible set** — the set of input-rate combinations at which no node
//! is overloaded — is as large as possible.
//!
//! The pipeline is:
//!
//! 1. derive a **linear load model** from the graph ([`LoadModel`]),
//!    introducing fresh rate variables for nonlinear operators such as
//!    windowed joins (§6.2 linearisation, [`linearize`]);
//! 2. optionally **cluster** operators connected by expensive arcs so the
//!    arc never crosses the network (§6.3, [`clustering`]);
//! 3. run the **ROD algorithm** ([`rod::RodPlanner`]) — order operators by
//!    load-vector norm, then greedily place each on a *Class I* node
//!    (placement keeps the node hyperplane above the ideal hyperplane) if
//!    any exists, else on the node with maximum candidate plane distance
//!    (§5, Figure 10);
//! 4. evaluate the result: exact node hyperplanes, normalised weight
//!    matrix, plane/axis distances, and quasi-Monte-Carlo feasible-set
//!    volume ([`allocation`], [`metrics`]).
//!
//! The [`baselines`] module implements the four competitors of §7.2
//! (Random, Largest-Load-First, Connected, and Correlation-based load
//! balancing) plus the brute-force optimum used in §7.3.1.
//!
//! ## Quick example
//!
//! ```
//! use rod_core::prelude::*;
//!
//! // The query graph of Figure 4 / Example 2 of the paper.
//! let graph = rod_core::examples_paper::figure4_graph();
//! let model = LoadModel::derive(&graph).unwrap();
//! let cluster = Cluster::homogeneous(2, 1.0);
//!
//! let plan = RodPlanner::new().place(&model, &cluster).unwrap();
//! assert!(plan.allocation.is_complete());
//! let eval = PlanEvaluator::new(&model, &cluster);
//! assert!(eval.min_plane_distance(&plan.allocation) > 0.0);
//! ```

#![warn(missing_docs)]
pub mod allocation;
pub mod baselines;
pub mod capacity;
pub mod cluster;
pub mod clustering;
pub mod error;
pub mod eval;
pub mod examples_paper;
pub mod explain;
pub mod graph;
pub mod headroom;
pub mod hierarchical;
pub mod ids;
pub mod linearize;
pub mod load_model;
pub mod metrics;
pub mod obs;
pub mod operator;
pub mod resilience;
pub mod rod;
pub mod score_cache;

pub use allocation::{Allocation, PlanEvaluator, WeightMatrix};
pub use baselines::{build_planner, PlannerSpec};
pub use cluster::{Cluster, Topology};
pub use error::{GraphError, PlacementError};
pub use eval::{CandidateScore, IncrementalPlanEval, PlanSnapshot, SampledFeasibility};
pub use graph::{GraphBuilder, QueryGraph};
pub use hierarchical::{HierPlan, HierarchicalRod};
pub use ids::{InputId, NodeId, OperatorId, StreamId, VarId};
pub use load_model::{LoadModel, RateExpr};
pub use obs::{MetricsRegistry, MetricsSnapshot};
pub use operator::{OperatorKind, OperatorSpec};
pub use resilience::{
    FailoverTable, FailureScenario, ResilientPlan, ResilientRodOptions, ResilientRodPlanner,
};
pub use rod::{RodOptions, RodPlan, RodPlanner};
pub use score_cache::ScoreCache;

/// Convenient glob import for downstream users.
pub mod prelude {
    pub use crate::allocation::{Allocation, PlanEvaluator, WeightMatrix};
    pub use crate::baselines::{
        build_planner, connected::ConnectedPlanner, correlation::CorrelationPlanner,
        llf::LlfPlanner, optimal::OptimalPlanner, random::RandomPlanner, Planner, PlannerSpec,
    };
    pub use crate::cluster::{Cluster, Topology};
    pub use crate::error::{GraphError, PlacementError};
    pub use crate::eval::{CandidateScore, IncrementalPlanEval, PlanSnapshot, SampledFeasibility};
    pub use crate::graph::{GraphBuilder, QueryGraph};
    pub use crate::hierarchical::{HierPlan, HierarchicalRod};
    pub use crate::ids::{InputId, NodeId, OperatorId, StreamId, VarId};
    pub use crate::load_model::{LoadModel, RateExpr};
    pub use crate::obs::{MetricsRegistry, MetricsSnapshot};
    pub use crate::operator::{OperatorKind, OperatorSpec};
    pub use crate::resilience::{
        FailoverTable, FailureScenario, ResilientPlan, ResilientRodOptions, ResilientRodPlanner,
    };
    pub use crate::rod::{RodOptions, RodPlan, RodPlanner};
    pub use crate::score_cache::ScoreCache;
}
