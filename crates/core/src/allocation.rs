//! Operator allocations, node load matrices, weight matrices, and plan
//! evaluation.
//!
//! An [`Allocation`] is the paper's 0/1 matrix `A = {a_ij}` (here stored as
//! one node per operator). From it and the load model follow the node
//! load-coefficient matrix `L^n = A·L^o`, the normalised [`WeightMatrix`]
//! `w_ik = (l^n_ik / l_k) / (C_i / C_T)` of §3.3, and the exact feasible
//! region. The [`PlanEvaluator`] bundles the model and cluster so that the
//! same machinery scores ROD plans and every baseline identically.

use serde::{Deserialize, Serialize};

use rod_geom::{FeasibleRegion, Hyperplane, Matrix, Vector};

use crate::cluster::Cluster;
use crate::eval::IncrementalPlanEval;
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;

/// An assignment of operators to nodes (the allocation matrix `A`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// `assignment[j]` is the node hosting operator `j` (None while the
    /// plan is under construction).
    assignment: Vec<Option<NodeId>>,
    num_nodes: usize,
}

impl Allocation {
    /// An empty allocation of `num_operators` operators over `num_nodes`
    /// nodes.
    pub fn new(num_operators: usize, num_nodes: usize) -> Self {
        Allocation {
            assignment: vec![None; num_operators],
            num_nodes,
        }
    }

    /// Builds an allocation from per-node operator groups.
    pub fn from_groups(num_operators: usize, groups: &[Vec<OperatorId>]) -> Self {
        let mut a = Allocation::new(num_operators, groups.len());
        for (i, group) in groups.iter().enumerate() {
            for &op in group {
                a.assign(op, NodeId(i));
            }
        }
        a
    }

    /// Number of operators.
    pub fn num_operators(&self) -> usize {
        self.assignment.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Assigns (or re-assigns) an operator to a node.
    pub fn assign(&mut self, op: OperatorId, node: NodeId) {
        assert!(node.index() < self.num_nodes, "node out of range");
        self.assignment[op.index()] = Some(node);
    }

    /// The node hosting an operator, if assigned.
    pub fn node_of(&self, op: OperatorId) -> Option<NodeId> {
        self.assignment[op.index()]
    }

    /// Removes an operator's assignment, returning the node it sat on
    /// (search rollback; a no-op `None` when the operator was unplaced).
    pub fn unassign(&mut self, op: OperatorId) -> Option<NodeId> {
        self.assignment[op.index()].take()
    }

    /// True when every operator is placed.
    pub fn is_complete(&self) -> bool {
        self.assignment.iter().all(Option::is_some)
    }

    /// Operators placed on a node.
    pub fn operators_on(&self, node: NodeId) -> Vec<OperatorId> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(j, &n)| (n == Some(node)).then_some(OperatorId(j)))
            .collect()
    }

    /// Number of operators per node.
    pub fn node_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.num_nodes];
        for n in self.assignment.iter().flatten() {
            counts[n.index()] += 1;
        }
        counts
    }

    /// Operators whose host differs between `self` and `other` (both
    /// directions of placed→moved; operators unplaced in either plan are
    /// reported too, since deploying one plan over the other would touch
    /// them). Useful for measuring how disruptive a re-plan would be.
    pub fn diff(&self, other: &Allocation) -> Vec<OperatorId> {
        assert_eq!(self.num_operators(), other.num_operators());
        (0..self.assignment.len())
            .map(OperatorId)
            .filter(|&op| self.node_of(op) != other.node_of(op))
            .collect()
    }

    /// The dense 0/1 allocation matrix `A` (n × m).
    pub fn allocation_matrix(&self) -> Matrix {
        let mut a = Matrix::zeros(self.num_nodes, self.assignment.len());
        for (j, node) in self.assignment.iter().enumerate() {
            if let Some(n) = node {
                a[(n.index(), j)] = 1.0;
            }
        }
        a
    }

    /// The node load-coefficient matrix `L^n = A·L^o` (n × d'), computed
    /// directly by accumulating assigned rows (cheaper and clearer than
    /// materialising `A`).
    pub fn node_load_matrix(&self, lo: &Matrix) -> Matrix {
        let mut ln = Matrix::zeros(self.num_nodes, lo.cols());
        for (j, node) in self.assignment.iter().enumerate() {
            if let Some(n) = node {
                let row = lo.row(j);
                let target = ln.row_mut(n.index());
                for (t, &v) in target.iter_mut().zip(row) {
                    *t += v;
                }
            }
        }
        ln
    }
}

/// The normalised weight matrix `W = {w_ik}` of §3.3:
/// `w_ik = (l^n_ik / l_k) / (C_i / C_T)` — the share of stream `k`'s total
/// load carried by node `i`, relative to the node's share of total
/// capacity. The ideal plan of Theorem 1 has every `w_ik = 1`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeightMatrix {
    w: Matrix,
}

impl WeightMatrix {
    /// Builds `W` from a node load matrix, the stream totals `l_k`, and
    /// the cluster capacities. Streams with zero total coefficient (no
    /// operator loads them) get weight 0 on every node.
    pub fn new(ln: &Matrix, total_coeffs: &Vector, cluster: &Cluster) -> Self {
        assert_eq!(ln.cols(), total_coeffs.dim());
        assert_eq!(ln.rows(), cluster.num_nodes());
        let ct = cluster.total_capacity();
        let mut w = Matrix::zeros(ln.rows(), ln.cols());
        for i in 0..ln.rows() {
            let rel = cluster.capacity(NodeId(i)) / ct;
            for k in 0..ln.cols() {
                let lk = total_coeffs[k];
                w[(i, k)] = if lk > 0.0 {
                    (ln[(i, k)] / lk) / rel
                } else {
                    0.0
                };
            }
        }
        WeightMatrix { w }
    }

    /// The raw matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.w
    }

    /// The normalised node hyperplane of node `i`: `W_i · x = 1`.
    pub fn node_hyperplane(&self, i: NodeId) -> Hyperplane {
        Hyperplane::new(self.w.row_vector(i.index()), 1.0)
    }

    /// Plane distance of node `i` from the origin: `1 / ‖W_i‖₂` (§4.2).
    pub fn plane_distance(&self, i: NodeId) -> f64 {
        self.node_hyperplane(i).plane_distance()
    }

    /// The MMPD objective `r = min_i 1/‖W_i‖₂`. An empty cluster-wide
    /// minimum (all nodes empty) is `+inf`.
    pub fn min_plane_distance(&self) -> f64 {
        (0..self.w.rows())
            .map(|i| self.plane_distance(NodeId(i)))
            .fold(f64::INFINITY, f64::min)
    }

    /// The MMPD objective measured from a normalised lower-bound point
    /// `B̃` (§6.1): `r = min_i (1 - W_i·B̃)/‖W_i‖₂`.
    pub fn min_plane_distance_from(&self, b: &Vector) -> f64 {
        (0..self.w.rows())
            .map(|i| self.node_hyperplane(NodeId(i)).distance_from(b))
            .fold(f64::INFINITY, f64::min)
    }

    /// The per-axis MMAD objective: `min_i 1/w_ik` for each axis `k`
    /// (§4.1). `+inf` entries mean no node loads that stream.
    pub fn min_axis_distances(&self) -> Vector {
        Vector::new(
            (0..self.w.cols())
                .map(|k| {
                    (0..self.w.rows())
                        .map(|i| {
                            let w = self.w[(i, k)];
                            if w == 0.0 {
                                f64::INFINITY
                            } else {
                                1.0 / w
                            }
                        })
                        .fold(f64::INFINITY, f64::min)
                })
                .collect(),
        )
    }

    /// Largest single weight in the matrix.
    pub fn max_weight(&self) -> f64 {
        (0..self.w.rows())
            .flat_map(|i| (0..self.w.cols()).map(move |k| (i, k)))
            .map(|(i, k)| self.w[(i, k)])
            .fold(0.0, f64::max)
    }
}

/// Evaluates allocations of one load model on one cluster.
#[derive(Clone, Debug)]
pub struct PlanEvaluator<'a> {
    model: &'a LoadModel,
    cluster: &'a Cluster,
}

impl<'a> PlanEvaluator<'a> {
    /// Creates an evaluator. Panics on an invalid cluster — the cluster is
    /// part of the problem statement and must be checked up front.
    pub fn new(model: &'a LoadModel, cluster: &'a Cluster) -> Self {
        cluster.validate().expect("invalid cluster");
        PlanEvaluator { model, cluster }
    }

    /// The model being evaluated.
    pub fn model(&self) -> &LoadModel {
        self.model
    }

    /// The cluster being evaluated against.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// Builds the incremental evaluation state for a plan — the layer
    /// every accessor below is a snapshot of. Callers probing many
    /// single-operator variations should hold onto this instead of
    /// re-deriving matrices per variation.
    pub fn incremental(&self, alloc: &Allocation) -> IncrementalPlanEval<'_> {
        IncrementalPlanEval::from_allocation(self.model, self.cluster, alloc)
    }

    /// Node load-coefficient matrix of a plan.
    pub fn node_load_matrix(&self, alloc: &Allocation) -> Matrix {
        self.incremental(alloc).node_load_matrix()
    }

    /// Normalised weight matrix of a plan.
    pub fn weight_matrix(&self, alloc: &Allocation) -> WeightMatrix {
        self.incremental(alloc).snapshot().weights
    }

    /// Exact feasible region `{x ≥ 0 : L^n x ≤ C}` in variable space.
    pub fn feasible_region(&self, alloc: &Allocation) -> FeasibleRegion {
        self.incremental(alloc).snapshot().region
    }

    /// The MMPD score of a plan (`min_i 1/‖W_i‖`).
    pub fn min_plane_distance(&self, alloc: &Allocation) -> f64 {
        self.weight_matrix(alloc).min_plane_distance()
    }

    /// Per-node loads at a concrete *system input* rate point, via the
    /// linearised model (exact for introduced variables too, since their
    /// values come from true rate propagation).
    pub fn node_loads_at(&self, alloc: &Allocation, input_rates: &[f64]) -> Vector {
        let x = self.model.variable_point(input_rates);
        self.node_load_matrix(alloc).matvec(&x)
    }

    /// True when no node is overloaded at a system-input rate point.
    pub fn is_feasible_at(&self, alloc: &Allocation, input_rates: &[f64]) -> bool {
        let loads = self.node_loads_at(alloc, input_rates);
        (0..self.cluster.num_nodes()).all(|i| loads[i] <= self.cluster.capacity(NodeId(i)) + 1e-12)
    }

    /// Per-node CPU utilisation (load / capacity) at a rate point.
    pub fn utilisations_at(&self, alloc: &Allocation, input_rates: &[f64]) -> Vector {
        let loads = self.node_loads_at(alloc, input_rates);
        Vector::new(
            (0..self.cluster.num_nodes())
                .map(|i| loads[i] / self.cluster.capacity(NodeId(i)))
                .collect(),
        )
    }

    /// The ideal feasible region of Theorem 1 — a single constraint
    /// `Σ l_k x_k ≤ C_T` (every plan's region is contained in it).
    pub fn ideal_region(&self) -> FeasibleRegion {
        let d = self.model.num_vars();
        let mut row = Matrix::zeros(1, d);
        row.row_mut(0)
            .copy_from_slice(self.model.total_coeffs().as_slice());
        FeasibleRegion::new(row, Vector::new(vec![self.cluster.total_capacity()]))
    }

    /// Exact volume of the ideal feasible set,
    /// `C_T^d / (d! ∏_k l_k)` (Theorem 1). `None` when some `l_k = 0`
    /// (degenerate axis → unbounded ideal set).
    pub fn ideal_volume(&self) -> Option<f64> {
        if self.model.has_degenerate_vars() {
            return None;
        }
        Some(rod_geom::simplex_volume(
            self.model.total_coeffs().as_slice(),
            self.cluster.total_capacity(),
        ))
    }

    /// Number of operator-to-operator arcs that cross between nodes under
    /// a plan — the data-communication metric that §5.2 suggests using to
    /// break Class-I ties and that §6.3 clustering minimises.
    pub fn internode_arcs(&self, alloc: &Allocation) -> usize {
        self.model
            .graph()
            .operator_arcs()
            .iter()
            .filter(|(p, c, _)| {
                match (alloc.node_of(*p), alloc.node_of(*c)) {
                    (Some(a), Some(b)) => a != b,
                    // Unplaced endpoints cannot be said to cross.
                    _ => false,
                }
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{example2_plans, figure4_graph};

    fn setup() -> (LoadModel, Cluster) {
        (
            LoadModel::derive(&figure4_graph()).unwrap(),
            Cluster::homogeneous(2, 1.0),
        )
    }

    #[test]
    fn allocation_bookkeeping() {
        let mut a = Allocation::new(3, 2);
        assert!(!a.is_complete());
        a.assign(OperatorId(0), NodeId(0));
        a.assign(OperatorId(1), NodeId(1));
        a.assign(OperatorId(2), NodeId(1));
        assert!(a.is_complete());
        assert_eq!(a.node_of(OperatorId(2)), Some(NodeId(1)));
        assert_eq!(
            a.operators_on(NodeId(1)),
            vec![OperatorId(1), OperatorId(2)]
        );
        assert_eq!(a.node_counts(), vec![1, 2]);
    }

    #[test]
    fn diff_reports_moved_operators() {
        let mut a = Allocation::new(3, 2);
        a.assign(OperatorId(0), NodeId(0));
        a.assign(OperatorId(1), NodeId(1));
        a.assign(OperatorId(2), NodeId(0));
        let mut b = a.clone();
        assert!(a.diff(&b).is_empty());
        b.assign(OperatorId(2), NodeId(1));
        assert_eq!(a.diff(&b), vec![OperatorId(2)]);
        // Unplaced-vs-placed counts as a difference.
        let empty = Allocation::new(3, 2);
        assert_eq!(a.diff(&empty).len(), 3);
    }

    #[test]
    fn allocation_matrix_matches_node_load_matrix() {
        let (model, _) = setup();
        let [a, _, _] = example2_plans();
        let via_matmul = a.allocation_matrix().matmul(model.lo());
        let direct = a.node_load_matrix(model.lo());
        assert_eq!(via_matmul, direct);
    }

    #[test]
    fn weight_matrix_of_plan_a() {
        // Plan (a): L^n = [[4,2],[6,9]], l = (10,11), C_i/C_T = 1/2.
        // W = [[0.8, 4/11], [1.2, 18/11]].
        let (model, cluster) = setup();
        let [a, _, _] = example2_plans();
        let ev = PlanEvaluator::new(&model, &cluster);
        let w = ev.weight_matrix(&a);
        let m = w.matrix();
        assert!((m[(0, 0)] - 0.8).abs() < 1e-12);
        assert!((m[(0, 1)] - 4.0 / 11.0).abs() < 1e-12);
        assert!((m[(1, 0)] - 1.2).abs() < 1e-12);
        assert!((m[(1, 1)] - 18.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn plane_and_axis_distances() {
        let (model, cluster) = setup();
        let [a, _, _] = example2_plans();
        let ev = PlanEvaluator::new(&model, &cluster);
        let w = ev.weight_matrix(&a);
        // Node 2 is the binding one: ||W_2|| = sqrt(1.44 + (18/11)^2).
        let n2 = (1.2f64 * 1.2 + (18.0 / 11.0) * (18.0 / 11.0)).sqrt();
        assert!((w.min_plane_distance() - 1.0 / n2).abs() < 1e-12);
        let ax = w.min_axis_distances();
        assert!((ax[0] - 1.0 / 1.2).abs() < 1e-12);
        assert!((ax[1] - 11.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn feasibility_at_points() {
        let (model, cluster) = setup();
        let [a, _, _] = example2_plans();
        let ev = PlanEvaluator::new(&model, &cluster);
        // Origin is always feasible; far point is not.
        assert!(ev.is_feasible_at(&a, &[0.0, 0.0]));
        assert!(!ev.is_feasible_at(&a, &[1.0, 1.0]));
        // On plan (a): node loads at (0.1, 0.05) are (0.5, 1.05)·... :
        // N1 = 4*.1 + 2*.05 = 0.5 <= 1; N2 = 6*.1 + 9*.05 = 1.05 > 1.
        assert!(!ev.is_feasible_at(&a, &[0.1, 0.05]));
        assert!(ev.is_feasible_at(&a, &[0.05, 0.05]));
    }

    #[test]
    fn utilisations_match_loads() {
        let (model, cluster) = setup();
        let [a, _, _] = example2_plans();
        let ev = PlanEvaluator::new(&model, &cluster);
        let u = ev.utilisations_at(&a, &[0.05, 0.05]);
        assert!((u[0] - 0.3).abs() < 1e-12);
        assert!((u[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ideal_volume_formula() {
        let (model, cluster) = setup();
        let ev = PlanEvaluator::new(&model, &cluster);
        // C_T = 2, d = 2, l = (10, 11): V* = 4 / (2·110) = 1/55.
        assert!((ev.ideal_volume().unwrap() - 1.0 / 55.0).abs() < 1e-15);
    }

    #[test]
    fn internode_arcs_counted() {
        let (model, cluster) = setup();
        let ev = PlanEvaluator::new(&model, &cluster);
        let [a, _, c] = example2_plans();
        // Plan (a) splits both chains: o1|o2 and o3|o4 cross → 2 arcs.
        assert_eq!(ev.internode_arcs(&a), 2);
        // Plan (c) keeps each chain whole → 0 arcs.
        assert_eq!(ev.internode_arcs(&c), 0);
    }

    #[test]
    fn empty_allocation_has_infinite_plane_distance() {
        let (model, cluster) = setup();
        let ev = PlanEvaluator::new(&model, &cluster);
        let empty = Allocation::new(4, 2);
        assert_eq!(ev.min_plane_distance(&empty), f64::INFINITY);
    }

    #[test]
    fn lower_bound_distance_shrinks() {
        let (model, cluster) = setup();
        let [a, _, _] = example2_plans();
        let ev = PlanEvaluator::new(&model, &cluster);
        let w = ev.weight_matrix(&a);
        let from_origin = w.min_plane_distance();
        let from_b = w.min_plane_distance_from(&Vector::from([0.1, 0.1]));
        assert!(from_b < from_origin);
    }
}
