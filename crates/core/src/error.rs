//! Error types.

use std::fmt;

use crate::ids::{OperatorId, StreamId};

/// Errors raised while building or validating a [`crate::QueryGraph`].
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    /// An operator references a stream that does not exist.
    UnknownStream(StreamId),
    /// Two operators claim the same output stream.
    DuplicateProducer {
        /// The contested stream.
        stream: StreamId,
        /// The operator registered first.
        first: OperatorId,
        /// The operator that collided with it.
        second: OperatorId,
    },
    /// The graph contains a directed cycle (query graphs must be acyclic).
    Cyclic,
    /// An operator has the wrong number of inputs for its kind (e.g. a
    /// join with one input).
    ArityMismatch {
        /// The offending operator.
        operator: OperatorId,
        /// How many inputs its kind requires.
        expected: &'static str,
        /// How many it was given.
        actual: usize,
    },
    /// A cost or selectivity is negative, NaN, or otherwise out of range.
    InvalidParameter {
        /// The offending operator.
        operator: OperatorId,
        /// What was wrong with it.
        message: String,
    },
    /// The graph has no system input streams.
    NoInputs,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownStream(s) => write!(f, "operator consumes unknown stream {s}"),
            GraphError::DuplicateProducer {
                stream,
                first,
                second,
            } => write!(
                f,
                "stream {stream} is produced by both {first} and {second}"
            ),
            GraphError::Cyclic => write!(f, "query graph contains a cycle"),
            GraphError::ArityMismatch {
                operator,
                expected,
                actual,
            } => write!(
                f,
                "operator {operator} expects {expected} inputs but has {actual}"
            ),
            GraphError::InvalidParameter { operator, message } => {
                write!(f, "operator {operator}: {message}")
            }
            GraphError::NoInputs => write!(f, "query graph has no system input streams"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Errors raised by placement algorithms.
#[derive(Clone, Debug, PartialEq)]
pub enum PlacementError {
    /// The cluster has no nodes.
    EmptyCluster,
    /// The load model has no operators to place.
    EmptyModel,
    /// A capacity is non-positive.
    InvalidCapacity {
        /// Index of the offending node.
        node: usize,
        /// Its declared capacity.
        capacity: f64,
    },
    /// Exhaustive search was asked for an instance too large to enumerate.
    TooLargeForExhaustive {
        /// Operators in the instance.
        operators: usize,
        /// Nodes in the instance.
        nodes: usize,
    },
    /// A failure scenario names no nodes.
    EmptyScenario,
    /// A failure scenario (or outage) names a node outside the cluster.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Nodes in the cluster.
        nodes: usize,
    },
    /// A failure scenario kills every node, leaving nothing to plan for.
    NoSurvivors {
        /// Nodes in the cluster.
        nodes: usize,
    },
    /// A rack of a [`crate::cluster::Topology`] names a node outside the
    /// cluster.
    RackNodeOutOfRange {
        /// Index of the offending rack.
        rack: usize,
        /// The offending node index.
        node: usize,
        /// Nodes in the cluster.
        nodes: usize,
    },
    /// A rack of a topology contains no nodes.
    EmptyRack {
        /// Index of the offending rack.
        rack: usize,
    },
    /// A node appears in more than one rack of a topology.
    DuplicateRackNode {
        /// The node listed twice.
        node: usize,
    },
    /// A cluster node is not covered by any rack of a topology.
    UncoveredNode {
        /// The node no rack claims.
        node: usize,
    },
    /// A topology has no racks at all.
    EmptyTopology,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::EmptyCluster => write!(f, "cluster has no nodes"),
            PlacementError::EmptyModel => write!(f, "no operators to place"),
            PlacementError::InvalidCapacity { node, capacity } => {
                write!(f, "node {node} has invalid capacity {capacity}")
            }
            PlacementError::TooLargeForExhaustive { operators, nodes } => write!(
                f,
                "exhaustive search over {operators} operators x {nodes} nodes is intractable"
            ),
            PlacementError::EmptyScenario => write!(f, "failure scenario names no nodes"),
            PlacementError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} is out of range for a {nodes}-node cluster")
            }
            PlacementError::NoSurvivors { nodes } => {
                write!(
                    f,
                    "scenario kills all {nodes} nodes; no survivors to plan for"
                )
            }
            PlacementError::RackNodeOutOfRange { rack, node, nodes } => write!(
                f,
                "rack {rack} names node {node}, out of range for a {nodes}-node cluster"
            ),
            PlacementError::EmptyRack { rack } => write!(f, "rack {rack} contains no nodes"),
            PlacementError::DuplicateRackNode { node } => {
                write!(f, "node {node} appears in more than one rack")
            }
            PlacementError::UncoveredNode { node } => {
                write!(f, "node {node} is not covered by any rack")
            }
            PlacementError::EmptyTopology => write!(f, "topology has no racks"),
        }
    }
}

impl std::error::Error for PlacementError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::UnknownStream(StreamId(4));
        assert!(e.to_string().contains("s4"));
        let e = PlacementError::TooLargeForExhaustive {
            operators: 30,
            nodes: 4,
        };
        assert!(e.to_string().contains("30"));
    }
}
