//! The dataflow query graph.
//!
//! A [`QueryGraph`] is a directed acyclic graph whose sources are *system
//! input streams* `I_k` (data pushed from outside, §2.1) and whose internal
//! vertices are operators. The [`GraphBuilder`] makes graphs
//! correct-by-construction: an operator may only consume streams that
//! already exist, so cycles are unrepresentable, and operator insertion
//! order is automatically a topological order.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::ids::{InputId, OperatorId, StreamId};
use crate::operator::{OperatorKind, OperatorSpec};

/// Who produces a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamSource {
    /// A system input stream `I_k`.
    Input(InputId),
    /// The output of an operator.
    Operator(OperatorId),
}

/// An immutable, validated dataflow graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryGraph {
    inputs: Vec<StreamId>,
    operators: Vec<OperatorSpec>,
    sources: Vec<StreamSource>, // indexed by StreamId
}

impl QueryGraph {
    /// Number of system input streams `d`.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of operators `m`.
    pub fn num_operators(&self) -> usize {
        self.operators.len()
    }

    /// Total number of streams (inputs + operator outputs).
    pub fn num_streams(&self) -> usize {
        self.sources.len()
    }

    /// The system input streams, in `I_0 … I_{d-1}` order.
    pub fn inputs(&self) -> &[StreamId] {
        &self.inputs
    }

    /// The operators in topological (insertion) order.
    pub fn operators(&self) -> &[OperatorSpec] {
        &self.operators
    }

    /// A single operator.
    pub fn operator(&self, id: OperatorId) -> &OperatorSpec {
        &self.operators[id.index()]
    }

    /// The producer of a stream.
    pub fn source_of(&self, s: StreamId) -> StreamSource {
        self.sources[s.index()]
    }

    /// Operators that consume stream `s` (with the consuming port).
    pub fn consumers_of(&self, s: StreamId) -> Vec<(OperatorId, usize)> {
        let mut out = Vec::new();
        for op in &self.operators {
            for (port, &input) in op.inputs.iter().enumerate() {
                if input == s {
                    out.push((op.id, port));
                }
            }
        }
        out
    }

    /// All operator-to-operator arcs `(producer, consumer, stream)` — the
    /// arcs that §6.3 clustering may decide to keep off the network.
    /// Input-to-operator arcs are excluded (sources are external).
    pub fn operator_arcs(&self) -> Vec<(OperatorId, OperatorId, StreamId)> {
        let mut arcs = Vec::new();
        for op in &self.operators {
            for &input in &op.inputs {
                if let StreamSource::Operator(producer) = self.source_of(input) {
                    arcs.push((producer, op.id, input));
                }
            }
        }
        arcs
    }

    /// True when two operators share an arc in either direction.
    ///
    /// One-off convenience; algorithms that test connectivity in a loop
    /// should precompute [`Self::adjacency`] instead.
    pub fn are_connected(&self, a: OperatorId, b: OperatorId) -> bool {
        self.operator_arcs()
            .iter()
            .any(|&(p, c, _)| (p == a && c == b) || (p == b && c == a))
    }

    /// Undirected operator adjacency lists (each neighbour listed once).
    pub fn adjacency(&self) -> Vec<Vec<OperatorId>> {
        let mut adj = vec![Vec::new(); self.operators.len()];
        for (p, c, _) in self.operator_arcs() {
            adj[p.index()].push(c);
            adj[c.index()].push(p);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }

    /// Operators that consume at least one system input stream directly.
    pub fn roots(&self) -> Vec<OperatorId> {
        self.operators
            .iter()
            .filter(|op| {
                op.inputs
                    .iter()
                    .any(|&s| matches!(self.source_of(s), StreamSource::Input(_)))
            })
            .map(|op| op.id)
            .collect()
    }

    /// Streams nothing consumes — where results leave the query network.
    pub fn sinks(&self) -> Vec<StreamId> {
        (0..self.sources.len())
            .map(StreamId)
            .filter(|&s| self.consumers_of(s).is_empty())
            .collect()
    }

    /// Longest operator chain from any input to any sink (1 for a single
    /// operator). The paper's financial motivation contrasts *wide* vs
    /// *deep* graphs; this is the depth metric.
    pub fn depth(&self) -> usize {
        // Streams' depths in one topological pass (operator order is
        // topological by construction/validation).
        let mut stream_depth = vec![0usize; self.sources.len()];
        let mut max_depth = 0;
        for op in &self.operators {
            let in_depth = op
                .inputs
                .iter()
                .map(|s| stream_depth[s.index()])
                .max()
                .unwrap_or(0);
            stream_depth[op.output.index()] = in_depth + 1;
            max_depth = max_depth.max(in_depth + 1);
        }
        max_depth
    }

    /// Propagates concrete system-input rates through the graph, returning
    /// the rate of every stream. Nonlinear operators use their true
    /// (bilinear) rate law; variable-selectivity operators use nominal
    /// selectivities. This is the ground truth against which the
    /// linearised model is checked, and the rate law the simulator
    /// reproduces stochastically.
    pub fn propagate_rates(&self, input_rates: &[f64]) -> Vec<f64> {
        assert_eq!(input_rates.len(), self.inputs.len(), "one rate per input");
        let mut rates = vec![0.0; self.sources.len()];
        for (k, &s) in self.inputs.iter().enumerate() {
            rates[s.index()] = input_rates[k];
        }
        // Operator insertion order is topological.
        for op in &self.operators {
            let in_rates: Vec<f64> = op.inputs.iter().map(|s| rates[s.index()]).collect();
            rates[op.output.index()] = op.output_rate_at(&in_rates);
        }
        rates
    }

    /// The true CPU load of every operator at concrete input rates.
    pub fn operator_loads(&self, input_rates: &[f64]) -> Vec<f64> {
        let rates = self.propagate_rates(input_rates);
        self.operators
            .iter()
            .map(|op| {
                let in_rates: Vec<f64> = op.inputs.iter().map(|s| rates[s.index()]).collect();
                op.load_at(&in_rates)
            })
            .collect()
    }

    /// Validates every operator's parameters and the structural
    /// invariants the builder guarantees by construction but a
    /// deserialized graph might violate: stream references in range, a
    /// consistent producer table, and topological operator order (every
    /// operator only consumes streams created before its own output —
    /// which also makes cycles unrepresentable and is what
    /// [`Self::propagate_rates`]'s single forward pass relies on).
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.inputs.is_empty() {
            return Err(GraphError::NoInputs);
        }
        // Producer table consistent with the operator list.
        for (j, op) in self.operators.iter().enumerate() {
            if op.id.index() != j
                || op.output.index() >= self.sources.len()
                || self.sources[op.output.index()] != StreamSource::Operator(op.id)
            {
                return Err(GraphError::DuplicateProducer {
                    stream: op.output,
                    first: op.id,
                    second: OperatorId(j),
                });
            }
        }
        for op in &self.operators {
            op.validate()?;
            for &s in &op.inputs {
                if s.index() >= self.sources.len() {
                    return Err(GraphError::UnknownStream(s));
                }
                // Topological order: inputs must precede the output.
                if s.index() >= op.output.index() {
                    return Err(GraphError::Cyclic);
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`QueryGraph`]. Streams are handed out as they are created,
/// and operators may only consume existing streams — so the result is
/// acyclic by construction.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    inputs: Vec<StreamId>,
    operators: Vec<OperatorSpec>,
    sources: Vec<StreamSource>,
    names: HashMap<String, OperatorId>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Adds a system input stream `I_k`, returning its stream id.
    pub fn add_input(&mut self) -> StreamId {
        let sid = StreamId(self.sources.len());
        let iid = InputId(self.inputs.len());
        self.sources.push(StreamSource::Input(iid));
        self.inputs.push(sid);
        sid
    }

    /// Adds an operator consuming `inputs`, returning `(operator id,
    /// output stream id)`. Fails fast on invalid parameters or arity so
    /// that errors point at the offending call site.
    pub fn add_operator(
        &mut self,
        name: impl Into<String>,
        kind: OperatorKind,
        inputs: &[StreamId],
    ) -> Result<(OperatorId, StreamId), GraphError> {
        for &s in inputs {
            if s.index() >= self.sources.len() {
                return Err(GraphError::UnknownStream(s));
            }
        }
        let id = OperatorId(self.operators.len());
        let output = StreamId(self.sources.len());
        let spec = OperatorSpec {
            id,
            name: name.into(),
            kind,
            inputs: inputs.to_vec(),
            output,
        };
        spec.validate()?;
        if let Some(&prev) = self.names.get(&spec.name) {
            // Names are labels, not keys — but duplicate labels in one
            // graph are almost always a generator bug, so surface them.
            return Err(GraphError::DuplicateProducer {
                stream: output,
                first: prev,
                second: id,
            });
        }
        self.names.insert(spec.name.clone(), id);
        self.sources.push(StreamSource::Operator(id));
        self.operators.push(spec);
        Ok((id, output))
    }

    /// Finalises the graph.
    pub fn build(self) -> Result<QueryGraph, GraphError> {
        let graph = QueryGraph {
            inputs: self.inputs,
            operators: self.operators,
            sources: self.sources,
        };
        graph.validate()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// I0 → o0(filter .5) → o1(map); I1 → o2(agg .2); o1,o2 → o3(union).
    fn diamond() -> QueryGraph {
        let mut b = GraphBuilder::new();
        let i0 = b.add_input();
        let i1 = b.add_input();
        let (_, s0) = b
            .add_operator("f", OperatorKind::filter(2.0, 0.5), &[i0])
            .unwrap();
        let (_, s1) = b.add_operator("m", OperatorKind::map(1.0), &[s0]).unwrap();
        let (_, s2) = b
            .add_operator("a", OperatorKind::aggregate(3.0, 0.2), &[i1])
            .unwrap();
        let (_, _s3) = b
            .add_operator("u", OperatorKind::union(0.5, 2), &[s1, s2])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.num_inputs(), 2);
        assert_eq!(g.num_operators(), 4);
        assert_eq!(g.num_streams(), 6);
    }

    #[test]
    fn rate_propagation() {
        let g = diamond();
        let rates = g.propagate_rates(&[10.0, 20.0]);
        // filter: 10*0.5=5; map: 5; agg: 20*0.2=4; union: 5+4=9.
        assert_eq!(rates[2], 5.0);
        assert_eq!(rates[3], 5.0);
        assert_eq!(rates[4], 4.0);
        assert_eq!(rates[5], 9.0);
    }

    #[test]
    fn operator_loads_match_example1_structure() {
        // Paper Example 1: load(o1)=c1 r1, load(o2)=c2 s1 r1, etc.
        let mut b = GraphBuilder::new();
        let i0 = b.add_input();
        let i1 = b.add_input();
        let (_, s1) = b
            .add_operator("o1", OperatorKind::filter(4.0, 1.0), &[i0])
            .unwrap();
        let (_, _s2) = b
            .add_operator("o2", OperatorKind::filter(6.0, 1.0), &[s1])
            .unwrap();
        let (_, s3) = b
            .add_operator("o3", OperatorKind::filter(9.0, 0.5), &[i1])
            .unwrap();
        let (_, _s4) = b
            .add_operator("o4", OperatorKind::filter(4.0, 1.0), &[s3])
            .unwrap();
        let g = b.build().unwrap();
        let loads = g.operator_loads(&[1.0, 1.0]);
        assert_eq!(loads, vec![4.0, 6.0, 9.0, 2.0]);
    }

    #[test]
    fn arcs_and_connectivity() {
        let g = diamond();
        let arcs = g.operator_arcs();
        // f→m, m→u, a→u.
        assert_eq!(arcs.len(), 3);
        assert!(g.are_connected(OperatorId(0), OperatorId(1)));
        assert!(g.are_connected(OperatorId(1), OperatorId(3)));
        assert!(!g.are_connected(OperatorId(0), OperatorId(2)));
    }

    #[test]
    fn consumers_report_ports() {
        let g = diamond();
        // Stream of "a" (index 4) feeds union port 1.
        let consumers = g.consumers_of(StreamId(4));
        assert_eq!(consumers, vec![(OperatorId(3), 1)]);
    }

    #[test]
    fn unknown_stream_rejected() {
        let mut b = GraphBuilder::new();
        let _ = b.add_input();
        let err = b
            .add_operator("f", OperatorKind::map(1.0), &[StreamId(42)])
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownStream(_)));
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(matches!(
            GraphBuilder::new().build(),
            Err(GraphError::NoInputs)
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = GraphBuilder::new();
        let i0 = b.add_input();
        b.add_operator("x", OperatorKind::map(1.0), &[i0]).unwrap();
        assert!(b.add_operator("x", OperatorKind::map(1.0), &[i0]).is_err());
    }

    #[test]
    fn graph_shape_utilities() {
        let g = diamond();
        // Roots: f (on I0) and a (on I1).
        assert_eq!(g.roots(), vec![OperatorId(0), OperatorId(2)]);
        // Only the union's output is unconsumed.
        assert_eq!(g.sinks(), vec![StreamId(5)]);
        // Longest chain: f → m → u = 3.
        assert_eq!(g.depth(), 3);
    }

    #[test]
    fn validate_rejects_tampered_serialized_graphs() {
        // A forward-referencing (cyclic-equivalent) graph must be caught
        // when loaded from JSON rather than built via the builder.
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        // Rewire the first operator's input (stream 0) to its own output
        // (stream 2) — a self-loop the builder can never produce.
        let needle = "\"inputs\":[0],\"output\":2";
        assert!(json.contains(needle), "serde layout changed: {json}");
        let tampered = json.replace(needle, "\"inputs\":[2],\"output\":2");
        let g2: QueryGraph = serde_json::from_str(&tampered).unwrap();
        assert!(matches!(g2.validate(), Err(GraphError::Cyclic)));

        // And a producer-table lie is caught too.
        let tampered = json.replace("{\"Operator\":0}", "{\"Operator\":1}");
        let g3: QueryGraph = serde_json::from_str(&tampered).unwrap();
        assert!(matches!(
            g3.validate(),
            Err(GraphError::DuplicateProducer { .. })
        ));
    }

    #[test]
    fn join_rates_propagate_bilinearly() {
        let mut b = GraphBuilder::new();
        let i0 = b.add_input();
        let i1 = b.add_input();
        let (_, _out) = b
            .add_operator(
                "j",
                OperatorKind::WindowJoin {
                    window: 1.0,
                    cost_per_pair: 2.0,
                    selectivity_per_pair: 0.5,
                },
                &[i0, i1],
            )
            .unwrap();
        let g = b.build().unwrap();
        let rates = g.propagate_rates(&[3.0, 4.0]);
        assert_eq!(rates[2], 6.0); // 0.5 * 1 * 3 * 4
        assert_eq!(g.operator_loads(&[3.0, 4.0]), vec![24.0]);
    }
}
