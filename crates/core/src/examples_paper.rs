//! The worked examples of the paper, as constructible fixtures.
//!
//! These are used throughout the test suite and by the
//! `table2_example` experiment binary, and they double as executable
//! documentation of the model:
//!
//! * [`figure4_graph`] — the two-chain graph of Figure 4 with the
//!   parameters of Example 2 (`c = 4, 6, 9, 4`; `s₁ = 1`, `s₃ = 0.5`),
//!   whose operator load-coefficient matrix is Table 2's
//!   `L^o = [[4,0],[6,0],[0,9],[0,2]]`;
//! * [`example2_plans`] — the three allocation plans (a), (b), (c) of
//!   Table 2, whose feasible sets are drawn in Figure 5;
//! * [`example3_graph`] — the nonlinear graph of Example 3 / Figure 13
//!   (a variable-selectivity operator and a windowed join), used to
//!   exercise the §6.2 linearisation.

use crate::allocation::Allocation;
use crate::graph::{GraphBuilder, QueryGraph};
use crate::ids::NodeId;
use crate::operator::OperatorKind;

/// The query graph of Figure 4 with Example 2's costs and selectivities.
///
/// `I₁ → o₁(c=4, s=1) → o₂(c=6)` and `I₂ → o₃(c=9, s=0.5) → o₄(c=4)`.
/// Loads: `4r₁, 6r₁, 9r₂, 2r₂` (Example 1 with Example 2's numbers).
pub fn figure4_graph() -> QueryGraph {
    let mut b = GraphBuilder::new();
    let i1 = b.add_input();
    let i2 = b.add_input();
    let (_, s1) = b
        .add_operator("o1", OperatorKind::filter(4.0, 1.0), &[i1])
        .expect("o1");
    // o2's own selectivity is unspecified in the paper (nothing consumes
    // its output); 1.0 is as good as any.
    b.add_operator("o2", OperatorKind::filter(6.0, 1.0), &[s1])
        .expect("o2");
    let (_, s3) = b
        .add_operator("o3", OperatorKind::filter(9.0, 0.5), &[i2])
        .expect("o3");
    b.add_operator("o4", OperatorKind::filter(4.0, 1.0), &[s3])
        .expect("o4");
    b.build().expect("figure 4 graph is valid")
}

/// The three two-node allocation plans of Table 2 for [`figure4_graph`].
///
/// * Plan (a): `N₁ = {o₁, o₄}`, `N₂ = {o₂, o₃}` → `L^n = [[4,2],[6,9]]`
/// * Plan (b): `N₁ = {o₁, o₃}`, `N₂ = {o₂, o₄}` → `L^n = [[4,9],[6,2]]`
/// * Plan (c): `N₁ = {o₁, o₂}`, `N₂ = {o₃, o₄}` → `L^n = [[10,0],[0,11]]`
pub fn example2_plans() -> [Allocation; 3] {
    let plan = |n1: &[usize], n2: &[usize]| {
        let mut a = Allocation::new(4, 2);
        for &j in n1 {
            a.assign(j.into(), NodeId(0));
        }
        for &j in n2 {
            a.assign(j.into(), NodeId(1));
        }
        a
    };
    [
        plan(&[0, 3], &[1, 2]),
        plan(&[0, 2], &[1, 3]),
        plan(&[0, 1], &[2, 3]),
    ]
}

/// The nonlinear query graph of Example 3 / Figure 13.
///
/// `I₁(r₁) → o₁(variable selectivity) → r₃ → o₂ → r_u`,
/// `I₂(r₂) → o₃ → o₄ → r_v`, `o₅ = join(r_u, r_v) → r₄ → o₆`.
///
/// Linearisation introduces `r₃` (output of `o₁`) and `r₄` (output of
/// `o₅`), cutting the graph into linear pieces exactly as Figure 13 shows.
pub fn example3_graph() -> QueryGraph {
    let mut b = GraphBuilder::new();
    let i1 = b.add_input();
    let i2 = b.add_input();
    let (_, r3) = b
        .add_operator(
            "o1",
            OperatorKind::VariableSelectivity {
                costs: vec![2.0],
                nominal_selectivities: vec![0.8],
            },
            &[i1],
        )
        .expect("o1");
    let (_, ru) = b
        .add_operator("o2", OperatorKind::filter(3.0, 0.9), &[r3])
        .expect("o2");
    let (_, s_o3) = b
        .add_operator("o3", OperatorKind::filter(1.5, 1.0), &[i2])
        .expect("o3");
    let (_, rv) = b
        .add_operator("o4", OperatorKind::filter(2.5, 0.6), &[s_o3])
        .expect("o4");
    let (_, r4) = b
        .add_operator(
            "o5",
            OperatorKind::WindowJoin {
                window: 1.0,
                cost_per_pair: 4.0,
                selectivity_per_pair: 0.25,
            },
            &[ru, rv],
        )
        .expect("o5");
    b.add_operator("o6", OperatorKind::filter(1.0, 1.0), &[r4])
        .expect("o6");
    b.build().expect("example 3 graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_model::LoadModel;

    #[test]
    fn figure4_matches_example1_loads() {
        let g = figure4_graph();
        // At r1 = r2 = 1: loads 4, 6, 9, 2 (= c4 * s3).
        assert_eq!(g.operator_loads(&[1.0, 1.0]), vec![4.0, 6.0, 9.0, 2.0]);
    }

    #[test]
    fn example2_plans_reproduce_table2() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let [a, b, c] = example2_plans();
        let ln_a = a.node_load_matrix(model.lo());
        assert_eq!(ln_a.row(0), &[4.0, 2.0]);
        assert_eq!(ln_a.row(1), &[6.0, 9.0]);
        let ln_b = b.node_load_matrix(model.lo());
        assert_eq!(ln_b.row(0), &[4.0, 9.0]);
        assert_eq!(ln_b.row(1), &[6.0, 2.0]);
        let ln_c = c.node_load_matrix(model.lo());
        assert_eq!(ln_c.row(0), &[10.0, 0.0]);
        assert_eq!(ln_c.row(1), &[0.0, 11.0]);
    }

    #[test]
    fn example3_structure() {
        let g = example3_graph();
        assert_eq!(g.num_inputs(), 2);
        assert_eq!(g.num_operators(), 6);
        // The join consumes the two chain outputs.
        let join = &g.operators()[4];
        assert!(matches!(join.kind, OperatorKind::WindowJoin { .. }));
    }
}
