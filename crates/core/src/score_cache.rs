//! Shared memoisation of sampled plan scores.
//!
//! Every sampled scorer in the workspace — the [`ScenarioScorer`] behind
//! ResilientRod's hill climb, the [`OptimalPlanner`] branch-and-bound,
//! and the metrics paths that re-rate a finished plan — ultimately asks
//! the same question: *how many quasi-Monte-Carlo points stay feasible
//! under this operator→node assignment?* The answer is a pure function
//! of the **effective assignment** alone: node loads are sums of the
//! assigned operators' per-point loads, nodes carrying nothing can never
//! kill a point, and a point is alive exactly when every node's total
//! stays within capacity. Failure scenarios enter only through the
//! failover redirects they induce, so a (plan, scenario) pair collapses
//! to the post-redirect assignment vector.
//!
//! [`ScoreCache`] memoises that mapping. The hill climb re-scores the
//! accepted candidate of the previous iteration and every move of the
//! just-moved operator back onto allocations it has already rated;
//! cross-planner sharing lets a branch-and-bound incumbent seed the
//! re-rating a benchmark would otherwise recompute from scratch.
//!
//! **Scope.** A cached count is only meaningful for a fixed load model,
//! cluster, and point set: the cache stores no fingerprint of either, so
//! it must be scoped to one (model, cluster, points) context — exactly
//! the lifetime of the scorer that owns it. Mixing contexts is a logic
//! error the cache cannot detect.
//!
//! [`ScenarioScorer`]: crate::resilience::ScenarioScorer
//! [`OptimalPlanner`]: crate::baselines::optimal::OptimalPlanner

use std::collections::HashMap;

use crate::allocation::Allocation;

/// Sentinel key entry for an operator the assignment leaves unplaced.
pub const UNPLACED: u32 = u32::MAX;

/// Memoised alive-point counts keyed by effective assignment vectors
/// (`key[j]` = node index of operator `j`, [`UNPLACED`] when absent).
///
/// Lookups and insertions are counted so owners can export hit-rate
/// metrics; see [`ScoreCache::hits`] / [`ScoreCache::misses`].
#[derive(Clone, Debug, Default)]
pub struct ScoreCache {
    map: HashMap<Vec<u32>, usize>,
    hits: u64,
    misses: u64,
}

impl ScoreCache {
    /// An empty cache.
    pub fn new() -> Self {
        ScoreCache::default()
    }

    /// The cache key of a (possibly partial) allocation.
    pub fn key_of(alloc: &Allocation) -> Vec<u32> {
        (0..alloc.num_operators())
            .map(|j| {
                alloc
                    .node_of(crate::ids::OperatorId(j))
                    .map_or(UNPLACED, |n| n.index() as u32)
            })
            .collect()
    }

    /// The memoised count for `key`, recording a hit or miss.
    pub fn get(&mut self, key: &[u32]) -> Option<usize> {
        match self.map.get(key) {
            Some(&alive) => {
                self.hits += 1;
                Some(alive)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoises `alive` for `key`. Re-inserting an existing key replaces
    /// the stored count (identical by construction when the scope rule
    /// in the module docs is respected).
    pub fn insert(&mut self, key: Vec<u32>, alive: usize) {
        self.map.insert(key, alive);
    }

    /// Folds another cache's entries (and lookup counters) into this
    /// one — used to merge worker-local caches after a parallel search.
    /// Both caches must be scoped to the same (model, cluster, point
    /// set); entries are pure under that scope, so on a duplicate key
    /// either value is the same value.
    pub fn absorb(&mut self, other: ScoreCache) {
        self.map.extend(other.map);
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Number of distinct assignments memoised.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been memoised yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to be computed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups answered from the cache (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops all entries and counters, keeping the capacity.
    pub fn clear(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, OperatorId};

    #[test]
    fn get_insert_round_trip_and_counters() {
        let mut cache = ScoreCache::new();
        let key = vec![0u32, 1, UNPLACED];
        assert_eq!(cache.get(&key), None);
        cache.insert(key.clone(), 42);
        assert_eq!(cache.get(&key), Some(42));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-15);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn key_of_encodes_partial_allocations() {
        let mut alloc = Allocation::new(3, 2);
        alloc.assign(OperatorId(0), NodeId(1));
        alloc.assign(OperatorId(2), NodeId(0));
        assert_eq!(ScoreCache::key_of(&alloc), vec![1, UNPLACED, 0]);
    }
}
