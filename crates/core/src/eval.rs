//! Incremental plan evaluation — the shared scoring layer under every
//! planner.
//!
//! The ROD inner loop (§5, Figure 10), the brute-force optimum (§7.3.1),
//! and the headroom/metrics paths all ask the same questions of a
//! *partial* allocation: what are the node load coefficients, the
//! normalised weight rows, and the plane/axis distances — and how would
//! they change if operator `j` moved to node `i`? Rebuilding `L^n` and
//! `W` from scratch for every candidate costs O(n·d) per probe and
//! O(m·n²·d) per placement run. But a single-operator move touches
//! exactly one row of every matrix, so the greedy moves the paper frames
//! placement around are naturally O(d) delta-updates:
//!
//! ```text
//! assign(j → i):   l^n_ik += l^o_jk                          (k = 1..d)
//!                  w_ik    = (l^n_ik / l_k) / (C_i / C_T)
//!                  1/‖W_i‖ recomputed from the one touched row
//! ```
//!
//! [`IncrementalPlanEval`] owns that state and keeps it consistent under
//! [`assign`](IncrementalPlanEval::assign) /
//! [`unassign`](IncrementalPlanEval::unassign), while
//! [`score_candidate`](IncrementalPlanEval::score_candidate) answers the
//! what-if question without mutating anything. A
//! [`snapshot`](IncrementalPlanEval::snapshot) materialises the exact
//! same [`WeightMatrix`] / [`FeasibleRegion`] the from-scratch path
//! produces, so downstream geometry is unchanged.
//!
//! **Sparsity.** Operator load rows come from the model's
//! [`rod_geom::SparseRow`] storage, and each node tracks the sorted
//! *support* of its load row — the columns currently holding a nonzero.
//! Assign, unassign, and candidate scoring then cost O(nnz) instead of
//! O(d'), while staying bit-identical to the dense loops: a column outside
//! the support holds exactly `0.0`, its weight is exactly `+0.0`, and a
//! `+0.0` term never changes an IEEE-754 accumulation that started at
//! `+0.0`. Membership is decided by the *value* of the load cell, not by
//! bookkeeping counts: after an unassign a cell may keep a tiny
//! floating-point residue (`(a+b)−b ≠ a` in general), and the dense
//! reference would fold that residue's weight into the norm — so the
//! support keeps exactly the cells that are nonzero, residues included.
//!
//! [`SampledFeasibility`] is the sampled counterpart for branch-and-bound
//! searches: it tracks, per quasi-Monte-Carlo point, whether any node is
//! over capacity under the current partial assignment. Adding operators
//! only adds load, so the count of surviving points is a monotone upper
//! bound on every completion's feasible-point count — the sound version
//! of "prune when the partial plan is already no better than the
//! incumbent". Kill lists are kept per assignment frame (LIFO), making
//! the bound O(1) to read and O(P) to maintain per move instead of
//! O(P·n·d) to recompute.

use rod_geom::{FeasibleRegion, Matrix, PointBatch, Vector};

use crate::allocation::{Allocation, WeightMatrix};
use crate::cluster::Cluster;
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;

/// What [`IncrementalPlanEval::score_candidate`] reports about a
/// hypothetical single-operator assignment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CandidateScore {
    /// Candidate plane distance of the receiving node: `1/‖W'_i‖₂`, or
    /// `(1 − W'_i·B̃)/‖W'_i‖₂` under a §6.1 lower bound. `+inf` for an
    /// all-zero candidate row.
    pub plane_distance: f64,
    /// True when every candidate weight stays at or below 1 (within the
    /// `1e-12` tolerance) — the node remains **Class I**: its hyperplane
    /// does not cross the ideal hyperplane.
    pub class_one: bool,
}

/// A from-scratch view of the current partial plan, materialised by
/// [`IncrementalPlanEval::snapshot`]. Identical to what
/// [`crate::allocation::PlanEvaluator`] builds for the same allocation.
#[derive(Clone, Debug)]
pub struct PlanSnapshot {
    /// The normalised weight matrix `W` of §3.3.
    pub weights: WeightMatrix,
    /// The exact feasible region `{x ≥ 0 : L^n x ≤ C}`.
    pub region: FeasibleRegion,
}

/// Incrementally-maintained evaluation state for one partial
/// [`Allocation`] of one load model on one cluster.
#[derive(Clone, Debug)]
pub struct IncrementalPlanEval<'a> {
    model: &'a LoadModel,
    cluster: &'a Cluster,
    n: usize,
    d: usize,
    /// Per-node relative capacity `C_i / C_T`.
    rel: Vec<f64>,
    /// Node load coefficients `l^n_ik`, flat n×d.
    ln: Vec<f64>,
    /// Normalised weights `w_ik`, flat n×d, kept consistent with `ln`.
    w: Vec<f64>,
    /// Per-node plane distance `1/‖W_i‖₂` (`+inf` for an empty node).
    plane: Vec<f64>,
    /// Per-node largest weight `max_k w_ik` (0 for an empty node).
    max_w: Vec<f64>,
    /// Per-node sorted column support: exactly the `k` with
    /// `ln[i·d + k] != 0.0`.
    support: Vec<Vec<u32>>,
    /// Normalised §6.1 lower-bound point `B̃`, if configured.
    lower_bound: Option<Vector>,
    alloc: Allocation,
}

impl<'a> IncrementalPlanEval<'a> {
    /// Evaluation state for an empty allocation. Panics on an invalid
    /// cluster (the cluster is part of the problem statement).
    pub fn new(model: &'a LoadModel, cluster: &'a Cluster) -> Self {
        cluster.validate().expect("invalid cluster");
        let n = cluster.num_nodes();
        let d = model.num_vars();
        let ct = cluster.total_capacity();
        let rel = (0..n).map(|i| cluster.capacity(NodeId(i)) / ct).collect();
        IncrementalPlanEval {
            model,
            cluster,
            n,
            d,
            rel,
            ln: vec![0.0; n * d],
            w: vec![0.0; n * d],
            plane: vec![f64::INFINITY; n],
            max_w: vec![0.0; n],
            support: vec![Vec::new(); n],
            lower_bound: None,
            alloc: Allocation::new(model.num_operators(), n),
        }
    }

    /// Evaluation state seeded from an existing (possibly partial)
    /// allocation: operators are re-applied in index order, so the load
    /// sums match the from-scratch accumulation exactly.
    pub fn from_allocation(
        model: &'a LoadModel,
        cluster: &'a Cluster,
        existing: &Allocation,
    ) -> Self {
        assert_eq!(existing.num_operators(), model.num_operators());
        assert_eq!(existing.num_nodes(), cluster.num_nodes());
        let mut eval = IncrementalPlanEval::new(model, cluster);
        for j in 0..model.num_operators() {
            let op = OperatorId(j);
            if let Some(node) = existing.node_of(op) {
                eval.assign(op, node);
            }
        }
        eval
    }

    /// Installs the §6.1 workload lower bound, given on the *system
    /// input* rates. The bound is propagated into variable space and
    /// normalised (`b̃_k = b_k l_k / C_T`); candidate plane distances are
    /// then measured from `B̃` instead of the origin.
    pub fn set_input_lower_bound(&mut self, input_lower_bound: &[f64]) {
        let totals = self.model.total_coeffs();
        let ct = self.cluster.total_capacity();
        let var_b = self.model.variable_point(input_lower_bound);
        self.lower_bound = Some(Vector::new(
            (0..self.d).map(|k| var_b[k] * totals[k] / ct).collect(),
        ));
    }

    /// The model being evaluated.
    pub fn model(&self) -> &LoadModel {
        self.model
    }

    /// The cluster being evaluated against.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// The current partial allocation.
    pub fn allocation(&self) -> &Allocation {
        &self.alloc
    }

    /// Consumes the evaluator, returning the allocation it built.
    pub fn into_allocation(self) -> Allocation {
        self.alloc
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of rate variables `d`.
    pub fn num_vars(&self) -> usize {
        self.d
    }

    /// The current load-coefficient row of one node.
    pub fn node_load_row(&self, node: NodeId) -> &[f64] {
        &self.ln[node.index() * self.d..(node.index() + 1) * self.d]
    }

    /// The current normalised weight row of one node.
    pub fn weight_row(&self, node: NodeId) -> &[f64] {
        &self.w[node.index() * self.d..(node.index() + 1) * self.d]
    }

    /// Plane distance `1/‖W_i‖₂` of one node (`+inf` when empty).
    ///
    /// This is also a rigorous upper bound — in IEEE-754 round-to-nearest,
    /// not merely in exact arithmetic — on the `plane_distance` that
    /// [`Self::score_candidate`] can report for *any* operator on this
    /// node, in both distance modes: candidate weights dominate current
    /// weights componentwise (loads only grow, and every float operation
    /// involved is monotone), so the candidate norm dominates the current
    /// norm, and under a §6.1 bound the numerator `1 − W'·B̃ ≤ 1`. The
    /// pruned phase-2 scan relies on this to skip nodes without scoring
    /// them.
    pub fn plane_distance(&self, node: NodeId) -> f64 {
        self.plane[node.index()]
    }

    /// The MMPD objective `min_i 1/‖W_i‖₂` over the current rows.
    pub fn min_plane_distance(&self) -> f64 {
        self.plane.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Minimum axis distance of one node, `min_k 1/w_ik = 1/max_k w_ik`
    /// (`+inf` when the node carries nothing).
    pub fn axis_distance(&self, node: NodeId) -> f64 {
        let m = self.max_w[node.index()];
        if m == 0.0 {
            f64::INFINITY
        } else {
            1.0 / m
        }
    }

    /// Largest normalised weight across all nodes.
    pub fn max_weight(&self) -> f64 {
        self.max_w.iter().copied().fold(0.0, f64::max)
    }

    /// Largest cached weight of one node (`0` when it carries nothing) —
    /// the cheap Class-I pre-filter of the pruned phase-2 scan: adding an
    /// operator never shrinks a weight, so a node whose current maximum
    /// already exceeds `1 + 1e-12` cannot yield a Class-I candidate.
    pub fn max_weight_of(&self, node: NodeId) -> f64 {
        self.max_w[node.index()]
    }

    /// True when the node's load row is entirely zero (empty support).
    /// All such nodes of equal relative capacity produce identical
    /// candidate scores for a given operator — the pruned phase-2 scan
    /// memoises on this.
    pub fn node_is_unloaded(&self, node: NodeId) -> bool {
        self.support[node.index()].is_empty()
    }

    /// The node's relative capacity `C_i / C_T` exactly as the weight
    /// normalisation uses it — the memo key for unloaded-node candidate
    /// scores, which are a pure function of `(operator, C_i/C_T)`.
    pub fn relative_capacity_of(&self, node: NodeId) -> f64 {
        self.rel[node.index()]
    }

    /// Assigns `op` to `node`, updating only the touched columns of that
    /// node's row (O(nnz of the operator + node support)). Panics if `op`
    /// is already placed — use [`unassign`](Self::unassign) first to model
    /// a move.
    pub fn assign(&mut self, op: OperatorId, node: NodeId) {
        assert!(
            self.alloc.node_of(op).is_none(),
            "operator {op:?} already assigned"
        );
        let i = node.index();
        let row = self.model.operator_sparse_row(op);
        for t in 0..row.nnz() {
            let (k, v) = (row.terms()[t].0 as usize, row.terms()[t].1);
            self.apply_delta(i, k, v);
        }
        self.alloc.assign(op, node);
        self.refresh_node(i);
    }

    /// Removes `op` from `node`, updating only the touched columns of
    /// that node's row (O(nnz of the operator + node support)). Panics
    /// unless `op` currently sits on `node`.
    pub fn unassign(&mut self, op: OperatorId, node: NodeId) {
        assert_eq!(
            self.alloc.node_of(op),
            Some(node),
            "operator {op:?} is not on node {node:?}"
        );
        let i = node.index();
        let row = self.model.operator_sparse_row(op);
        for t in 0..row.nnz() {
            let (k, v) = (row.terms()[t].0 as usize, row.terms()[t].1);
            self.apply_delta(i, k, -v);
        }
        self.alloc.unassign(op);
        self.refresh_node(i);
    }

    /// Adds `delta` to load cell `(i, k)`, recomputes its cached weight,
    /// and keeps the support sorted by cell value (a cell is in the
    /// support iff it is nonzero — including unassign residues, which the
    /// dense reference would also fold into the norm).
    fn apply_delta(&mut self, i: usize, k: usize, delta: f64) {
        let cell = &mut self.ln[i * self.d + k];
        let was_zero = *cell == 0.0;
        *cell += delta;
        let now_zero = *cell == 0.0;
        let lk = self.model.total_coeffs()[k];
        self.w[i * self.d + k] = if lk > 0.0 {
            (*cell / lk) / self.rel[i]
        } else {
            0.0
        };
        let sup = &mut self.support[i];
        if was_zero && !now_zero {
            let pos = sup.partition_point(|&c| (c as usize) < k);
            sup.insert(pos, k as u32);
        } else if !was_zero && now_zero {
            let pos = sup.partition_point(|&c| (c as usize) < k);
            debug_assert_eq!(sup.get(pos), Some(&(k as u32)));
            sup.remove(pos);
        }
    }

    /// Scores the hypothetical assignment of `op` to `node` without
    /// mutating anything: the candidate weight row
    /// `w'_ik = ((l^n_ik + l^o_jk)/l_k)/(C_i/C_T)` is folded — in one
    /// merged ascending walk over the node's support and the operator's
    /// sparse row, O(nnz) — into the Class-I membership test and the
    /// candidate plane distance (measured from the §6.1 lower bound when
    /// one is set). Columns outside both sets would contribute an exact
    /// `+0.0` to every accumulator, so skipping them is bit-identical to
    /// the dense O(d') loop.
    pub fn score_candidate(&self, op: OperatorId, node: NodeId) -> CandidateScore {
        let i = node.index();
        let rel = self.rel[i];
        let totals = self.model.total_coeffs();
        let sup = &self.support[i];
        let terms = self.model.operator_sparse_row(op).terms();
        let mut sumsq = 0.0;
        let mut wb = 0.0;
        let mut class_one = true;
        let (mut a, mut b) = (0usize, 0usize);
        loop {
            let k = match (sup.get(a), terms.get(b)) {
                (Some(&ks), Some(&(kt, _))) => (ks as usize).min(kt as usize),
                (Some(&ks), None) => ks as usize,
                (None, Some(&(kt, _))) => kt as usize,
                (None, None) => break,
            };
            if sup.get(a) == Some(&(k as u32)) {
                a += 1;
            }
            let mut lo_v = 0.0;
            if let Some(&(kt, v)) = terms.get(b) {
                if kt as usize == k {
                    lo_v = v;
                    b += 1;
                }
            }
            let lk = totals[k];
            let w = if lk > 0.0 {
                ((self.ln[i * self.d + k] + lo_v) / lk) / rel
            } else {
                0.0
            };
            if w > 1.0 + 1e-12 {
                class_one = false;
            }
            sumsq += w * w;
            if let Some(bnd) = &self.lower_bound {
                wb += w * bnd[k];
            }
        }
        let norm = sumsq.sqrt();
        let plane_distance = if norm == 0.0 {
            f64::INFINITY
        } else {
            match &self.lower_bound {
                None => 1.0 / norm,
                Some(_) => (1.0 - wb) / norm,
            }
        };
        CandidateScore {
            plane_distance,
            class_one,
        }
    }

    /// The node load-coefficient matrix `L^n` as a dense matrix.
    pub fn node_load_matrix(&self) -> Matrix {
        let mut ln = Matrix::zeros(self.n, self.d);
        for i in 0..self.n {
            ln.row_mut(i)
                .copy_from_slice(&self.ln[i * self.d..(i + 1) * self.d]);
        }
        ln
    }

    /// Materialises the from-scratch view of the current plan: the
    /// [`WeightMatrix`] and [`FeasibleRegion`] are built through the same
    /// constructors the non-incremental path uses, so every downstream
    /// consumer sees identical numbers.
    pub fn snapshot(&self) -> PlanSnapshot {
        let ln = self.node_load_matrix();
        let weights = WeightMatrix::new(&ln, self.model.total_coeffs(), self.cluster);
        let region = FeasibleRegion::new(ln, self.cluster.capacities());
        PlanSnapshot { weights, region }
    }

    /// Rebuilds the cached plane distance and max weight of one node from
    /// its current weight row, walking the support columns ascending
    /// (O(support)). Weights outside the support are exactly `+0.0`, so
    /// their squared terms never change the accumulation and the result
    /// is bit-identical to the dense O(d) sweep.
    fn refresh_node(&mut self, i: usize) {
        let mut sumsq = 0.0;
        let mut max_w = 0.0f64;
        for &k in &self.support[i] {
            let w = self.w[i * self.d + k as usize];
            sumsq += w * w;
            max_w = max_w.max(w);
        }
        let norm = sumsq.sqrt();
        self.plane[i] = if norm == 0.0 {
            f64::INFINITY
        } else {
            1.0 / norm
        };
        self.max_w[i] = max_w;
    }
}

/// Incrementally-maintained feasibility of a quasi-Monte-Carlo point set
/// under a partial assignment — the sampled-volume side of the
/// evaluation layer, built for branch-and-bound searches.
///
/// A point survives while **every** node's load at that point stays
/// within capacity. Assigning an operator only adds load, so points only
/// die as the assignment grows; [`SampledFeasibility::alive_count`] is
/// therefore a monotone upper bound on the feasible-point count of every
/// completion of the current partial plan. Each
/// [`push_assign`](SampledFeasibility::push_assign) records exactly which
/// points it killed so the matching
/// [`pop_assign`](SampledFeasibility::pop_assign) revives them — frames
/// must nest LIFO, which is precisely the shape of a depth-first search.
///
/// Pops restore the touched node's load row from a saved byte-exact
/// copy rather than subtracting the deltas back out: floating-point
/// subtraction is not an exact inverse of addition (`(a+d)-d ≠ a` in
/// general), so a subtract-based unwind would leave history-dependent
/// residues in `node_loads`. With exact restore, the tracker state is a
/// pure function of the active frame stack — two instances that pushed
/// the same frames hold bit-identical state regardless of what either
/// explored and unwound in between, which is what lets parallel workers
/// on cloned trackers stay bit-identical to the serial search.
#[derive(Clone, Debug)]
pub struct SampledFeasibility {
    num_points: usize,
    /// Per-operator load at each point, flat m×P: `op_loads[j·P + p] =
    /// L^o_j · x_p`. Precomputed once so a move costs O(P), not O(P·d).
    op_loads: Vec<f64>,
    /// Current load of each node at each point, flat n×P.
    node_loads: Vec<f64>,
    caps: Vec<f64>,
    alive: Vec<bool>,
    alive_count: usize,
    /// Indices of killed points, partitioned into frames by `marks`.
    killed: Vec<u32>,
    marks: Vec<usize>,
    /// `(op, node)` of each active frame, for LIFO discipline checks.
    frames: Vec<(u32, u32)>,
    /// Stack of saved P-float node-load rows, one per active frame —
    /// the pre-push contents of the pushed node's row, restored
    /// verbatim on pop.
    saved_rows: Vec<f64>,
}

impl SampledFeasibility {
    /// Builds the tracker for `lo` (m×d operator load coefficients),
    /// a shared QMC `points` set, and per-node `caps`.
    pub fn new(lo: &Matrix, points: &[Vector], caps: &[f64]) -> Self {
        SampledFeasibility::from_batch(lo, &PointBatch::from_points(points), caps)
    }

    /// [`new`](Self::new) over an already-transposed column store —
    /// callers holding a [`rod_geom::VolumeEstimator`] can pass its
    /// [`batch`](rod_geom::VolumeEstimator::batch) and skip the O(P·d)
    /// re-transpose. The per-operator load table is accumulated
    /// column-wise via [`PointBatch::dot_into`], which keeps the exact
    /// per-point operand order of the scalar dot product, so every load —
    /// and every kill decision derived from one — is bit-identical to the
    /// row-major construction.
    pub fn from_batch(lo: &Matrix, batch: &PointBatch, caps: &[f64]) -> Self {
        let m = lo.rows();
        let p = batch.num_points();
        let mut op_loads = vec![0.0; m * p];
        if p > 0 {
            for j in 0..m {
                batch.dot_into(lo.row(j), &mut op_loads[j * p..(j + 1) * p]);
            }
        }
        SampledFeasibility {
            num_points: p,
            op_loads,
            node_loads: vec![0.0; caps.len() * p],
            caps: caps.to_vec(),
            alive: vec![true; p],
            alive_count: p,
            killed: Vec::new(),
            marks: Vec::new(),
            frames: Vec::new(),
            saved_rows: Vec::new(),
        }
    }

    /// Number of points still feasible under the current partial
    /// assignment — the branch-and-bound upper bound, O(1).
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Total number of points tracked.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Applies "operator `op` on node `node`", killing the alive points
    /// the move pushes over capacity. O(P).
    pub fn push_assign(&mut self, op: usize, node: usize) {
        self.marks.push(self.killed.len());
        self.frames.push((op as u32, node as u32));
        let p = self.num_points;
        self.saved_rows
            .extend_from_slice(&self.node_loads[node * p..(node + 1) * p]);
        let cap = self.caps[node] + 1e-12;
        let loads = &mut self.node_loads[node * p..(node + 1) * p];
        let deltas = &self.op_loads[op * p..(op + 1) * p];
        for pi in 0..p {
            loads[pi] += deltas[pi];
            if self.alive[pi] && loads[pi] > cap {
                self.alive[pi] = false;
                self.alive_count -= 1;
                self.killed.push(pi as u32);
            }
        }
    }

    /// Reverts the most recent un-popped [`push_assign`](Self::push_assign)
    /// (which must have been for the same `op`/`node` — frames are LIFO),
    /// reviving exactly the points that move killed and restoring the
    /// node's load row to its exact pre-push bits (see the type docs for
    /// why restore beats subtracting the deltas back out). O(P).
    pub fn pop_assign(&mut self, op: usize, node: usize) {
        let mark = self.marks.pop().expect("pop without matching push");
        let frame = self.frames.pop().expect("pop without matching push");
        assert_eq!(
            frame,
            (op as u32, node as u32),
            "pop_assign must mirror push_assign LIFO"
        );
        for &pi in &self.killed[mark..] {
            self.alive[pi as usize] = true;
            self.alive_count += 1;
        }
        self.killed.truncate(mark);
        let p = self.num_points;
        let saved_at = self.saved_rows.len() - p;
        self.node_loads[node * p..(node + 1) * p].copy_from_slice(&self.saved_rows[saved_at..]);
        self.saved_rows.truncate(saved_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::PlanEvaluator;
    use crate::examples_paper::{example2_plans, figure4_graph};
    use rod_geom::VolumeEstimator;

    fn setup() -> (LoadModel, Cluster) {
        (
            LoadModel::derive(&figure4_graph()).unwrap(),
            Cluster::homogeneous(2, 1.0),
        )
    }

    #[test]
    fn snapshot_matches_plan_evaluator_exactly() {
        let (model, cluster) = setup();
        let [a, b, c] = example2_plans();
        let ev = PlanEvaluator::new(&model, &cluster);
        for alloc in [&a, &b, &c] {
            let eval = IncrementalPlanEval::from_allocation(&model, &cluster, alloc);
            let snap = eval.snapshot();
            assert_eq!(snap.weights.matrix(), ev.weight_matrix(alloc).matrix());
            assert_eq!(
                snap.region.coefficients,
                ev.feasible_region(alloc).coefficients
            );
            assert_eq!(eval.min_plane_distance(), ev.min_plane_distance(alloc));
        }
    }

    #[test]
    fn assign_updates_only_touched_row() {
        let (model, cluster) = setup();
        let mut eval = IncrementalPlanEval::new(&model, &cluster);
        eval.assign(OperatorId(0), NodeId(0));
        // o0 loads stream 1 with coefficient 4: w_00 = (4/10)/(1/2) = 0.8.
        assert!((eval.weight_row(NodeId(0))[0] - 0.8).abs() < 1e-15);
        assert_eq!(eval.weight_row(NodeId(1)), &[0.0, 0.0]);
        assert_eq!(eval.plane_distance(NodeId(1)), f64::INFINITY);
    }

    #[test]
    fn unassign_restores_exactly_on_integer_loads() {
        // Figure 4 load coefficients are small integers, so += then -=
        // is exact and the state must match the never-assigned one.
        let (model, cluster) = setup();
        let mut eval = IncrementalPlanEval::new(&model, &cluster);
        let fresh = eval.clone();
        eval.assign(OperatorId(2), NodeId(1));
        eval.assign(OperatorId(0), NodeId(1));
        eval.unassign(OperatorId(0), NodeId(1));
        eval.unassign(OperatorId(2), NodeId(1));
        assert_eq!(eval.ln, fresh.ln);
        assert_eq!(eval.w, fresh.w);
        assert_eq!(eval.plane, fresh.plane);
        assert_eq!(eval.allocation(), fresh.allocation());
    }

    #[test]
    fn score_candidate_agrees_with_commit() {
        let (model, cluster) = setup();
        let mut eval = IncrementalPlanEval::new(&model, &cluster);
        eval.assign(OperatorId(2), NodeId(0));
        for op in [OperatorId(1), OperatorId(3)] {
            for node in 0..2 {
                let score = eval.score_candidate(op, NodeId(node));
                let mut probe = eval.clone();
                probe.assign(op, NodeId(node));
                assert_eq!(
                    score.plane_distance,
                    probe.plane_distance(NodeId(node)),
                    "op {op:?} node {node}"
                );
                let committed_max: f64 = probe
                    .weight_row(NodeId(node))
                    .iter()
                    .copied()
                    .fold(0.0, f64::max);
                assert_eq!(score.class_one, committed_max <= 1.0 + 1e-12);
            }
        }
    }

    /// The dense O(d') reference loop the sparse merged walk replaced —
    /// kept verbatim so the bit-identity claim stays executable.
    fn dense_reference_score(
        eval: &IncrementalPlanEval<'_>,
        op: OperatorId,
        node: NodeId,
    ) -> CandidateScore {
        let i = node.index();
        let rel = eval.rel[i];
        let totals = eval.model.total_coeffs();
        let lo_row = eval.model.operator_row(op);
        let mut sumsq = 0.0;
        let mut wb = 0.0;
        let mut class_one = true;
        for k in 0..eval.d {
            let lk = totals[k];
            let w = if lk > 0.0 {
                ((eval.ln[i * eval.d + k] + lo_row[k]) / lk) / rel
            } else {
                0.0
            };
            if w > 1.0 + 1e-12 {
                class_one = false;
            }
            sumsq += w * w;
            if let Some(b) = &eval.lower_bound {
                wb += w * b[k];
            }
        }
        let norm = sumsq.sqrt();
        let plane_distance = if norm == 0.0 {
            f64::INFINITY
        } else {
            match &eval.lower_bound {
                None => 1.0 / norm,
                Some(_) => (1.0 - wb) / norm,
            }
        };
        CandidateScore {
            plane_distance,
            class_one,
        }
    }

    #[test]
    fn sparse_score_matches_dense_reference_bitwise() {
        // Drive both graphs (pure linear and join/variable-selectivity)
        // through assign/unassign churn, comparing the sparse merged walk
        // against the dense reference at every (op, node) — including
        // after unassigns, which may leave floating-point residues in the
        // load cells.
        for (graph, caps) in [
            (figure4_graph(), vec![1.0, 1.0, 1.0]),
            (crate::examples_paper::example3_graph(), vec![2.0, 1.0, 0.5]),
        ] {
            let model = LoadModel::derive(&graph).unwrap();
            let cluster = Cluster::heterogeneous(caps);
            let m = model.num_operators();
            let n = cluster.num_nodes();
            for bounded in [false, true] {
                let mut eval = IncrementalPlanEval::new(&model, &cluster);
                if bounded {
                    eval.set_input_lower_bound(&vec![0.01; model.num_inputs()]);
                }
                let check_all = |eval: &IncrementalPlanEval<'_>| {
                    for j in 0..m {
                        for i in 0..n {
                            if eval.allocation().node_of(OperatorId(j)).is_some() {
                                continue;
                            }
                            let got = eval.score_candidate(OperatorId(j), NodeId(i));
                            let want = dense_reference_score(eval, OperatorId(j), NodeId(i));
                            assert_eq!(
                                got.plane_distance.to_bits(),
                                want.plane_distance.to_bits(),
                                "op {j} node {i} bounded {bounded}"
                            );
                            assert_eq!(got.class_one, want.class_one);
                        }
                    }
                };
                check_all(&eval);
                for j in 0..m {
                    eval.assign(OperatorId(j), NodeId(j % n));
                    check_all(&eval);
                }
                for j in (0..m).step_by(2) {
                    eval.unassign(OperatorId(j), NodeId(j % n));
                    check_all(&eval);
                }
            }
        }
    }

    #[test]
    fn support_tracks_nonzero_cells_and_unload_flag() {
        let (model, cluster) = setup();
        let mut eval = IncrementalPlanEval::new(&model, &cluster);
        assert!(eval.node_is_unloaded(NodeId(0)));
        eval.assign(OperatorId(0), NodeId(0));
        assert!(!eval.node_is_unloaded(NodeId(0)));
        assert_eq!(eval.support[0], vec![0]);
        assert_eq!(eval.max_weight_of(NodeId(0)), eval.weight_row(NodeId(0))[0]);
        eval.unassign(OperatorId(0), NodeId(0));
        // Integer loads cancel exactly, so the support empties again.
        assert!(eval.node_is_unloaded(NodeId(0)));
        assert_eq!(eval.max_weight_of(NodeId(0)), 0.0);
    }

    #[test]
    fn lower_bound_shrinks_candidate_distances() {
        let (model, cluster) = setup();
        let mut plain = IncrementalPlanEval::new(&model, &cluster);
        let mut bounded = IncrementalPlanEval::new(&model, &cluster);
        bounded.set_input_lower_bound(&[0.02, 0.02]);
        plain.assign(OperatorId(2), NodeId(0));
        bounded.assign(OperatorId(2), NodeId(0));
        let p = plain.score_candidate(OperatorId(1), NodeId(0));
        let b = bounded.score_candidate(OperatorId(1), NodeId(0));
        assert!(b.plane_distance < p.plane_distance);
    }

    #[test]
    fn axis_and_max_weight_track_weight_matrix() {
        let (model, cluster) = setup();
        let [a, _, _] = example2_plans();
        let eval = IncrementalPlanEval::from_allocation(&model, &cluster, &a);
        let w = eval.snapshot().weights;
        assert_eq!(eval.max_weight(), w.max_weight());
        // Node 1 of plan (a) has weights (1.2, 18/11): min axis distance
        // is 11/18.
        assert!((eval.axis_distance(NodeId(1)) - 11.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_feasibility_matches_fresh_counts() {
        let (model, cluster) = setup();
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            4_000,
            3,
        );
        let caps = cluster.capacities();
        let mut feas = SampledFeasibility::new(model.lo(), estimator.points(), caps.as_slice());
        let ev = PlanEvaluator::new(&model, &cluster);

        let fresh_count = |alloc: &Allocation| -> usize {
            let region = ev.feasible_region(alloc);
            estimator
                .points()
                .iter()
                .filter(|p| region.contains(p))
                .count()
        };

        assert_eq!(feas.alive_count(), 4_000);
        // Walk a nested assign/rollback sequence and compare against the
        // from-scratch count at every step.
        let mut alloc = Allocation::new(model.num_operators(), 2);
        feas.push_assign(2, 1);
        alloc.assign(OperatorId(2), NodeId(1));
        assert_eq!(feas.alive_count(), fresh_count(&alloc));
        feas.push_assign(1, 1);
        alloc.assign(OperatorId(1), NodeId(1));
        assert_eq!(feas.alive_count(), fresh_count(&alloc));
        feas.pop_assign(1, 1);
        feas.push_assign(1, 0);
        alloc.assign(OperatorId(1), NodeId(0));
        assert_eq!(feas.alive_count(), fresh_count(&alloc));
        feas.push_assign(0, 0);
        feas.push_assign(3, 1);
        alloc.assign(OperatorId(0), NodeId(0));
        alloc.assign(OperatorId(3), NodeId(1));
        assert_eq!(feas.alive_count(), fresh_count(&alloc));
        // Unwind completely: every point revives.
        feas.pop_assign(3, 1);
        feas.pop_assign(0, 0);
        feas.pop_assign(1, 0);
        feas.pop_assign(2, 1);
        assert_eq!(feas.alive_count(), 4_000);
    }

    /// Unwinding must leave the tracker *bit-identical* to one that
    /// never explored at all — `(a+d)-d ≠ a` in floating point, so this
    /// only holds because `pop_assign` restores saved rows instead of
    /// subtracting deltas. Parallel planner workers rely on it: each
    /// clones a pristine tracker and must stay interchangeable with the
    /// serial one between neighborhood scans.
    #[test]
    fn pop_assign_restores_pristine_bits() {
        let (model, cluster) = setup();
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            2_000,
            3,
        );
        let caps = cluster.capacities();
        let mut feas = SampledFeasibility::new(model.lo(), estimator.points(), caps.as_slice());
        let pristine = feas.clone();
        for _ in 0..3 {
            feas.push_assign(2, 1);
            feas.push_assign(1, 1);
            feas.push_assign(0, 0);
            feas.pop_assign(0, 0);
            feas.pop_assign(1, 1);
            feas.pop_assign(2, 1);
        }
        assert_eq!(feas.alive_count(), pristine.alive_count());
        assert_eq!(feas.alive, pristine.alive);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&feas.node_loads),
            bits(&pristine.node_loads),
            "unwind left floating-point residue in node_loads"
        );
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn pop_assign_rejects_out_of_order_frames() {
        let (model, cluster) = setup();
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            100,
            3,
        );
        let caps = cluster.capacities();
        let mut feas = SampledFeasibility::new(model.lo(), estimator.points(), caps.as_slice());
        feas.push_assign(0, 0);
        feas.push_assign(1, 1);
        feas.pop_assign(0, 0);
    }
}
