//! Zero-dependency observability: a process-local metrics registry.
//!
//! The experiment harness, the planners, and the CLI all want the same
//! three primitives — monotone **counters**, last-value **gauges**, and
//! **histograms** — without pulling an external metrics stack into the
//! build. [`MetricsRegistry`] provides them behind a `&self` API (a
//! `Mutex` guards the interior) so a single registry can be threaded
//! through planner call chains that only hold shared references.
//!
//! Histograms keep three complementary backends per name:
//!
//! * a Welford [`OnlineStats`] accumulator for mean/min/max,
//! * a capped exact-sample reservoir (first [`MAX_EXACT_SAMPLES`]
//!   observations) from which [`Percentiles`] answers quantile queries,
//! * fixed log₂-spaced buckets covering `2⁻³⁰ .. 2³³` seconds-ish scales
//!   so even long runs that overflow the reservoir keep a shape.
//!
//! [`MetricsRegistry::snapshot`] freezes everything into a
//! serde-serialisable [`MetricsSnapshot`] with entries sorted by name, so
//! two snapshots of identical histories serialise identically.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use rod_geom::{OnlineStats, Percentiles};
use serde::{Deserialize, Serialize};

/// Exact observations kept per histogram for quantile queries; beyond
/// this the buckets and the Welford accumulator still see every value.
pub const MAX_EXACT_SAMPLES: usize = 65_536;

/// Number of log₂-spaced histogram buckets (plus implicit under/overflow
/// clamping into the first/last bucket).
const NUM_BUCKETS: usize = 64;

/// Smallest bucket exponent: bucket 0 holds values below `2^-30`.
const MIN_EXP: i32 = -30;

#[derive(Clone, Debug)]
struct Histogram {
    stats: OnlineStats,
    samples: Vec<f64>,
    buckets: Vec<u64>,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            // OnlineStats::new(), not ::default(): the derived default
            // zeroes min/max instead of the ±inf sentinels.
            stats: OnlineStats::new(),
            samples: Vec::new(),
            buckets: Vec::new(),
        }
    }

    fn observe(&mut self, x: f64) {
        self.stats.push(x);
        if self.samples.len() < MAX_EXACT_SAMPLES {
            self.samples.push(x);
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
        }
        let idx = if x <= 0.0 {
            0
        } else {
            (x.log2().floor() as i32 - MIN_EXP).clamp(0, NUM_BUCKETS as i32 - 1) as usize
        };
        self.buckets[idx] += 1;
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A process-local metrics registry: counters, gauges, and histograms
/// addressed by dotted string names (`"rod.phase1_seconds"`).
///
/// Interior-mutable so it threads through `&self` planner APIs; cloneable
/// snapshots decouple reporting from collection.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry only means a panic elsewhere mid-update;
        // metrics are best-effort, so keep serving the data we have.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Increments the counter `name` by 1.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the counter `name` (created at 0 on first use).
    pub fn add(&self, name: &str, n: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Records one observation into the histogram `name`. Non-finite
    /// values are dropped (and counted under `obs.dropped_nonfinite`) so
    /// a stray NaN cannot poison the accumulators.
    pub fn observe(&self, name: &str, value: f64) {
        if !value.is_finite() {
            self.incr("obs.dropped_nonfinite");
            return;
        }
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    /// Runs `f`, recording its wall-clock duration in seconds as one
    /// observation of the histogram `name`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.observe(name, start.elapsed().as_secs_f64());
        out
    }

    /// Current value of a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever written.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        let inner = self.lock();
        inner.counters.is_empty() && inner.gauges.is_empty() && inner.histograms.is_empty()
    }

    /// Freezes the registry into a serialisable, name-sorted snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, &value)| CounterEntry {
                    name: name.clone(),
                    value,
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, &value)| GaugeEntry {
                    name: name.clone(),
                    value,
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| {
                    let pct = Percentiles::from_samples(h.samples.clone());
                    HistogramEntry {
                        name: name.clone(),
                        count: h.stats.count(),
                        mean: h.stats.mean(),
                        min: h.stats.min(),
                        max: h.stats.max(),
                        p50: pct.quantile(0.50),
                        p95: pct.quantile(0.95),
                        p99: pct.quantile(0.99),
                        buckets: h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|&(_, &count)| count > 0)
                            .map(|(i, &count)| BucketCount {
                                le: if i == NUM_BUCKETS - 1 {
                                    f64::MAX
                                } else {
                                    f64::powi(2.0, MIN_EXP + 1 + i as i32)
                                },
                                count,
                            })
                            .collect(),
                    }
                })
                .collect(),
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric name.
    pub name: String,
    /// Cumulative count.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric name.
    pub name: String,
    /// Last written value.
    pub value: f64,
}

/// One non-empty log₂ bucket: `count` observations at most `le`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: f64,
    /// Observations that fell into it.
    pub count: u64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Metric name.
    pub name: String,
    /// Total observations (including those past the exact-sample cap).
    pub count: u64,
    /// Mean over all observations.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median over the exact-sample reservoir.
    pub p50: Option<f64>,
    /// 95th percentile over the exact-sample reservoir.
    pub p95: Option<f64>,
    /// 99th percentile over the exact-sample reservoir.
    pub p99: Option<f64>,
    /// Non-empty log₂-spaced buckets.
    pub buckets: Vec<BucketCount>,
}

/// A frozen, serialisable view of a [`MetricsRegistry`]; entries are
/// sorted by name so identical histories serialise identically.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterEntry>,
    /// All gauges, name-sorted.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms, name-sorted.
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsSnapshot {
    /// Renders a compact human-readable report (used by
    /// `rodctl plan --timings`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!("{:<42} {}\n", c.name, c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("{:<42} {:.6}\n", g.name, g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "{:<42} n={} mean={:.6} min={:.6} max={:.6}",
                h.name, h.count, h.mean, h.min, h.max
            ));
            if let (Some(p50), Some(p99)) = (h.p50, h.p99) {
                out.push_str(&format!(" p50={p50:.6} p99={p99:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Attributes thread-pool work to one phase by diffing two
/// [`rod_pool::PoolStats`] snapshots taken around it: `pool.tasks_executed`
/// (counter, jobs run during the phase), `pool.worker_busy_seconds`
/// (gauge, summed worker wall-clock inside jobs — can exceed elapsed
/// time when several workers run), `pool.workers` and `pool.queue_peak`
/// (gauges, pool-lifetime values). All surface through
/// [`MetricsSnapshot::render`] like every other metric.
pub fn record_pool_delta(
    metrics: &MetricsRegistry,
    before: &rod_pool::PoolStats,
    after: &rod_pool::PoolStats,
) {
    metrics.add(
        "pool.tasks_executed",
        after.tasks_executed.saturating_sub(before.tasks_executed),
    );
    metrics.set_gauge(
        "pool.worker_busy_seconds",
        (after.busy_seconds - before.busy_seconds).max(0.0),
    );
    metrics.set_gauge("pool.workers", after.workers as f64);
    metrics.set_gauge("pool.queue_peak", after.queue_peak as f64);
}

/// Attributes feasibility-kernel work to one phase by diffing two
/// [`rod_geom::KernelPathCounts`] snapshots (from
/// `rod_geom::simd::path_counts()`) taken around it. Four counters
/// surface through [`MetricsSnapshot::render`]: `kernel.simd_blocks` /
/// `kernel.scalar_blocks` (point blocks scored by each path) and
/// `kernel.simd_dot_rows` / `kernel.scalar_dot_rows` (`dot_into` rows
/// accumulated by each path). A planning run on an AVX2 host with
/// SIMD enabled reports zero scalar blocks; under `ROD_NO_SIMD=1` (or
/// on hosts without AVX2) the SIMD counters stay zero — which is what
/// the forced-path tests assert.
pub fn record_kernel_path(
    metrics: &MetricsRegistry,
    before: &rod_geom::KernelPathCounts,
    after: &rod_geom::KernelPathCounts,
) {
    metrics.add(
        "kernel.simd_blocks",
        after.simd_blocks.saturating_sub(before.simd_blocks),
    );
    metrics.add(
        "kernel.scalar_blocks",
        after.scalar_blocks.saturating_sub(before.scalar_blocks),
    );
    metrics.add(
        "kernel.simd_dot_rows",
        after.simd_dot_rows.saturating_sub(before.simd_dot_rows),
    );
    metrics.add(
        "kernel.scalar_dot_rows",
        after.scalar_dot_rows.saturating_sub(before.scalar_dot_rows),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_delta_surfaces_through_render() {
        let m = MetricsRegistry::new();
        let before = rod_pool::PoolStats {
            workers: 2,
            tasks_executed: 10,
            busy_seconds: 1.0,
            queue_peak: 3,
        };
        let after = rod_pool::PoolStats {
            workers: 2,
            tasks_executed: 16,
            busy_seconds: 1.5,
            queue_peak: 4,
        };
        record_pool_delta(&m, &before, &after);
        assert_eq!(m.counter("pool.tasks_executed"), 6);
        assert!((m.gauge("pool.worker_busy_seconds").unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(m.gauge("pool.workers"), Some(2.0));
        let rendered = m.snapshot().render();
        assert!(rendered.contains("pool.tasks_executed"));
        assert!(rendered.contains("pool.worker_busy_seconds"));
    }

    #[test]
    fn kernel_path_delta_surfaces_through_render() {
        let m = MetricsRegistry::new();
        let before = rod_geom::KernelPathCounts {
            simd_blocks: 5,
            scalar_blocks: 2,
            simd_dot_rows: 100,
            scalar_dot_rows: 40,
        };
        let after = rod_geom::KernelPathCounts {
            simd_blocks: 12,
            scalar_blocks: 2,
            simd_dot_rows: 160,
            scalar_dot_rows: 43,
        };
        record_kernel_path(&m, &before, &after);
        assert_eq!(m.counter("kernel.simd_blocks"), 7);
        assert_eq!(m.counter("kernel.scalar_blocks"), 0);
        assert_eq!(m.counter("kernel.simd_dot_rows"), 60);
        assert_eq!(m.counter("kernel.scalar_dot_rows"), 3);
        let rendered = m.snapshot().render();
        assert!(rendered.contains("kernel.simd_blocks"));
        assert!(rendered.contains("kernel.scalar_dot_rows"));
    }

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.incr("a");
        m.add("a", 4);
        m.incr("b");
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("b"), 1);
        assert_eq!(m.counter("missing"), 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge("g"), None);
        m.set_gauge("g", 1.5);
        m.set_gauge("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
    }

    #[test]
    fn histogram_summary() {
        let m = MetricsRegistry::new();
        for i in 1..=100 {
            m.observe("h", i as f64);
        }
        let snap = m.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        let h = &snap.histograms[0];
        assert_eq!(h.name, "h");
        assert_eq!(h.count, 100);
        assert!((h.mean - 50.5).abs() < 1e-9);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.p50.unwrap() - 50.5).abs() < 1e-9);
        let bucketed: u64 = h.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucketed, 100);
    }

    #[test]
    fn nonfinite_observations_are_dropped() {
        let m = MetricsRegistry::new();
        m.observe("h", f64::NAN);
        m.observe("h", f64::INFINITY);
        m.observe("h", 1.0);
        let snap = m.snapshot();
        let h = snap.histograms.iter().find(|h| h.name == "h").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(m.counter("obs.dropped_nonfinite"), 2);
    }

    #[test]
    fn time_records_a_duration() {
        let m = MetricsRegistry::new();
        let out = m.time("t", || 42);
        assert_eq!(out, 42);
        let snap = m.snapshot();
        let h = snap.histograms.iter().find(|h| h.name == "t").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.min >= 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let build = || {
            let m = MetricsRegistry::new();
            m.incr("z");
            m.incr("a");
            m.set_gauge("mid", 3.0);
            m.observe("lat", 0.25);
            m.observe("lat", 0.75);
            serde_json::to_string(&m.snapshot()).unwrap()
        };
        let one = build();
        let two = build();
        assert_eq!(one, two);
        let names_in_order = one.find("\"a\"").unwrap() < one.find("\"z\"").unwrap();
        assert!(names_in_order, "counter entries must be name-sorted");
    }

    #[test]
    fn zero_and_negative_values_bucket_safely() {
        let m = MetricsRegistry::new();
        m.observe("h", 0.0);
        m.observe("h", -3.0);
        m.observe("h", 1e300);
        let snap = m.snapshot();
        let h = snap.histograms.iter().find(|h| h.name == "h").unwrap();
        assert_eq!(h.count, 3);
        let bucketed: u64 = h.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucketed, 3);
    }
}
