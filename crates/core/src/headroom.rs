//! Burst-headroom analysis.
//!
//! The feasible-set volume is the paper's *global* resilience metric; an
//! operator of a running system asks the *local* question: "we are at
//! rate point `R` right now — how big a burst can this placement absorb
//! before some node saturates?" Exact answers fall out of the hyperplane
//! geometry by ray casting (no sampling):
//!
//! * **per-stream headroom** — the largest multiplier `m_k` such that
//!   scaling stream `k` alone to `m_k·r_k` stays feasible;
//! * **uniform headroom** — the largest `m` such that `m·R` stays
//!   feasible (the distance to the boundary along the current mix);
//! * the **binding node** for each direction — which machine saturates
//!   first, i.e. where capacity should be added.
//!
//! Used by `rodctl explain`, the `burst_resilience` example, and the
//! plan-comparison tests.

use serde::{Deserialize, Serialize};

use rod_geom::Vector;

use crate::allocation::{Allocation, PlanEvaluator};
use crate::ids::NodeId;

/// Exact headroom of one plan at one operating point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HeadroomReport {
    /// The operating point analysed (system-input rates).
    pub base_rates: Vec<f64>,
    /// Largest feasible multiplier of each input stream alone
    /// (∞ when the stream loads nothing).
    pub per_stream: Vec<f64>,
    /// Largest feasible multiplier of the whole rate vector.
    pub uniform: f64,
    /// The node that saturates first under uniform scaling.
    pub binding_node: NodeId,
}

impl HeadroomReport {
    /// The most fragile stream: the one with the smallest solo-burst
    /// multiplier. `None` for a zero-dimensional report.
    pub fn tightest_stream(&self) -> Option<(usize, f64)> {
        self.per_stream
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Computes the exact headroom of `alloc` at `base_rates`.
///
/// Introduced (linearised) variables scale with their upstream inputs:
/// directions are built by perturbing one input and re-propagating, so a
/// join's output rate responds super-linearly exactly as in the true
/// system. Directions are the *limits* of finite perturbations, computed
/// with a small finite difference — exact for linear graphs, first-order
/// for join outputs (conservative within a few percent for realistic
/// windows).
pub fn headroom(ev: &PlanEvaluator<'_>, alloc: &Allocation, base_rates: &[f64]) -> HeadroomReport {
    let model = ev.model();
    assert_eq!(base_rates.len(), model.num_inputs());
    // One pass through the evaluation layer supplies both the exact
    // region (for ray casting) and the node load rows (for the binding
    // node) without rebuilding matrices twice.
    let eval = ev.incremental(alloc);
    let region = eval.snapshot().region;
    let base_point = model.variable_point(base_rates);

    // Per-stream: direction = d(variable point)/d(rate_k), finite diff.
    let eps = 1e-6;
    let mut per_stream = Vec::with_capacity(base_rates.len());
    for k in 0..base_rates.len() {
        let mut bumped = base_rates.to_vec();
        let step = (base_rates[k].abs() + 1.0) * eps;
        bumped[k] += step;
        let bumped_point = model.variable_point(&bumped);
        let direction = Vector::new(
            bumped_point
                .as_slice()
                .iter()
                .zip(base_point.as_slice())
                .map(|(b, a)| (b - a) / step)
                .collect(),
        );
        let alpha = region.max_scale_along(&base_point, &direction);
        // alpha is extra *rate* on stream k; convert to a multiplier.
        let multiplier = if base_rates[k] > 0.0 {
            1.0 + alpha / base_rates[k]
        } else {
            f64::INFINITY
        };
        per_stream.push(multiplier);
    }

    // Uniform: direction = the base variable point itself (for linear
    // graphs scaling all inputs by m scales every variable by m; for
    // joins the true response is steeper, making this slightly
    // optimistic — callers probing joins should verify with
    // `is_feasible_at`, as the tests do).
    let alpha = region.max_scale_along(&base_point, &base_point);
    let uniform = 1.0 + alpha;

    // Binding node under uniform scaling: the argmin of slack/load.
    let caps = ev.cluster().capacities();
    let binding_node = (0..eval.num_nodes())
        .filter_map(|i| {
            let load: f64 = eval
                .node_load_row(NodeId(i))
                .iter()
                .zip(base_point.as_slice())
                .map(|(l, x)| l * x)
                .sum();
            (load > 0.0).then_some((i, caps[i] / load))
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(i, _)| NodeId(i))
        .unwrap_or(NodeId(0));

    HeadroomReport {
        base_rates: base_rates.to_vec(),
        per_stream,
        uniform,
        binding_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::examples_paper::{example2_plans, figure4_graph};
    use crate::load_model::LoadModel;
    use crate::rod::RodPlanner;

    #[test]
    fn headroom_matches_hand_computation_on_example2() {
        // Plan (a): L^n = [[4,2],[6,9]], C = (1,1). Base R = (0.05, 0.05):
        // loads N1 = 0.3, N2 = 0.75.
        // Solo stream 1: N1 slack 0.7 / 4 = 0.175 extra, N2 slack 0.25/6
        // = 0.04166 → binding. Multiplier = 1 + 0.04166/0.05 = 1.8333.
        // Uniform: N2 ratio C/load = 1/0.75 → m = 1.3333.
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let ev = PlanEvaluator::new(&model, &cluster);
        let [a, _, _] = example2_plans();
        let report = headroom(&ev, &a, &[0.05, 0.05]);
        assert!((report.per_stream[0] - 1.8333).abs() < 1e-3, "{report:?}");
        assert!((report.uniform - 4.0 / 3.0).abs() < 1e-3, "{report:?}");
        assert_eq!(report.binding_node, NodeId(1));
    }

    #[test]
    fn headroom_boundary_is_actually_the_boundary() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let ev = PlanEvaluator::new(&model, &cluster);
        let plan = RodPlanner::new()
            .place(&model, &cluster)
            .unwrap()
            .allocation;
        let base = [0.03, 0.04];
        let report = headroom(&ev, &plan, &base);
        // Just inside is feasible; just outside is not — per stream and
        // uniformly.
        for k in 0..2 {
            let m = report.per_stream[k];
            let mut inside = base.to_vec();
            inside[k] *= m * 0.999;
            let mut outside = base.to_vec();
            outside[k] *= m * 1.001;
            assert!(ev.is_feasible_at(&plan, &inside), "stream {k} inside");
            assert!(!ev.is_feasible_at(&plan, &outside), "stream {k} outside");
        }
        let inside: Vec<f64> = base.iter().map(|r| r * report.uniform * 0.999).collect();
        let outside: Vec<f64> = base.iter().map(|r| r * report.uniform * 1.001).collect();
        assert!(ev.is_feasible_at(&plan, &inside));
        assert!(!ev.is_feasible_at(&plan, &outside));
    }

    #[test]
    fn rod_has_more_solo_burst_headroom_than_concentrated_plans() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let ev = PlanEvaluator::new(&model, &cluster);
        let rod = RodPlanner::new()
            .place(&model, &cluster)
            .unwrap()
            .allocation;
        let [_, _, plan_c] = example2_plans(); // whole chains per node
        let base = [0.04, 0.04];
        let rod_report = headroom(&ev, &rod, &base);
        let conc_report = headroom(&ev, &plan_c, &base);
        let rod_min = rod_report.tightest_stream().unwrap().1;
        let conc_min = conc_report.tightest_stream().unwrap().1;
        assert!(
            rod_min > conc_min,
            "ROD solo headroom {rod_min} vs concentrated {conc_min}"
        );
    }

    #[test]
    fn infeasible_base_reports_no_headroom() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let ev = PlanEvaluator::new(&model, &cluster);
        let [a, _, _] = example2_plans();
        let report = headroom(&ev, &a, &[1.0, 1.0]); // way overloaded
        assert!(report.uniform <= 1.0);
        assert!(report.per_stream.iter().all(|&m| m <= 1.0));
    }
}
