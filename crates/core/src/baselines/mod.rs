//! The competing load-distribution algorithms of §7.2, plus the
//! brute-force optimum of §7.3.1.
//!
//! All planners implement [`Planner`] so the experiment harness can sweep
//! them uniformly:
//!
//! * [`random::RandomPlanner`] — "a random placement while maintaining an
//!   equal number of operators on each node";
//! * [`llf::LlfPlanner`] — Largest-Load-First load balancing at an
//!   observed average rate point;
//! * [`connected::ConnectedPlanner`] — prefers co-locating connected
//!   operators to minimise data communication;
//! * [`correlation::CorrelationPlanner`] — the correlation-based scheme of
//!   the authors' earlier dynamic work \[23\]: separates operators whose
//!   load time series are highly correlated;
//! * [`optimal::OptimalPlanner`] — exhaustive search over all placements
//!   (tractable only at the paper's "small query graphs, two nodes"
//!   scale), scored by quasi-Monte-Carlo feasible-set volume.

pub mod connected;
pub mod correlation;
pub mod llf;
pub mod optimal;
pub mod random;
pub mod registry;

pub use registry::{build_planner, PlannerSpec};

use crate::allocation::Allocation;
use crate::cluster::Cluster;
use crate::error::PlacementError;
use crate::load_model::LoadModel;
use crate::obs::MetricsRegistry;

/// A static operator-placement algorithm.
pub trait Planner {
    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Produces a complete allocation of every operator in `model` onto
    /// `cluster`.
    fn plan(&self, model: &LoadModel, cluster: &Cluster) -> Result<Allocation, PlacementError>;

    /// Like [`plan`](Planner::plan), additionally recording phase timings
    /// and work counters into `metrics`. The default implementation times
    /// the whole run under `<name>.plan_seconds`; planners with internal
    /// phases (ROD, ResilientRod) override it with finer-grained metrics.
    fn plan_with_metrics(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: &MetricsRegistry,
    ) -> Result<Allocation, PlacementError> {
        let name = self.name();
        metrics.time(&format!("{name}.plan_seconds"), || {
            self.plan(model, cluster)
        })
    }
}

/// Validates the common preconditions shared by every baseline.
pub(crate) fn check_inputs(model: &LoadModel, cluster: &Cluster) -> Result<(), PlacementError> {
    cluster.validate()?;
    if model.num_operators() == 0 {
        return Err(PlacementError::EmptyModel);
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::graph::GraphBuilder;
    use crate::load_model::LoadModel;
    use crate::operator::OperatorKind;

    /// A small two-input graph with three operators per input chain.
    pub fn chain_pair_model() -> LoadModel {
        let mut b = GraphBuilder::new();
        let i0 = b.add_input();
        let i1 = b.add_input();
        let mut up = i0;
        for j in 0..3 {
            let (_, s) = b
                .add_operator(
                    format!("a{j}"),
                    OperatorKind::filter(2.0 + j as f64, 0.9),
                    &[up],
                )
                .unwrap();
            up = s;
        }
        let mut up = i1;
        for j in 0..3 {
            let (_, s) = b
                .add_operator(
                    format!("b{j}"),
                    OperatorKind::filter(3.0 - j as f64 * 0.5, 0.8),
                    &[up],
                )
                .unwrap();
            up = s;
        }
        let g = b.build().unwrap();
        LoadModel::derive(&g).unwrap()
    }
}
