//! Connected-Load-Balancing.
//!
//! §7.2: "(1) Assign the most loaded candidate operator to the currently
//! least loaded node (denoted by N_s). (2) Assign operators that are
//! connected to operators already on N_s to N_s as long as the load of N_s
//! (after assignment) is less than the average load of all operators.
//! (3) Repeat step (1) and (2) until all operators are assigned."
//!
//! The evaluation shows this algorithm "fares the worst because it tries
//! to keep all connected operators on the same node … a spike in an input
//! rate cannot be shared among multiple processors" — exactly the failure
//! mode ROD avoids, so it is the important lower anchor of Figure 14.

use rod_geom::Vector;

use crate::allocation::Allocation;
use crate::baselines::{check_inputs, Planner};
use crate::cluster::Cluster;
use crate::error::PlacementError;
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;

/// Connected load balancing at a fixed average rate point.
#[derive(Clone, Debug)]
pub struct ConnectedPlanner {
    avg_input_rates: Vec<f64>,
}

impl ConnectedPlanner {
    /// A planner optimising for the given average input rates.
    pub fn new(avg_input_rates: Vec<f64>) -> Self {
        ConnectedPlanner { avg_input_rates }
    }
}

impl Planner for ConnectedPlanner {
    fn name(&self) -> &'static str {
        "Connected"
    }

    fn plan(&self, model: &LoadModel, cluster: &Cluster) -> Result<Allocation, PlacementError> {
        check_inputs(model, cluster)?;
        let x: Vector = model.variable_point(&self.avg_input_rates);
        let m = model.num_operators();
        let n = cluster.num_nodes();
        // Precomputed adjacency: the growth loop below tests
        // connectivity O(m²) times.
        let adjacency = model.graph().adjacency();
        let mut on_ns = vec![false; m];

        let loads: Vec<f64> = (0..m)
            .map(|j| {
                model
                    .operator_row(OperatorId(j))
                    .iter()
                    .zip(x.as_slice())
                    .map(|(l, r)| l * r)
                    .sum()
            })
            .collect();
        let total: f64 = loads.iter().sum();
        // "the average load of all operators" spread over the nodes: the
        // per-node fair share. Keeping a node's load under it leaves room
        // for the remaining seeds.
        let fair_share = total / n as f64;

        let mut alloc = Allocation::new(m, n);
        let mut node_load = vec![0.0; n];
        let mut unassigned: Vec<OperatorId> = (0..m).map(OperatorId).collect();

        while !unassigned.is_empty() {
            // Step (1): most loaded candidate to least loaded node.
            let (pos, _) = unassigned
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    loads[a.index()].total_cmp(&loads[b.index()]).then(b.cmp(a))
                    // lowest id wins ties
                })
                .expect("non-empty");
            let seed = unassigned.swap_remove(pos);
            let ns = (0..n)
                .min_by(|&a, &b| {
                    let ra = node_load[a] / cluster.capacity(NodeId(a));
                    let rb = node_load[b] / cluster.capacity(NodeId(b));
                    ra.total_cmp(&rb).then(a.cmp(&b))
                })
                .expect("non-empty cluster");
            alloc.assign(seed, NodeId(ns));
            node_load[ns] += loads[seed.index()];
            on_ns.fill(false);
            for &op in &alloc.operators_on(NodeId(ns)) {
                on_ns[op.index()] = true;
            }

            // Step (2): grow the connected component on N_s while under
            // the fair share.
            loop {
                let next = unassigned.iter().position(|&op| {
                    adjacency[op.index()].iter().any(|nb| on_ns[nb.index()])
                        && node_load[ns] + loads[op.index()] < fair_share
                });
                match next {
                    Some(pos) => {
                        let op = unassigned.swap_remove(pos);
                        alloc.assign(op, NodeId(ns));
                        on_ns[op.index()] = true;
                        node_load[ns] += loads[op.index()];
                    }
                    None => break,
                }
            }
        }
        Ok(alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::PlanEvaluator;
    use crate::baselines::test_support::chain_pair_model;
    use crate::graph::GraphBuilder;
    use crate::operator::OperatorKind;

    #[test]
    fn keeps_chains_mostly_together() {
        let model = chain_pair_model();
        let cluster = Cluster::homogeneous(2, 1.0);
        let alloc = ConnectedPlanner::new(vec![1.0, 1.0])
            .plan(&model, &cluster)
            .unwrap();
        assert!(alloc.is_complete());
        let ev = PlanEvaluator::new(&model, &cluster);
        // The whole point of Connected: few arcs cross the network. With
        // two 3-op chains on two nodes we expect at most 2 crossings out
        // of 4 arcs (and usually 0).
        assert!(ev.internode_arcs(&alloc) <= 2);
    }

    #[test]
    fn produces_smaller_feasible_sets_than_separation() {
        // One input, a chain of 4 equal operators, 2 nodes: Connected puts
        // most of the chain on one node, so its min plane distance is
        // worse than the even split's.
        let mut b = GraphBuilder::new();
        let i = b.add_input();
        let mut up = i;
        for j in 0..4 {
            let (_, s) = b
                .add_operator(format!("f{j}"), OperatorKind::filter(1.0, 1.0), &[up])
                .unwrap();
            up = s;
        }
        let model = LoadModel::derive(&b.build().unwrap()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let connected = ConnectedPlanner::new(vec![1.0])
            .plan(&model, &cluster)
            .unwrap();
        let rod = crate::rod::RodPlanner::new()
            .place(&model, &cluster)
            .unwrap()
            .allocation;
        let ev = PlanEvaluator::new(&model, &cluster);
        assert!(
            ev.min_plane_distance(&rod) >= ev.min_plane_distance(&connected),
            "ROD {} vs Connected {}",
            ev.min_plane_distance(&rod),
            ev.min_plane_distance(&connected)
        );
    }

    #[test]
    fn all_operators_assigned_even_with_huge_loads() {
        // Loads far above the fair share must still be placed (step 2's
        // guard must not strand operators).
        let mut b = GraphBuilder::new();
        let i = b.add_input();
        let mut up = i;
        for j in 0..3 {
            let (_, s) = b
                .add_operator(format!("g{j}"), OperatorKind::filter(100.0, 1.0), &[up])
                .unwrap();
            up = s;
        }
        let model = LoadModel::derive(&b.build().unwrap()).unwrap();
        let alloc = ConnectedPlanner::new(vec![5.0])
            .plan(&model, &Cluster::homogeneous(2, 1.0))
            .unwrap();
        assert!(alloc.is_complete());
    }
}
