//! The Random baseline: shuffle, then deal out evenly.
//!
//! §7.2: "the fourth produces a random placement while maintaining an
//! equal number of operators on each node."

use rand::seq::SliceRandom;

use rod_geom::seeded_rng;

use crate::allocation::Allocation;
use crate::baselines::{check_inputs, Planner};
use crate::cluster::Cluster;
use crate::error::PlacementError;
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;

/// Uniformly random placement with equal (±1) operator counts per node.
#[derive(Clone, Debug)]
pub struct RandomPlanner {
    seed: u64,
}

impl RandomPlanner {
    /// A planner that shuffles with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPlanner { seed }
    }
}

impl Planner for RandomPlanner {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn plan(&self, model: &LoadModel, cluster: &Cluster) -> Result<Allocation, PlacementError> {
        check_inputs(model, cluster)?;
        let m = model.num_operators();
        let n = cluster.num_nodes();
        let mut ops: Vec<OperatorId> = (0..m).map(OperatorId).collect();
        ops.shuffle(&mut seeded_rng(self.seed));
        let mut alloc = Allocation::new(m, n);
        for (slot, op) in ops.into_iter().enumerate() {
            alloc.assign(op, NodeId(slot % n));
        }
        Ok(alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::chain_pair_model;

    #[test]
    fn counts_are_balanced() {
        let model = chain_pair_model();
        let cluster = Cluster::homogeneous(4, 1.0);
        let alloc = RandomPlanner::new(3).plan(&model, &cluster).unwrap();
        assert!(alloc.is_complete());
        let counts = alloc.node_counts();
        // 6 operators over 4 nodes: counts in {1, 2}.
        assert!(counts.iter().all(|&c| c == 1 || c == 2), "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 6);
    }

    #[test]
    fn deterministic_per_seed_and_varied_across_seeds() {
        let model = chain_pair_model();
        let cluster = Cluster::homogeneous(3, 1.0);
        let a = RandomPlanner::new(1).plan(&model, &cluster).unwrap();
        let b = RandomPlanner::new(1).plan(&model, &cluster).unwrap();
        assert_eq!(a, b);
        let differs = (2..30).any(|s| RandomPlanner::new(s).plan(&model, &cluster).unwrap() != a);
        assert!(differs, "30 seeds produced identical placements");
    }

    #[test]
    fn empty_model_rejected() {
        let mut b = crate::graph::GraphBuilder::new();
        b.add_input();
        let model = LoadModel::derive(&b.build().unwrap()).unwrap();
        assert!(RandomPlanner::new(0)
            .plan(&model, &Cluster::homogeneous(2, 1.0))
            .is_err());
    }
}
