//! Correlation-based load balancing.
//!
//! §7.2: "assigns operators to nodes such that operators with high load
//! correlation are separated onto different nodes. This algorithm was
//! designed in our previous work \[23\] for dynamic operator distribution."
//!
//! Given a window of observed input-rate samples, each operator has a load
//! *time series*; co-locating operators whose series move together means
//! the node's peaks stack up. The greedy below places operators in
//! descending mean-load order, choosing for each the node whose current
//! load series is least correlated with the operator's (ties and empty
//! nodes resolved toward the least-loaded node). §7.3.1 observes this is
//! the strongest baseline because "operators that are downstream from a
//! given input have high load correlation and thus tend to be separated" —
//! accidentally approximating ROD's stream-balancing behaviour.

use rod_geom::Vector;

use crate::allocation::Allocation;
use crate::baselines::{check_inputs, Planner};
use crate::cluster::Cluster;
use crate::error::PlacementError;
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;

/// Correlation-based placement over an observed rate history.
#[derive(Clone, Debug)]
pub struct CorrelationPlanner {
    /// Observed system-input rate points, one inner `Vec` per time step.
    rate_history: Vec<Vec<f64>>,
}

impl CorrelationPlanner {
    /// A planner observing the given rate history (at least two samples
    /// are needed for correlations to exist).
    pub fn new(rate_history: Vec<Vec<f64>>) -> Self {
        assert!(
            rate_history.len() >= 2,
            "correlation needs at least two rate samples"
        );
        CorrelationPlanner { rate_history }
    }
}

/// Pearson correlation of two equal-length series; 0 when either is
/// constant (covariance carries no signal there).
fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

impl Planner for CorrelationPlanner {
    fn name(&self) -> &'static str {
        "Correlation"
    }

    fn plan(&self, model: &LoadModel, cluster: &Cluster) -> Result<Allocation, PlacementError> {
        check_inputs(model, cluster)?;
        let m = model.num_operators();
        let n = cluster.num_nodes();
        let t = self.rate_history.len();

        // Load series per operator: row · x(t) over the history.
        let var_points: Vec<Vector> = self
            .rate_history
            .iter()
            .map(|r| model.variable_point(r))
            .collect();
        let series: Vec<Vec<f64>> = (0..m)
            .map(|j| {
                var_points
                    .iter()
                    .map(|x| {
                        model
                            .operator_row(OperatorId(j))
                            .iter()
                            .zip(x.as_slice())
                            .map(|(l, r)| l * r)
                            .sum()
                    })
                    .collect()
            })
            .collect();
        let mean_loads: Vec<f64> = series
            .iter()
            .map(|s| s.iter().sum::<f64>() / t as f64)
            .collect();

        let mut order: Vec<OperatorId> = (0..m).map(OperatorId).collect();
        order.sort_by(|&a, &b| {
            mean_loads[b.index()]
                .total_cmp(&mean_loads[a.index()])
                .then(a.cmp(&b))
        });

        let mut node_series = vec![vec![0.0; t]; n];
        let mut node_mean = vec![0.0; n];
        let mut alloc = Allocation::new(m, n);

        for op in order {
            let op_series = &series[op.index()];
            // Choose the node minimising (correlation, relative load).
            let dest = (0..n)
                .min_by(|&a, &b| {
                    let ca = correlation(op_series, &node_series[a]);
                    let cb = correlation(op_series, &node_series[b]);
                    let la = node_mean[a] / cluster.capacity(NodeId(a));
                    let lb = node_mean[b] / cluster.capacity(NodeId(b));
                    ca.total_cmp(&cb).then(la.total_cmp(&lb)).then(a.cmp(&b))
                })
                .expect("non-empty cluster");
            alloc.assign(op, NodeId(dest));
            for (acc, &x) in node_series[dest].iter_mut().zip(op_series) {
                *acc += x;
            }
            node_mean[dest] += mean_loads[op.index()];
        }
        Ok(alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::chain_pair_model;

    #[test]
    fn correlation_helper() {
        let up = [1.0, 2.0, 3.0, 4.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((correlation(&up, &up) - 1.0).abs() < 1e-12);
        assert!((correlation(&up, &down) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&up, &[5.0; 4]), 0.0);
    }

    #[test]
    fn separates_same_stream_operators() {
        // Two independent inputs with anti-correlated rates: operators on
        // the same chain correlate perfectly, so they should spread across
        // nodes rather than stack on one.
        let model = chain_pair_model();
        let cluster = Cluster::homogeneous(2, 1.0);
        let history = vec![
            vec![1.0, 3.0],
            vec![2.0, 2.0],
            vec![3.0, 1.0],
            vec![1.5, 2.5],
            vec![2.5, 1.5],
        ];
        let alloc = CorrelationPlanner::new(history)
            .plan(&model, &cluster)
            .unwrap();
        assert!(alloc.is_complete());
        // Chain A is operators 0..3, chain B is 3..6. Neither chain should
        // sit entirely on one node.
        for chain in [[0usize, 1, 2], [3, 4, 5]] {
            let nodes: std::collections::HashSet<_> = chain
                .iter()
                .map(|&j| alloc.node_of(OperatorId(j)).unwrap())
                .collect();
            assert!(nodes.len() > 1, "chain {chain:?} all on one node");
        }
    }

    #[test]
    #[should_panic(expected = "at least two rate samples")]
    fn rejects_single_sample_history() {
        let _ = CorrelationPlanner::new(vec![vec![1.0, 1.0]]);
    }

    #[test]
    fn deterministic() {
        let model = chain_pair_model();
        let cluster = Cluster::homogeneous(3, 1.0);
        let history = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0]];
        let a = CorrelationPlanner::new(history.clone())
            .plan(&model, &cluster)
            .unwrap();
        let b = CorrelationPlanner::new(history)
            .plan(&model, &cluster)
            .unwrap();
        assert_eq!(a, b);
    }
}
