//! Largest-Load-First (LLF) load balancing.
//!
//! §7.2: "orders the operators by their average load-level and assigns
//! operators in descending order to the currently least loaded node."
//! Load levels are taken at a single observed rate point — the classic
//! single-point optimisation that ROD argues is brittle. Node load is
//! normalised by capacity so the planner behaves sensibly on
//! heterogeneous clusters.

use rod_geom::Vector;

use crate::allocation::Allocation;
use crate::baselines::{check_inputs, Planner};
use crate::cluster::Cluster;
use crate::error::PlacementError;
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;

/// Greedy least-loaded-node balancing at a fixed average rate point.
#[derive(Clone, Debug)]
pub struct LlfPlanner {
    /// The observed average system-input rates the plan optimises for.
    avg_input_rates: Vec<f64>,
}

impl LlfPlanner {
    /// A planner optimising for the given average input rates.
    pub fn new(avg_input_rates: Vec<f64>) -> Self {
        LlfPlanner { avg_input_rates }
    }
}

impl Planner for LlfPlanner {
    fn name(&self) -> &'static str {
        "LLF"
    }

    fn plan(&self, model: &LoadModel, cluster: &Cluster) -> Result<Allocation, PlacementError> {
        check_inputs(model, cluster)?;
        assert_eq!(
            self.avg_input_rates.len(),
            model.num_inputs(),
            "one average rate per system input"
        );
        let x: Vector = model.variable_point(&self.avg_input_rates);
        let m = model.num_operators();
        let n = cluster.num_nodes();

        // Average load of each operator at the observed point.
        let loads: Vec<f64> = (0..m)
            .map(|j| {
                model
                    .operator_row(OperatorId(j))
                    .iter()
                    .zip(x.as_slice())
                    .map(|(l, r)| l * r)
                    .sum()
            })
            .collect();

        let mut order: Vec<OperatorId> = (0..m).map(OperatorId).collect();
        order.sort_by(|&a, &b| {
            loads[b.index()]
                .total_cmp(&loads[a.index()])
                .then(a.cmp(&b))
        });

        let mut node_load = vec![0.0; n];
        let mut alloc = Allocation::new(m, n);
        for op in order {
            // Least relative load; ties to the lowest index.
            let dest = (0..n)
                .min_by(|&a, &b| {
                    let ra = node_load[a] / cluster.capacity(NodeId(a));
                    let rb = node_load[b] / cluster.capacity(NodeId(b));
                    ra.total_cmp(&rb).then(a.cmp(&b))
                })
                .expect("non-empty cluster");
            alloc.assign(op, NodeId(dest));
            node_load[dest] += loads[op.index()];
        }
        Ok(alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::PlanEvaluator;
    use crate::baselines::test_support::chain_pair_model;

    #[test]
    fn balances_load_at_observed_point() {
        let model = chain_pair_model();
        let cluster = Cluster::homogeneous(2, 1.0);
        let rates = vec![1.0, 1.0];
        let alloc = LlfPlanner::new(rates.clone())
            .plan(&model, &cluster)
            .unwrap();
        assert!(alloc.is_complete());
        let ev = PlanEvaluator::new(&model, &cluster);
        let loads = ev.node_loads_at(&alloc, &rates);
        let total: f64 = loads.as_slice().iter().sum();
        let imbalance = (loads[0] - loads[1]).abs() / total;
        // LPT-style greedy gets within the largest item of perfect balance;
        // for this workload that is well under 30% of total.
        assert!(imbalance < 0.3, "imbalance {imbalance}");
    }

    #[test]
    fn heavy_operators_placed_first() {
        // With one huge operator and several small ones on 2 nodes, the
        // huge one must sit alone-ish: node loads stay within 2x.
        use crate::graph::GraphBuilder;
        use crate::operator::OperatorKind;
        let mut b = GraphBuilder::new();
        let i = b.add_input();
        b.add_operator("big", OperatorKind::filter(10.0, 1.0), &[i])
            .unwrap();
        for j in 0..5 {
            b.add_operator(format!("small{j}"), OperatorKind::filter(2.0, 1.0), &[i])
                .unwrap();
        }
        let model = LoadModel::derive(&b.build().unwrap()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let alloc = LlfPlanner::new(vec![1.0]).plan(&model, &cluster).unwrap();
        let ev = PlanEvaluator::new(&model, &cluster);
        let loads = ev.node_loads_at(&alloc, &[1.0]);
        assert!((loads[0] - loads[1]).abs() <= 2.0 + 1e-9, "{loads:?}");
    }

    #[test]
    fn respects_capacity_ratios() {
        let model = chain_pair_model();
        let cluster = Cluster::heterogeneous(vec![3.0, 1.0]);
        let alloc = LlfPlanner::new(vec![1.0, 1.0])
            .plan(&model, &cluster)
            .unwrap();
        let ev = PlanEvaluator::new(&model, &cluster);
        let u = ev.utilisations_at(&alloc, &[1.0, 1.0]);
        // The big node should be at least as utilised-balanced: no node
        // should have more than ~2.5x the utilisation of the other.
        assert!(u[0] / u[1] < 2.5 && u[1] / u[0] < 2.5, "{u:?}");
    }
}
