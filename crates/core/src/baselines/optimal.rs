//! Brute-force optimal placement (the §7.3.1 yardstick).
//!
//! "In the simulator, we compared the feasible set size of ROD with the
//! optimal solution on small query graphs (no more than 12 operators and 2
//! to 5 input streams) on two nodes. The average feasible set size ratio
//! of ROD to the optimal is 0.95 and the minimum ratio is 0.82."
//!
//! For homogeneous clusters, node labels are interchangeable, so we
//! enumerate *set partitions with at most `n` blocks* via restricted-growth
//! strings — an `n!` saving that makes the paper's instance sizes quick.
//! Heterogeneous clusters fall back to full `n^m` enumeration. Every plan
//! is scored against one shared quasi-Monte-Carlo point set, so
//! plan-to-plan comparisons carry no sampling noise.

use rod_geom::VolumeEstimator;

use crate::allocation::Allocation;
use crate::baselines::{check_inputs, Planner};
use crate::cluster::Cluster;
use crate::error::PlacementError;
use crate::eval::SampledFeasibility;
use crate::ids::{NodeId, OperatorId};
use crate::load_model::LoadModel;

/// Exhaustive-search planner maximising estimated feasible-set volume.
#[derive(Clone, Debug)]
pub struct OptimalPlanner {
    /// QMC sample points used to score each candidate plan.
    pub samples: usize,
    /// Seed for the scrambled point set.
    pub seed: u64,
    /// Refuse instances whose plan count exceeds this bound.
    pub max_plans: u64,
    /// Worker chunks for the parallel branch-and-bound frontier; `0`
    /// means the [`rod_pool::global`] pool size. The winner is
    /// bit-identical for every value (deterministic incumbent update;
    /// see [`Self::search`]).
    pub threads: usize,
}

impl Default for OptimalPlanner {
    fn default() -> Self {
        OptimalPlanner {
            samples: 20_000,
            seed: 1,
            max_plans: 5_000_000,
            threads: 0,
        }
    }
}

impl OptimalPlanner {
    /// Planner with default budget.
    pub fn new() -> Self {
        OptimalPlanner::default()
    }

    /// Number of candidate plans for an instance, honouring symmetry.
    fn plan_count(m: usize, n: usize, homogeneous: bool) -> u64 {
        if homogeneous {
            // Restricted growth strings: product over operators of
            // (used blocks + 1 capped at n). Upper bound: Bell-ish; we
            // just multiply the per-step branching worst case.
            let mut count: u64 = 1;
            for max_block in 1..m as u64 {
                count = count
                    .saturating_mul(max_block.min(n as u64) + 1)
                    .min(u64::MAX / 2);
            }
            count
        } else {
            (n as u64).checked_pow(m as u32).unwrap_or(u64::MAX)
        }
    }

    /// Enumerates all placements, invoking `visit` on each complete
    /// assignment (`assignment[j]` = node of operator `j`). The search
    /// itself uses the pruned recursion in [`Self::search`]; this
    /// unpruned walk exists to test the symmetry-breaking counts.
    #[cfg(test)]
    fn enumerate(m: usize, n: usize, homogeneous: bool, visit: &mut impl FnMut(&[usize])) {
        let mut assignment = vec![0usize; m];
        fn recurse(
            assignment: &mut [usize],
            j: usize,
            used: usize,
            n: usize,
            homogeneous: bool,
            visit: &mut impl FnMut(&[usize]),
        ) {
            let m = assignment.len();
            if j == m {
                visit(assignment);
                return;
            }
            // Symmetry breaking: on homogeneous clusters operator j may
            // open at most one new node (the lowest unused index).
            let limit = if homogeneous { (used + 1).min(n) } else { n };
            for node in 0..limit {
                assignment[j] = node;
                let new_used = used.max(node + 1);
                recurse(assignment, j + 1, new_used, n, homogeneous, visit);
            }
        }
        recurse(&mut assignment, 0, 0, n, homogeneous, visit);
    }

    /// Runs the search, returning the best allocation and its estimated
    /// ratio to the ideal feasible set.
    pub fn search(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
    ) -> Result<(Allocation, f64), PlacementError> {
        self.search_impl(model, cluster, None)
    }

    /// [`search`](Self::search) that additionally memoises every
    /// improving incumbent's exact alive count into `cache`, so callers
    /// re-rating the winner (or near-winners) through a
    /// [`ScenarioScorer`](crate::resilience::ScenarioScorer) over the
    /// **same point set** get those scores for free. The scope rule of
    /// [`crate::score_cache`] applies: the shared point set must be built
    /// with this planner's `samples`/`seed`.
    pub fn search_with_cache(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        cache: &mut crate::score_cache::ScoreCache,
    ) -> Result<(Allocation, f64), PlacementError> {
        self.search_impl(model, cluster, Some(cache))
    }

    fn search_impl(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        mut cache: Option<&mut crate::score_cache::ScoreCache>,
    ) -> Result<(Allocation, f64), PlacementError> {
        check_inputs(model, cluster)?;
        let m = model.num_operators();
        let n = cluster.num_nodes();
        let caps = cluster.capacities();
        let homogeneous = caps.as_slice().iter().all(|&c| (c - caps[0]).abs() < 1e-12);
        if Self::plan_count(m, n, homogeneous) > self.max_plans {
            return Err(PlacementError::TooLargeForExhaustive {
                operators: m,
                nodes: n,
            });
        }

        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            self.samples,
            self.seed,
        );

        // Branch-and-bound over the incremental evaluation state:
        // assigning more operators only adds load, so the count of QMC
        // points still feasible under a partial plan — maintained
        // incrementally by `SampledFeasibility` and read in O(1) — is an
        // upper bound on every completion. Prune whole subtrees once it
        // drops to (or below) the incumbent. Children are visited in
        // natural node order and the incumbent is replaced only on a
        // strict improvement, so ties resolve exactly as the
        // enumerate-then-rescore search did.
        struct Search<'c> {
            feas: SampledFeasibility,
            n: usize,
            homogeneous: bool,
            best: Option<(Vec<usize>, usize)>,
            assignment: Vec<usize>,
            /// Improving incumbents' exact counts are memoised here —
            /// only incumbents, so the per-leaf overhead stays zero on
            /// the pruned bulk of the tree.
            cache: Option<&'c mut crate::score_cache::ScoreCache>,
        }
        impl Search<'_> {
            fn recurse(&mut self, j: usize, used: usize) {
                let m = self.assignment.len();
                // Bound: the partial plan already excludes everything a
                // completion could add back.
                let upper = self.feas.alive_count();
                if let Some((_, best_hits)) = &self.best {
                    if upper <= *best_hits {
                        return;
                    }
                }
                if j == m {
                    // `upper` is the exact count of the complete plan.
                    self.best = Some((self.assignment.clone(), upper));
                    if let Some(cache) = self.cache.as_deref_mut() {
                        cache.insert(self.assignment.iter().map(|&i| i as u32).collect(), upper);
                    }
                    return;
                }
                let limit = if self.homogeneous {
                    (used + 1).min(self.n)
                } else {
                    self.n
                };
                for node in 0..limit {
                    self.assignment[j] = node;
                    self.feas.push_assign(j, node);
                    self.recurse(j + 1, used.max(node + 1));
                    self.feas.pop_assign(j, node);
                }
            }
        }
        let base_feas =
            SampledFeasibility::from_batch(model.lo(), estimator.batch(), caps.as_slice());
        let threads = match self.threads {
            0 => rod_pool::global().size(),
            t => t,
        };

        // Parallel plan: expand the DFS prefix frontier (lexicographic =
        // DFS visit order) until there are enough independent subtrees
        // to deal out, then give each worker chunk its own tracker clone
        // and a chunk-local incumbent. A local incumbent can only prune
        // subtrees whose bound says "no leaf here strictly beats an
        // *earlier* leaf" — exactly the serial rule — so each chunk
        // reports the first strict maximum of its range, and the ordered
        // strict-`>` merge below reproduces the serial winner (first
        // strict maximum in full DFS order) for every chunk count.
        let frontier: Vec<(Vec<usize>, usize)> = if threads > 1 && m > 1 {
            let target = threads.saturating_mul(3);
            let mut frontier = vec![(Vec::new(), 0usize)];
            let mut depth = 0;
            while depth < m - 1 && frontier.len() < target {
                let mut next = Vec::with_capacity(frontier.len() * n);
                for (prefix, used) in &frontier {
                    let limit = if homogeneous { (used + 1).min(n) } else { n };
                    for node in 0..limit {
                        let mut longer = prefix.clone();
                        longer.push(node);
                        next.push((longer, (*used).max(node + 1)));
                    }
                }
                frontier = next;
                depth += 1;
            }
            frontier
        } else {
            Vec::new()
        };

        let (best, chunk_caches) = if frontier.len() > 1 {
            let want_cache = cache.is_some();
            // More chunks than subtrees would idle (`chunks` clamps).
            let ranges = rod_pool::chunks(frontier.len(), threads);
            rod_pool::global().map_reduce(
                ranges.len(),
                |c| {
                    let mut local_cache = want_cache.then(crate::score_cache::ScoreCache::new);
                    let mut search = Search {
                        feas: base_feas.clone(),
                        n,
                        homogeneous,
                        best: None,
                        assignment: vec![0; m],
                        cache: local_cache.as_mut(),
                    };
                    for idx in ranges[c].clone() {
                        let (prefix, used) = &frontier[idx];
                        for (j, &node) in prefix.iter().enumerate() {
                            search.assignment[j] = node;
                            search.feas.push_assign(j, node);
                        }
                        search.recurse(prefix.len(), *used);
                        for (j, &node) in prefix.iter().enumerate().rev() {
                            search.feas.pop_assign(j, node);
                        }
                    }
                    let best = search.best.take();
                    drop(search);
                    (best, local_cache)
                },
                (None::<(Vec<usize>, usize)>, Vec::new()),
                // Ordered reduction: chunk winners arrive in range order;
                // strict `>` keeps the earliest on ties.
                |(mut best, mut caches), (chunk_best, chunk_cache)| {
                    if let Some((assignment, hits)) = chunk_best {
                        if best.as_ref().map_or(true, |&(_, b)| hits > b) {
                            best = Some((assignment, hits));
                        }
                    }
                    caches.extend(chunk_cache);
                    (best, caches)
                },
            )
        } else {
            let mut search = Search {
                feas: base_feas,
                n,
                homogeneous,
                best: None,
                assignment: vec![0; m],
                cache: cache.as_deref_mut(),
            };
            search.recurse(0, 0);
            (search.best, Vec::new())
        };
        if let Some(cache) = cache {
            for chunk in chunk_caches {
                cache.absorb(chunk);
            }
        }
        let (assignment, hits) = best.expect("at least one plan enumerated");
        let ratio = hits as f64 / estimator.samples() as f64;
        let mut alloc = Allocation::new(m, n);
        for (j, node) in assignment.into_iter().enumerate() {
            alloc.assign(OperatorId(j), NodeId(node));
        }
        Ok((alloc, ratio))
    }
}

impl Planner for OptimalPlanner {
    fn name(&self) -> &'static str {
        "Optimal"
    }

    fn plan(&self, model: &LoadModel, cluster: &Cluster) -> Result<Allocation, PlacementError> {
        self.search(model, cluster).map(|(a, _)| a)
    }

    fn plan_with_metrics(
        &self,
        model: &LoadModel,
        cluster: &Cluster,
        metrics: &crate::obs::MetricsRegistry,
    ) -> Result<Allocation, PlacementError> {
        let pool_before = rod_pool::global().stats();
        let kernel_before = rod_geom::simd::path_counts();
        let start = std::time::Instant::now();
        let result = self.plan(model, cluster);
        let wall = start.elapsed().as_secs_f64();
        metrics.observe("Optimal.plan_seconds", wall);
        let pool_after = rod_pool::global().stats();
        crate::obs::record_pool_delta(metrics, &pool_before, &pool_after);
        crate::obs::record_kernel_path(metrics, &kernel_before, &rod_geom::simd::path_counts());
        let busy_delta = pool_after.busy_seconds - pool_before.busy_seconds;
        let speedup = if wall > 0.0 && busy_delta > 0.0 {
            busy_delta / wall
        } else {
            1.0
        };
        metrics.set_gauge("Optimal.parallel_speedup_estimate", speedup);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::PlanEvaluator;
    use crate::examples_paper::figure4_graph;
    use crate::rod::RodPlanner;

    #[test]
    fn finds_a_plan_at_least_as_good_as_rod() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let (opt, opt_ratio) = OptimalPlanner::new().search(&model, &cluster).unwrap();
        assert!(opt.is_complete());

        let rod = RodPlanner::new()
            .place(&model, &cluster)
            .unwrap()
            .allocation;
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            20_000,
            1,
        );
        let ev = PlanEvaluator::new(&model, &cluster);
        let rod_ratio = estimator.estimate(&ev.feasible_region(&rod)).ratio_to_ideal;
        assert!(
            opt_ratio >= rod_ratio - 1e-12,
            "optimal {opt_ratio} < ROD {rod_ratio}"
        );
        // On Example 2, ROD should in fact be near-optimal.
        assert!(
            rod_ratio / opt_ratio > 0.8,
            "ROD/OPT = {}",
            rod_ratio / opt_ratio
        );
    }

    #[test]
    fn search_with_cache_seeds_scorer_rescoring() {
        use crate::resilience::ScenarioScorer;
        use crate::score_cache::ScoreCache;

        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let planner = OptimalPlanner::new();
        let mut cache = ScoreCache::new();
        let (opt, ratio) = planner
            .search_with_cache(&model, &cluster, &mut cache)
            .unwrap();
        assert!(!cache.is_empty(), "no incumbent was memoised");

        // A scorer over the same point set answers the winner's healthy
        // score straight from the shared cache.
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            planner.samples,
            planner.seed,
        );
        let mut scorer = ScenarioScorer::from_batch(&model, &cluster, estimator.batch());
        scorer.swap_cache(cache);
        let healthy = scorer.healthy_alive(&opt);
        assert_eq!(healthy as f64 / planner.samples as f64, ratio);
        assert_eq!(scorer.cache_hits(), 1);
        assert_eq!(scorer.cache_misses(), 0);
    }

    /// The parallel frontier search must return the serial winner bit
    /// for bit — same assignment, same hit count — at every chunk
    /// count, and the winner must be memoised whichever path ran.
    #[test]
    fn incumbents_are_bit_identical_across_thread_counts() {
        use crate::score_cache::ScoreCache;

        let model = LoadModel::derive(&figure4_graph()).unwrap();
        for cluster in [
            Cluster::homogeneous(3, 1.0),
            Cluster::heterogeneous(vec![1.5, 0.5]),
        ] {
            let serial = OptimalPlanner {
                samples: 4_000,
                seed: 9,
                threads: 1,
                ..OptimalPlanner::new()
            };
            let (base_alloc, base_ratio) = serial.search(&model, &cluster).unwrap();
            for threads in [2usize, 4, 7] {
                let planner = OptimalPlanner {
                    threads,
                    ..serial.clone()
                };
                let mut cache = ScoreCache::new();
                let (alloc, ratio) = planner
                    .search_with_cache(&model, &cluster, &mut cache)
                    .unwrap();
                assert_eq!(
                    alloc, base_alloc,
                    "threads={threads}: winner diverged from serial"
                );
                assert_eq!(ratio.to_bits(), base_ratio.to_bits());
                let key: Vec<u32> = (0..model.num_operators())
                    .map(|j| alloc.node_of(OperatorId(j)).unwrap().0 as u32)
                    .collect();
                assert_eq!(
                    cache.get(&key),
                    Some((ratio * planner.samples as f64).round() as usize),
                    "threads={threads}: winner missing from the merged cache"
                );
            }
        }
    }

    #[test]
    fn symmetry_breaking_counts() {
        // 3 operators, 2 homogeneous nodes: partitions into <=2 blocks of
        // a 3-set = 4 (vs 8 labelled assignments).
        let mut seen = 0;
        OptimalPlanner::enumerate(3, 2, true, &mut |_| seen += 1);
        assert_eq!(seen, 4);
        let mut labelled = 0;
        OptimalPlanner::enumerate(3, 2, false, &mut |_| labelled += 1);
        assert_eq!(labelled, 8);
    }

    /// Scores every complete plan from scratch (the pre-branch-and-bound
    /// search shape) with the same tie rule: first strict maximum in
    /// enumeration order.
    fn reference_best(
        model: &LoadModel,
        cluster: &Cluster,
        samples: usize,
        seed: u64,
    ) -> (Vec<usize>, usize) {
        let estimator = VolumeEstimator::new(
            model.total_coeffs().as_slice(),
            cluster.total_capacity(),
            samples,
            seed,
        );
        let caps = cluster.capacities();
        let homogeneous = caps.as_slice().iter().all(|&c| (c - caps[0]).abs() < 1e-12);
        let m = model.num_operators();
        let n = cluster.num_nodes();
        let d = model.num_vars();
        let lo = model.lo();
        let mut best: Option<(Vec<usize>, usize)> = None;
        OptimalPlanner::enumerate(m, n, homogeneous, &mut |assignment| {
            let mut ln = vec![0.0; n * d];
            for (j, &node) in assignment.iter().enumerate() {
                for (k, &v) in lo.row(j).iter().enumerate() {
                    ln[node * d + k] += v;
                }
            }
            let hits = estimator
                .points()
                .iter()
                .filter(|p| {
                    (0..n).all(|i| {
                        let load: f64 = ln[i * d..(i + 1) * d]
                            .iter()
                            .zip(p.as_slice())
                            .map(|(l, x)| l * x)
                            .sum();
                        load <= caps[i] + 1e-12
                    })
                })
                .count();
            if best.as_ref().map_or(true, |(_, b)| hits > *b) {
                best = Some((assignment.to_vec(), hits));
            }
        });
        best.expect("at least one plan")
    }

    #[test]
    fn branch_and_bound_matches_exhaustive_rescoring() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        for cluster in [
            Cluster::homogeneous(2, 1.0),
            Cluster::homogeneous(3, 1.0),
            Cluster::heterogeneous(vec![1.5, 0.5]),
        ] {
            let planner = OptimalPlanner {
                samples: 4_000,
                seed: 9,
                ..OptimalPlanner::new()
            };
            let (alloc, ratio) = planner.search(&model, &cluster).unwrap();
            let (reference, ref_hits) = reference_best(&model, &cluster, 4_000, 9);
            let expected_ratio = ref_hits as f64 / 4_000.0;
            for (j, &node) in reference.iter().enumerate() {
                assert_eq!(
                    alloc.node_of(OperatorId(j)),
                    Some(NodeId(node)),
                    "operator {j} on {:?} nodes",
                    cluster.capacities()
                );
            }
            assert_eq!(ratio, expected_ratio);
        }
    }

    #[test]
    fn refuses_oversized_instances() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let tiny = OptimalPlanner {
            max_plans: 1,
            ..OptimalPlanner::new()
        };
        assert!(matches!(
            tiny.search(&model, &cluster),
            Err(PlacementError::TooLargeForExhaustive { .. })
        ));
    }
}
