//! The unified planner registry: one serialisable description of "which
//! algorithm, with which parameters", and one constructor turning it into
//! a boxed [`Planner`].
//!
//! Before this existed, the CLI, the comparison harness, and each
//! experiment binary hand-rolled its own string→planner `match`, which
//! meant every new algorithm (or new parameter, like the optimal
//! planner's budget) had to be threaded through several copies. A
//! [`PlannerSpec`] travels as JSON like every other library type, so
//! experiment configs and shell pipelines can name planners uniformly.

use serde::{Deserialize, Serialize};

use crate::baselines::{
    connected::ConnectedPlanner, correlation::CorrelationPlanner, llf::LlfPlanner,
    optimal::OptimalPlanner, random::RandomPlanner, Planner,
};
use crate::cluster::Topology;
use crate::hierarchical::HierarchicalRod;
use crate::resilience::{ResilientRodOptions, ResilientRodPlanner};
use crate::rod::{RodOptions, RodPlanner};

/// A self-contained, serialisable description of a planner instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PlannerSpec {
    /// The ROD algorithm with default options (§5, Figure 10).
    Rod,
    /// Largest-Load-First balancing at one observed rate point (§7.2).
    Llf {
        /// The observed system-input rates.
        rates: Vec<f64>,
    },
    /// Connectivity-preferring balancing at one rate point (§7.2).
    Connected {
        /// The observed system-input rates.
        rates: Vec<f64>,
    },
    /// Correlation-based placement over a rate time series (§7.2, \[23\]).
    Correlation {
        /// Rate history, one inner vector per time step.
        history: Vec<Vec<f64>>,
    },
    /// Random balanced placement (§7.2).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// ROD hardened against node loss: hill-climbs from the plain-ROD
    /// plan to maximise the worst-case survivor feasible set across
    /// k-node failure scenarios.
    ResilientRod {
        /// QMC sample points used to score survivor feasible sets.
        samples: usize,
        /// Seed for the scrambled point set.
        seed: u64,
        /// Plan against every loss of up to this many nodes.
        max_failures: usize,
        /// Worker chunks for the parallel neighborhood scan (0 = the
        /// global pool size); placements are identical for every value.
        threads: usize,
    },
    /// Two-level ROD: across rack aggregates, then within each rack
    /// (`crate::hierarchical`). An empty rack list means the automatic
    /// `⌈√n⌉`-rack contiguous split.
    Hierarchical {
        /// Rack member lists (node indices); empty = automatic topology.
        racks: Vec<Vec<usize>>,
    },
    /// Brute-force optimum by feasible-set volume (§7.3.1).
    Optimal {
        /// QMC sample points used to score each candidate plan.
        samples: usize,
        /// Seed for the scrambled point set.
        seed: u64,
        /// Refuse instances whose plan count exceeds this bound.
        max_plans: u64,
        /// Worker chunks for the parallel branch-and-bound frontier
        /// (0 = the global pool size); the winner is identical for
        /// every value.
        threads: usize,
    },
}

impl PlannerSpec {
    /// Display name matching [`Planner::name`] of the built planner.
    pub fn name(&self) -> &'static str {
        match self {
            PlannerSpec::Rod => "ROD",
            PlannerSpec::Llf { .. } => "LLF",
            PlannerSpec::Connected { .. } => "Connected",
            PlannerSpec::Correlation { .. } => "Correlation",
            PlannerSpec::Random { .. } => "Random",
            PlannerSpec::ResilientRod { .. } => "ResilientRod",
            PlannerSpec::Hierarchical { .. } => "Hierarchical",
            PlannerSpec::Optimal { .. } => "Optimal",
        }
    }

    /// The deterministic jittered rate history synthesised around a
    /// single rate point when no measured time series is available (the
    /// CLI's stand-in input for the correlation planner): step `t`
    /// perturbs stream `k` by ±30% on a period-7 pattern.
    pub fn jittered_history(rates: &[f64], len: usize) -> Vec<Vec<f64>> {
        (0..len)
            .map(|t| {
                rates
                    .iter()
                    .enumerate()
                    .map(|(k, r)| r * (1.0 + 0.3 * (((t * (k + 1)) % 7) as f64 - 3.0) / 3.0))
                    .collect()
            })
            .collect()
    }

    /// Correlation spec seeded from one rate point via
    /// [`jittered_history`](Self::jittered_history).
    pub fn correlation_from_rates(rates: &[f64]) -> PlannerSpec {
        PlannerSpec::Correlation {
            history: Self::jittered_history(rates, 32),
        }
    }

    /// Parses a CLI algorithm name into a spec. `rates` feeds the
    /// single-point balancers (and the synthetic correlation history),
    /// `seed` the random planner, `samples`/`max_plans` the optimal
    /// search budget, `threads` the parallel scan width for the planners
    /// that have one (0 = the global pool size), and `racks` the
    /// hierarchical planner's topology (empty = automatic).
    pub fn from_cli(
        algorithm: &str,
        rates: &[f64],
        seed: u64,
        samples: usize,
        max_plans: u64,
        threads: usize,
        racks: &[Vec<usize>],
    ) -> Result<PlannerSpec, String> {
        match algorithm {
            "rod" => Ok(PlannerSpec::Rod),
            "hier" | "hierarchical" => Ok(PlannerSpec::Hierarchical {
                racks: racks.to_vec(),
            }),
            "llf" => Ok(PlannerSpec::Llf {
                rates: rates.to_vec(),
            }),
            "connected" => Ok(PlannerSpec::Connected {
                rates: rates.to_vec(),
            }),
            "correlation" => Ok(Self::correlation_from_rates(rates)),
            "random" => Ok(PlannerSpec::Random { seed }),
            "resilient" | "resilientrod" => Ok(PlannerSpec::ResilientRod {
                samples,
                seed,
                max_failures: 1,
                threads,
            }),
            "optimal" => Ok(PlannerSpec::Optimal {
                samples,
                seed,
                max_plans,
                threads,
            }),
            other => Err(format!("--algorithm: unknown '{other}'")),
        }
    }
}

/// Builds the planner a spec describes.
pub fn build_planner(spec: &PlannerSpec) -> Box<dyn Planner> {
    match spec {
        PlannerSpec::Rod => Box::new(RodPlanner::new()),
        PlannerSpec::Llf { rates } => Box::new(LlfPlanner::new(rates.clone())),
        PlannerSpec::Connected { rates } => Box::new(ConnectedPlanner::new(rates.clone())),
        PlannerSpec::Correlation { history } => Box::new(CorrelationPlanner::new(history.clone())),
        PlannerSpec::Random { seed } => Box::new(RandomPlanner::new(*seed)),
        PlannerSpec::Hierarchical { racks } => Box::new(if racks.is_empty() {
            HierarchicalRod::new()
        } else {
            HierarchicalRod::with_options(RodOptions::default(), Some(Topology::new(racks.clone())))
        }),
        PlannerSpec::ResilientRod {
            samples,
            seed,
            max_failures,
            threads,
        } => Box::new(ResilientRodPlanner::with_options(ResilientRodOptions {
            samples: *samples,
            seed: *seed,
            max_failures: *max_failures,
            threads: *threads,
            ..ResilientRodOptions::default()
        })),
        PlannerSpec::Optimal {
            samples,
            seed,
            max_plans,
            threads,
        } => Box::new(OptimalPlanner {
            samples: *samples,
            seed: *seed,
            max_plans: *max_plans,
            threads: *threads,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::chain_pair_model;
    use crate::cluster::Cluster;

    fn all_specs() -> Vec<PlannerSpec> {
        vec![
            PlannerSpec::Rod,
            PlannerSpec::Llf {
                rates: vec![1.0, 2.0],
            },
            PlannerSpec::Connected {
                rates: vec![1.0, 2.0],
            },
            PlannerSpec::correlation_from_rates(&[1.0, 2.0]),
            PlannerSpec::Random { seed: 7 },
            PlannerSpec::Hierarchical { racks: vec![] },
            PlannerSpec::Hierarchical {
                racks: vec![vec![0], vec![1]],
            },
            PlannerSpec::ResilientRod {
                samples: 500,
                seed: 7,
                max_failures: 1,
                threads: 2,
            },
            PlannerSpec::Optimal {
                samples: 2_000,
                seed: 1,
                max_plans: 5_000_000,
                threads: 2,
            },
        ]
    }

    #[test]
    fn every_spec_builds_a_planner_that_plans() {
        let model = chain_pair_model();
        let cluster = Cluster::homogeneous(2, 1.0);
        for spec in all_specs() {
            let planner = build_planner(&spec);
            assert_eq!(planner.name(), spec.name());
            let alloc = planner.plan(&model, &cluster).expect("plan");
            assert!(alloc.is_complete(), "{}", spec.name());
        }
    }

    #[test]
    fn specs_round_trip_through_json() {
        for spec in all_specs() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: PlannerSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn from_cli_parses_all_names_and_rejects_unknown() {
        for name in [
            "rod",
            "llf",
            "connected",
            "correlation",
            "random",
            "resilientrod",
            "hierarchical",
            "optimal",
        ] {
            let spec = PlannerSpec::from_cli(name, &[1.0], 3, 100, 1_000, 0, &[]).unwrap();
            assert_eq!(spec.name().to_lowercase(), name);
        }
        // "hier" is the short CLI alias; explicit racks pass through.
        let spec = PlannerSpec::from_cli("hier", &[1.0], 3, 100, 1_000, 0, &[vec![0, 1], vec![2]])
            .unwrap();
        assert_eq!(
            spec,
            PlannerSpec::Hierarchical {
                racks: vec![vec![0, 1], vec![2]],
            }
        );
        assert!(PlannerSpec::from_cli("nonsense", &[], 0, 0, 0, 0, &[]).is_err());
    }

    #[test]
    fn jittered_history_matches_pinned_formula() {
        let h = PlannerSpec::jittered_history(&[1.0, 10.0], 4);
        assert_eq!(h.len(), 4);
        // t = 0: every (t·(k+1)) % 7 = 0 → factor 1 + 0.3·(-3)/3 = 0.7.
        assert!((h[0][0] - 0.7).abs() < 1e-12);
        assert!((h[0][1] - 7.0).abs() < 1e-12);
        // t = 1, k = 1: (1·2) % 7 = 2 → factor 1 + 0.3·(2-3)/3 = 0.9.
        assert!((h[1][1] - 9.0).abs() < 1e-12);
    }
}
