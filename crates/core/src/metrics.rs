//! Uniform plan-quality reporting for the experiment harness.

use serde::{Deserialize, Serialize};

use rod_geom::{Vector, VolumeEstimator};

use crate::allocation::{Allocation, PlanEvaluator};
use crate::cluster::Cluster;
use crate::load_model::LoadModel;

/// Everything the experiment tables report about one plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlanReport {
    /// Algorithm display name.
    pub algorithm: String,
    /// Estimated |F(A)| / |F*| — the headline metric of Figures 14/15.
    pub feasible_ratio: f64,
    /// MMPD score `min_i 1/‖W_i‖₂`.
    pub min_plane_distance: f64,
    /// Per-axis MMAD scores `min_i 1/w_ik`.
    pub min_axis_distances: Vec<f64>,
    /// Largest normalised weight in the plan.
    pub max_weight: f64,
    /// Operator-to-operator arcs crossing nodes.
    pub internode_arcs: usize,
    /// Operators per node.
    pub node_counts: Vec<usize>,
}

/// Builds a [`VolumeEstimator`] matched to a model + cluster (shared point
/// set ⇒ noise-free plan comparisons).
pub fn make_estimator(
    model: &LoadModel,
    cluster: &Cluster,
    samples: usize,
    seed: u64,
) -> VolumeEstimator {
    VolumeEstimator::new(
        model.total_coeffs().as_slice(),
        cluster.total_capacity(),
        samples,
        seed,
    )
}

/// Estimated feasible-set ratio of one plan.
pub fn feasible_ratio(
    ev: &PlanEvaluator<'_>,
    estimator: &VolumeEstimator,
    alloc: &Allocation,
) -> f64 {
    estimator
        .estimate(&ev.feasible_region(alloc))
        .ratio_to_ideal
}

/// Full report for one plan.
pub fn report(
    algorithm: impl Into<String>,
    ev: &PlanEvaluator<'_>,
    estimator: &VolumeEstimator,
    alloc: &Allocation,
) -> PlanReport {
    let w = ev.weight_matrix(alloc);
    let axis: Vector = w.min_axis_distances();
    PlanReport {
        algorithm: algorithm.into(),
        feasible_ratio: feasible_ratio(ev, estimator, alloc),
        min_plane_distance: w.min_plane_distance(),
        min_axis_distances: axis.as_slice().to_vec(),
        max_weight: w.max_weight(),
        internode_arcs: ev.internode_arcs(alloc),
        node_counts: alloc.node_counts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{example2_plans, figure4_graph};
    use crate::rod::RodPlanner;

    #[test]
    fn report_fields_are_consistent() {
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let ev = PlanEvaluator::new(&model, &cluster);
        let est = make_estimator(&model, &cluster, 20_000, 5);
        let plan = RodPlanner::new().place(&model, &cluster).unwrap();
        let rep = report("ROD", &ev, &est, &plan.allocation);
        assert_eq!(rep.algorithm, "ROD");
        assert!(rep.feasible_ratio > 0.0 && rep.feasible_ratio <= 1.0);
        assert!(rep.min_plane_distance > 0.0);
        assert_eq!(rep.min_axis_distances.len(), 2);
        assert_eq!(rep.node_counts.iter().sum::<usize>(), 4);
    }

    #[test]
    fn better_plans_get_better_ratios() {
        // Figure 5: plan (a) has a visibly larger feasible set than plan
        // (c) (the all-on-one-chain plan).
        let model = LoadModel::derive(&figure4_graph()).unwrap();
        let cluster = Cluster::homogeneous(2, 1.0);
        let ev = PlanEvaluator::new(&model, &cluster);
        let est = make_estimator(&model, &cluster, 30_000, 2);
        let [a, _, c] = example2_plans();
        let ra = feasible_ratio(&ev, &est, &a);
        let rc = feasible_ratio(&ev, &est, &c);
        assert!(ra > rc, "plan(a)={ra} should beat plan(c)={rc}");
    }
}
