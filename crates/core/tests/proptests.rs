//! Property-based tests for the core placement machinery, driven by
//! randomly generated (but always-valid) query graphs.

use proptest::prelude::*;

use rod_core::cluster::Cluster;
use rod_core::graph::{GraphBuilder, QueryGraph};
use rod_core::ids::{NodeId, OperatorId, StreamId};
use rod_core::load_model::LoadModel;
use rod_core::operator::OperatorKind;
use rod_core::rod::{RodOptions, RodPlanner};

/// A tiny local stand-in for the rod-workloads tree generator (this
/// crate cannot depend on rod-workloads — that would be a cycle), built
/// on the same GraphBuilder primitives.
mod rod_workloads_free {
    use super::*;
    pub fn generate(inputs: usize, ops_per_tree: usize, seed: u64) -> QueryGraph {
        use rand::Rng as _;
        let mut rng = rod_geom::seeded_rng(seed);
        let mut b = GraphBuilder::new();
        for tree in 0..inputs {
            let mut up = b.add_input();
            for j in 0..ops_per_tree {
                let cost = rng.gen_range(1e-4..1e-3);
                let sel = rng.gen_range(0.5..1.0);
                let (_, s) = b
                    .add_operator(
                        format!("t{tree}_o{j}"),
                        OperatorKind::delay(cost, sel),
                        &[up],
                    )
                    .unwrap();
                up = s;
            }
        }
        b.build().unwrap()
    }
}

/// Strategy: a random valid query graph described by compact choices —
/// number of inputs, then a list of operators each picking its parent
/// stream by index modulo the streams created so far.
#[derive(Clone, Debug)]
struct GraphSpec {
    inputs: usize,
    ops: Vec<(usize, u8, u16, u16)>, // (parent pick, kind pick, cost‰, sel‰)
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (
        1usize..4,
        prop::collection::vec((0usize..100, 0u8..10, 1u16..1000, 1u16..1000), 1..24),
    )
        .prop_map(|(inputs, ops)| GraphSpec { inputs, ops })
}

fn build(spec: &GraphSpec) -> QueryGraph {
    let mut b = GraphBuilder::new();
    let mut streams: Vec<StreamId> = (0..spec.inputs).map(|_| b.add_input()).collect();
    for (j, &(parent, kind, cost, sel)) in spec.ops.iter().enumerate() {
        let cost = cost as f64 / 1000.0;
        let sel = sel as f64 / 1000.0;
        let p1 = streams[parent % streams.len()];
        let (_, out) = match kind {
            // Mostly linear single-input operators; occasionally a join
            // or a variable-selectivity operator.
            0..=6 => b
                .add_operator(format!("op{j}"), OperatorKind::delay(cost, sel), &[p1])
                .unwrap(),
            7 | 8 => {
                let p2 = streams[(parent / 7) % streams.len()];
                b.add_operator(
                    format!("op{j}"),
                    OperatorKind::WindowJoin {
                        window: 0.5,
                        cost_per_pair: cost,
                        selectivity_per_pair: sel.max(0.01),
                    },
                    &[p1, p2],
                )
                .unwrap()
            }
            _ => b
                .add_operator(
                    format!("op{j}"),
                    OperatorKind::VariableSelectivity {
                        costs: vec![cost],
                        nominal_selectivities: vec![sel],
                    },
                    &[p1],
                )
                .unwrap(),
        };
        streams.push(out);
    }
    b.build().unwrap()
}

proptest! {
    #[test]
    fn linearised_load_always_matches_truth(spec in graph_spec(),
                                            rates in prop::collection::vec(0.0..20.0f64, 1..4)) {
        let graph = build(&spec);
        prop_assume!(rates.len() >= graph.num_inputs());
        let rates = &rates[..graph.num_inputs()];
        let model = LoadModel::derive(&graph).unwrap();
        let x = model.variable_point(rates);
        let true_loads = graph.operator_loads(rates);
        for (j, truth) in true_loads.iter().enumerate() {
            let row = model.operator_row(OperatorId(j));
            let lin: f64 = row.iter().zip(x.as_slice()).map(|(l, v)| l * v).sum();
            prop_assert!(
                (lin - truth).abs() <= 1e-9 * (1.0 + truth.abs()),
                "op {j}: linear {lin} vs true {truth}"
            );
        }
    }

    #[test]
    fn rod_places_every_operator_once(spec in graph_spec(), nodes in 1usize..6) {
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let plan = RodPlanner::new().place(&model, &cluster).unwrap();
        prop_assert!(plan.allocation.is_complete());
        prop_assert_eq!(
            plan.allocation.node_counts().iter().sum::<usize>(),
            model.num_operators()
        );
        prop_assert_eq!(plan.order.len(), model.num_operators());
    }

    #[test]
    fn column_sums_invariant_under_rod(spec in graph_spec(), nodes in 1usize..5) {
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let plan = RodPlanner::new().place(&model, &cluster).unwrap();
        let ln = plan.allocation.node_load_matrix(model.lo());
        for k in 0..model.num_vars() {
            let col: f64 = (0..nodes).map(|i| ln[(i, k)]).sum();
            prop_assert!((col - model.total_coeffs()[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn weight_matrix_rows_scale_with_capacity(spec in graph_spec()) {
        // Doubling every capacity halves every weight (w = share / rel
        // capacity is capacity-scale invariant; doubling total AND node
        // capacity leaves relative shares unchanged) — here we check the
        // invariance: homogeneous clusters of any capacity give the same W.
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let c1 = Cluster::homogeneous(3, 1.0);
        let c2 = Cluster::homogeneous(3, 8.0);
        let plan = RodPlanner::new().place(&model, &c1).unwrap();
        let w1 = rod_core::allocation::WeightMatrix::new(
            &plan.allocation.node_load_matrix(model.lo()),
            model.total_coeffs(),
            &c1,
        );
        let w2 = rod_core::allocation::WeightMatrix::new(
            &plan.allocation.node_load_matrix(model.lo()),
            model.total_coeffs(),
            &c2,
        );
        for i in 0..3 {
            for k in 0..model.num_vars() {
                prop_assert!(
                    (w1.matrix()[(i, k)] - w2.matrix()[(i, k)]).abs() < 1e-9
                );
            }
        }
    }

    #[test]
    fn rod_deterministic(spec in graph_spec(), nodes in 1usize..5) {
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let a = RodPlanner::new().place(&model, &cluster).unwrap();
        let b = RodPlanner::new().place(&model, &cluster).unwrap();
        prop_assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn lower_bound_never_breaks_placement(spec in graph_spec(),
                                          beta in 0.0..0.9f64) {
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(3, 1.0);
        let d = graph.num_inputs();
        let b: Vec<f64> = (0..d).map(|k| beta * (k as f64 + 0.1)).collect();
        let plan = RodPlanner::with_options(RodOptions {
            input_lower_bound: Some(b),
            ..RodOptions::default()
        })
        .place(&model, &cluster)
        .unwrap();
        prop_assert!(plan.allocation.is_complete());
    }

    #[test]
    fn rate_propagation_is_monotone(spec in graph_spec(),
                                    base in prop::collection::vec(0.0..10.0f64, 1..4),
                                    bump in 0.0..5.0f64) {
        // All operators are rate-monotone, so raising any input rate
        // cannot lower any stream rate or operator load.
        let graph = build(&spec);
        prop_assume!(base.len() >= graph.num_inputs());
        let lo_rates = &base[..graph.num_inputs()];
        let mut hi_rates = lo_rates.to_vec();
        hi_rates[0] += bump;
        let lo = graph.propagate_rates(lo_rates);
        let hi = graph.propagate_rates(&hi_rates);
        for (a, b) in lo.iter().zip(&hi) {
            prop_assert!(b + 1e-12 >= *a, "rate dropped: {a} -> {b}");
        }
        let lo_load = graph.operator_loads(lo_rates);
        let hi_load = graph.operator_loads(&hi_rates);
        for (a, b) in lo_load.iter().zip(&hi_load) {
            prop_assert!(b + 1e-12 >= *a, "load dropped: {a} -> {b}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn headroom_boundaries_verify_on_random_linear_graphs(
        inputs in 1usize..4, seed in 0u64..200, nodes in 1usize..4,
    ) {
        use rod_core::allocation::PlanEvaluator;
        use rod_core::headroom::headroom;
        // Linear random trees (the generator guarantees linearity), so
        // the ray-cast boundary must be exact.
        let graph = rod_workloads_free::generate(inputs, 8, seed);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let alloc = RodPlanner::new().place(&model, &cluster).unwrap().allocation;
        let ev = PlanEvaluator::new(&model, &cluster);
        let base: Vec<f64> = (0..inputs).map(|k| 0.5 + k as f64 * 0.3).collect();
        let report = headroom(&ev, &alloc, &base);
        prop_assume!(report.uniform.is_finite() && report.uniform > 1.0);
        let inside: Vec<f64> = base.iter().map(|r| r * report.uniform * 0.999).collect();
        let outside: Vec<f64> = base.iter().map(|r| r * report.uniform * 1.001).collect();
        prop_assert!(ev.is_feasible_at(&alloc, &inside));
        prop_assert!(!ev.is_feasible_at(&alloc, &outside));
    }

    #[test]
    fn incremental_eval_matches_from_scratch_rebuild(
        spec in graph_spec(),
        nodes in 1usize..5,
        moves in prop::collection::vec((0usize..64, 0usize..8, 0u8..2), 1..32),
    ) {
        use rod_core::allocation::WeightMatrix;
        use rod_core::eval::IncrementalPlanEval;
        // Drive the incremental evaluator through a random interleaving
        // of assigns and unassigns; after every move its weight rows and
        // plane distances must match a WeightMatrix rebuilt from scratch
        // off the allocation's own node-load matrix.
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let mut eval = IncrementalPlanEval::new(&model, &cluster);
        let m = model.num_operators();
        for (op_pick, node_pick, assign) in moves {
            let op = OperatorId(op_pick % m);
            let node = NodeId(node_pick % nodes);
            match (assign == 1, eval.allocation().node_of(op)) {
                (true, None) => {
                    // The committed distance must equal the quoted one.
                    let quote = eval.score_candidate(op, node);
                    eval.assign(op, node);
                    let committed = eval.plane_distance(node);
                    prop_assert!(
                        quote.plane_distance == committed
                            || (quote.plane_distance - committed).abs()
                                <= 1e-9 * (1.0 + committed.abs()),
                        "quote {} vs committed {committed}",
                        quote.plane_distance
                    );
                }
                (false, Some(current)) if current == node => eval.unassign(op, node),
                _ => continue,
            }
            let reference = WeightMatrix::new(
                &eval.allocation().node_load_matrix(model.lo()),
                model.total_coeffs(),
                &cluster,
            );
            for i in 0..nodes {
                for (k, &got) in eval.weight_row(NodeId(i)).iter().enumerate() {
                    let want = reference.matrix()[(i, k)];
                    prop_assert!(
                        (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                        "w[{i},{k}]: incremental {got} vs scratch {want}"
                    );
                }
                let want = reference.plane_distance(NodeId(i));
                let got = eval.plane_distance(NodeId(i));
                prop_assert!(
                    got == want || (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "plane[{i}]: incremental {got} vs scratch {want}"
                );
            }
            let want = reference.max_weight();
            let got = eval.max_weight();
            prop_assert!(
                (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "max weight: incremental {got} vs scratch {want}"
            );
        }
    }

    #[test]
    fn degenerate_zero_load_graphs_never_poison_planners(
        inputs in 1usize..3,
        ops in prop::collection::vec((0usize..100, 0u16..1000, 0u16..1000), 1..12),
        nodes in 2usize..4,
    ) {
        // Regression guard for the NaN audit: zero-cost operators, zero
        // selectivities, and flat (zero-variance) rate histories used to
        // be able to produce NaN sort keys deep inside the planners and
        // abort via `partial_cmp().expect(...)`. Every planner must now
        // finish with a complete plan on such degenerate instances.
        use rod_core::baselines::connected::ConnectedPlanner;
        use rod_core::baselines::correlation::CorrelationPlanner;
        use rod_core::baselines::llf::LlfPlanner;
        use rod_core::baselines::Planner;
        use rod_core::resilience::{ResilientRodOptions, ResilientRodPlanner};

        let mut b = GraphBuilder::new();
        let mut streams: Vec<StreamId> = (0..inputs).map(|_| b.add_input()).collect();
        for (j, &(parent, cost, sel)) in ops.iter().enumerate() {
            // cost/sel hit exactly 0.0 with probability 1/1000 per draw,
            // and proptest's shrinker drives them there on any failure.
            let cost = cost as f64 / 1000.0;
            let sel = sel as f64 / 1000.0;
            let p = streams[parent % streams.len()];
            let (_, out) = b
                .add_operator(format!("z{j}"), OperatorKind::delay(cost, sel), &[p])
                .unwrap();
            streams.push(out);
        }
        let graph = b.build().unwrap();
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let d = graph.num_inputs();

        let zero_rates = vec![0.0; d];
        // Constant histories have zero variance: the correlation
        // coefficient's denominator vanishes, the classic NaN source.
        let flat_history = vec![vec![0.0; d], vec![0.0; d], vec![0.0; d]];
        let planners: Vec<Box<dyn Planner>> = vec![
            Box::new(RodPlanner::new()),
            Box::new(LlfPlanner::new(zero_rates.clone())),
            Box::new(ConnectedPlanner::new(zero_rates)),
            Box::new(CorrelationPlanner::new(flat_history)),
            Box::new(ResilientRodPlanner::with_options(ResilientRodOptions {
                samples: 200,
                seed: 7,
                max_failures: 1,
                max_moves: 2,
                threads: 2,
            })),
        ];
        for planner in &planners {
            let alloc = planner.plan(&model, &cluster);
            prop_assert!(alloc.is_ok(), "{} failed: {:?}", planner.name(), alloc.err());
            prop_assert!(alloc.unwrap().is_complete(), "{} incomplete", planner.name());
        }
    }

    #[test]
    fn parallel_planners_are_bit_identical_across_thread_counts(
        inputs in 1usize..3,
        ops in prop::collection::vec((0usize..100, 1u16..1000, 1u16..1000), 1..6),
        nodes in 2usize..4,
    ) {
        // The pool's ordered-reduction contract, checked end to end on
        // random instances: for BOTH parallel planners, any chunk count
        // must reproduce the serial result exactly — same placement,
        // same worst-case survivor count, same incumbent bits.
        use rod_core::baselines::optimal::OptimalPlanner;
        use rod_core::resilience::{ResilientRodOptions, ResilientRodPlanner};

        let mut b = GraphBuilder::new();
        let mut streams: Vec<StreamId> = (0..inputs).map(|_| b.add_input()).collect();
        for (j, &(parent, cost, sel)) in ops.iter().enumerate() {
            let cost = cost as f64 / 1000.0;
            let sel = sel as f64 / 1000.0;
            let p = streams[parent % streams.len()];
            let (_, out) = b
                .add_operator(format!("p{j}"), OperatorKind::delay(cost, sel), &[p])
                .unwrap();
            streams.push(out);
        }
        let graph = b.build().unwrap();
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);

        let resilient = |threads: usize| {
            ResilientRodPlanner::with_options(ResilientRodOptions {
                samples: 300,
                seed: 11,
                max_failures: 1,
                max_moves: 3,
                threads,
            })
            .place(&model, &cluster)
            .unwrap()
        };
        let serial = resilient(1);
        for threads in [2usize, 4, 7] {
            let pooled = resilient(threads);
            prop_assert_eq!(
                &serial.allocation, &pooled.allocation,
                "ResilientRod placement drifted at threads={}", threads
            );
            prop_assert_eq!(
                serial.worst_alive, pooled.worst_alive,
                "ResilientRod worst-case score drifted at threads={}", threads
            );
        }

        let optimal = |threads: usize| {
            OptimalPlanner {
                samples: 300,
                seed: 11,
                threads,
                ..OptimalPlanner::new()
            }
            .search(&model, &cluster)
            .unwrap()
        };
        let (serial_alloc, serial_ratio) = optimal(1);
        for threads in [2usize, 4, 7] {
            let (alloc, ratio) = optimal(threads);
            prop_assert_eq!(
                &serial_alloc, &alloc,
                "Optimal incumbent drifted at threads={}", threads
            );
            prop_assert_eq!(
                serial_ratio.to_bits(), ratio.to_bits(),
                "Optimal incumbent score drifted at threads={}", threads
            );
        }
    }

    #[test]
    fn clustered_plans_keep_clusters_together(spec in graph_spec(),
                                              transfer in 0.0..2.0f64) {
        use rod_core::clustering::{cluster_operators, place_clustered,
                                   ArcCosts, ClusteringPolicy};
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(3, 1.0);
        let clustering = cluster_operators(
            &model,
            &ArcCosts::uniform(transfer),
            ClusteringPolicy::LargestRatio,
            1.0,
            0.6,
        );
        let alloc = place_clustered(&model, &cluster, &clustering).unwrap();
        prop_assert!(alloc.is_complete());
        for c in 0..clustering.num_clusters() {
            let nodes: std::collections::HashSet<NodeId> = clustering
                .members(c)
                .iter()
                .map(|&op| alloc.node_of(op).unwrap())
                .collect();
            prop_assert_eq!(nodes.len(), 1);
        }
    }
}
