//! Property tests pinning the scaling machinery to its exact-equivalence
//! contracts: the sparse evaluation path must be **bit-identical** to a
//! dense reference, the pruned Phase-2 scan must choose **byte-identical
//! placements** to the exhaustive scan, and a single-rack hierarchical
//! plan must *be* the flat ROD plan. These are the invariants that let
//! the large-instance fast paths ship without a tolerance anywhere.

use proptest::prelude::*;

use rod_core::cluster::{Cluster, Topology};
use rod_core::eval::IncrementalPlanEval;
use rod_core::graph::{GraphBuilder, QueryGraph};
use rod_core::hierarchical::HierarchicalRod;
use rod_core::ids::{NodeId, OperatorId, StreamId};
use rod_core::load_model::LoadModel;
use rod_core::operator::OperatorKind;
use rod_core::rod::{ClassOnePolicy, RodOptions, RodPlanner};

/// A compact description of a *sparse-regime* random graph: several
/// inputs, operators that are mostly single-input but sometimes union
/// two or three streams — exactly the shape that gives load rows more
/// than one nonzero without densifying them.
#[derive(Clone, Debug)]
struct SparseSpec {
    inputs: usize,
    ops: Vec<(usize, usize, u8, u16, u16)>, // (pick a, pick b, arity, cost‰, sel‰)
}

fn sparse_spec() -> impl Strategy<Value = SparseSpec> {
    (
        2usize..6,
        prop::collection::vec(
            (
                0usize..1000,
                0usize..1000,
                1u8..=3,
                1u16..1000,
                500u16..1000,
            ),
            1..28,
        ),
    )
        .prop_map(|(inputs, ops)| SparseSpec { inputs, ops })
}

fn build(spec: &SparseSpec) -> QueryGraph {
    let mut b = GraphBuilder::new();
    let mut streams: Vec<StreamId> = (0..spec.inputs).map(|_| b.add_input()).collect();
    for (j, &(pa, pb, arity, cost, sel)) in spec.ops.iter().enumerate() {
        let cost = cost as f64 / 1000.0;
        let sel = sel as f64 / 1000.0;
        let mut inputs = vec![streams[pa % streams.len()]];
        // Unions widen the row's input support; duplicates are skipped so
        // ports stay distinct streams.
        for extra in [pb, pa / 3 + pb / 7] {
            if inputs.len() >= arity as usize {
                break;
            }
            let s = streams[extra % streams.len()];
            if !inputs.contains(&s) {
                inputs.push(s);
            }
        }
        let n = inputs.len();
        let (_, out) = b
            .add_operator(
                format!("op{j}"),
                OperatorKind::Linear {
                    costs: vec![cost; n],
                    selectivities: vec![sel; n],
                },
                &inputs,
            )
            .unwrap();
        streams.push(out);
    }
    b.build().unwrap()
}

/// The dense reference for one node's plane distance: a full ascending-k
/// loop over the weight row, squaring and accumulating every column —
/// including the exact zeros the sparse path skips. Skipping an exact
/// IEEE-754 zero in `acc + w*w` leaves `acc` bit-identical, which is the
/// whole sparse contract; this function is the executable statement of
/// the dense side.
fn dense_plane_distance(row: &[f64]) -> f64 {
    let mut sumsq = 0.0f64;
    for &w in row {
        sumsq += w * w;
    }
    if sumsq == 0.0 {
        f64::INFINITY
    } else {
        1.0 / sumsq.sqrt()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sparse evaluator's maintained plane distances equal the dense
    /// reference bit for bit at every step of a random assign/unassign
    /// churn — on every node, not just the touched one.
    #[test]
    fn sparse_plane_distances_match_dense_reference_bitwise(
        spec in sparse_spec(),
        nodes in 1usize..5,
        moves in prop::collection::vec((0usize..64, 0usize..8, 0u8..3), 1..40),
    ) {
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let mut eval = IncrementalPlanEval::new(&model, &cluster);
        let m = model.num_operators();
        for (op_pick, node_pick, action) in moves {
            let op = OperatorId(op_pick % m);
            let node = NodeId(node_pick % nodes);
            match (action, eval.allocation().node_of(op)) {
                (0 | 1, None) => eval.assign(op, node),
                (2, Some(host)) => eval.unassign(op, host),
                _ => continue,
            }
            for i in 0..nodes {
                let node = NodeId(i);
                let dense = dense_plane_distance(eval.weight_row(node));
                prop_assert_eq!(
                    eval.plane_distance(node).to_bits(),
                    dense.to_bits(),
                    "node {}: sparse {} vs dense {}",
                    i, eval.plane_distance(node), dense
                );
            }
        }
    }

    /// Candidate quotes agree with the dense reference too: committing
    /// the quoted assignment must land exactly on the dense recompute.
    #[test]
    fn candidate_scores_commit_to_their_quotes_bitwise(
        spec in sparse_spec(),
        nodes in 1usize..4,
    ) {
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let mut eval = IncrementalPlanEval::new(&model, &cluster);
        for j in 0..model.num_operators() {
            let op = OperatorId(j);
            let node = NodeId(j % nodes);
            let quote = eval.score_candidate(op, node);
            eval.assign(op, node);
            prop_assert_eq!(
                quote.plane_distance.to_bits(),
                eval.plane_distance(node).to_bits(),
                "op {}: quote diverged from committed state", j
            );
            prop_assert_eq!(
                eval.plane_distance(node).to_bits(),
                dense_plane_distance(eval.weight_row(node)).to_bits()
            );
        }
    }

    /// The pruned Phase-2 scan (the default) picks byte-identical
    /// placements to the exhaustive O(m·n) scan, across policies,
    /// cluster shapes, and the class-one ablation switch.
    #[test]
    fn pruned_scan_places_byte_identically_to_exhaustive(
        spec in sparse_spec(),
        caps_pick in 0usize..3,
        policy_pick in 0usize..4,
        class_one_pick in 0u8..2,
    ) {
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = match caps_pick {
            0 => Cluster::homogeneous(3, 1.0),
            1 => Cluster::homogeneous(5, 2.0),
            _ => Cluster::heterogeneous(vec![3.0, 1.0, 0.5, 2.0]),
        };
        let options = RodOptions {
            class_one_policy: match policy_pick {
                0 => ClassOnePolicy::MaxPlaneDistance,
                1 => ClassOnePolicy::FirstFit,
                2 => ClassOnePolicy::Random { seed: 1234 },
                _ => ClassOnePolicy::MinCommunication,
            },
            use_class_one: class_one_pick == 1,
            ..RodOptions::default()
        };
        let pruned = RodPlanner::with_options(options.clone())
            .place(&model, &cluster)
            .unwrap();
        let full = RodPlanner::with_options(options)
            .with_exhaustive_scan(true)
            .place(&model, &cluster)
            .unwrap();
        prop_assert_eq!(&pruned.allocation, &full.allocation);
        prop_assert_eq!(&pruned.step_classes, &full.step_classes);
        prop_assert!(pruned.candidates_scored <= full.candidates_scored);
    }

    /// A one-rack topology makes the hierarchical planner *be* flat ROD:
    /// level 1 degenerates and level 2 runs the identical machinery.
    #[test]
    fn single_rack_hierarchical_is_flat_rod(
        spec in sparse_spec(),
        nodes in 2usize..6,
    ) {
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let hier = HierarchicalRod::with_topology(Topology::uniform(nodes, 1))
            .place(&model, &cluster)
            .unwrap();
        let flat = RodPlanner::new().place(&model, &cluster).unwrap();
        prop_assert_eq!(&hier.allocation, &flat.allocation);
    }

    /// Multi-rack hierarchical plans are complete, rack-respecting, and
    /// deterministic on the same random instances.
    #[test]
    fn hierarchical_plans_are_complete_and_rack_respecting(
        spec in sparse_spec(),
        racks_pick in 2usize..4,
    ) {
        let graph = build(&spec);
        let model = LoadModel::derive(&graph).unwrap();
        let nodes = racks_pick * 2;
        let cluster = Cluster::homogeneous(nodes, 1.0);
        let topology = Topology::uniform(nodes, racks_pick);
        let planner = HierarchicalRod::with_topology(topology.clone());
        let a = planner.place(&model, &cluster).unwrap();
        let b = planner.place(&model, &cluster).unwrap();
        prop_assert_eq!(&a.allocation, &b.allocation);
        prop_assert!(a.allocation.is_complete());
        for j in 0..model.num_operators() {
            let node = a.allocation.node_of(OperatorId(j)).unwrap().index();
            prop_assert!(topology.rack(a.rack_of[j]).contains(&node));
        }
    }
}
